#!/usr/bin/env python3
"""Fault-tolerant federation: chaos injection, quorum policies, and resume.

The runtime survives worker failure through a recovery ladder — retry the
connection, re-dispatch the lost shard to survivors, demote unrecoverable
clients to round-plan dropouts, and finally apply the configured quorum
policy (``accept`` / ``retry`` / ``abort``).  Independently, the runner
can snapshot the full simulation state every N rounds and resume a killed
run bit-identically.

This example demonstrates three properties, all on one machine:

1. **Chaos without divergence.**  A deterministic `FaultSchedule` crashes
   a thread-fleet worker mid-run; the collector re-dispatches the dead
   worker's clients to the survivors and the run stays *bit-identical*
   to a healthy sequential run — zero dropouts.
2. **Quorum policies.**  On the in-process thread backend (no survivors
   to re-dispatch to within a pool), the same fault degrades the round
   to dropouts; `min_cohort_fraction` decides whether the degraded round
   is accepted, retried, or aborts the run.
3. **Kill and resume.**  A run checkpointing every 2 rounds is killed by
   an unrecoverable outage; resuming from the snapshot reproduces the
   uninterrupted baseline exactly.

Run with:  python examples/fault_tolerance.py

The same faults work on real worker processes — a CLI ``crash`` fault
hard-exits the whole process mid-round::

    repro-worker --port 9000 --fault crash@3
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    run_experiment,
)
from repro.fl import FaultSchedule, FleetOutageError, QuorumLossError
from repro.fl.transport import start_thread_fleet


def make_config(**training) -> ExperimentConfig:
    return ExperimentConfig(
        num_clients=16,
        seed=11,
        data=DataConfig(dataset="mnist_like", num_train=480, num_test=160),
        training=TrainingConfig(
            model="mlp", rounds=6, batch_size=16, eval_every=2, **training
        ),
        defense=DefenseConfig(name="signguard"),
    )


def losses(recorder) -> list:
    return [round(r.train_loss, 6) for r in recorder]


def chaos_with_redispatch() -> None:
    print("=== 1. Worker crash, shard re-dispatched, bit-identical run ===")
    baseline = run_experiment(make_config())

    # Worker 0 of the two-worker fleet dies on its 3rd round; the
    # collector re-ships its 8 clients (with their last completed RNG
    # states) to the survivor, so nothing is lost.
    chaos = FaultSchedule.from_args(["crash@3"], worker=0)
    with start_thread_fleet(2, fault_schedule=chaos) as fleet:
        config = make_config(collect_backend="distributed", workers=fleet.addresses)
        faulted = run_experiment(config)

    same = losses(faulted) == losses(baseline)
    print(f"  per-round losses identical to healthy sequential run: {same}")
    print(f"  rounds re-dispatched: {[r.num_redispatched for r in faulted]}")
    print(f"  dropouts:             {[r.num_dropped for r in faulted]}")
    assert same and all(r.num_dropped == 0 for r in faulted)


def quorum_policies() -> None:
    print("\n=== 2. Quorum policies on a degraded collect pool ===")

    def run_with_policy(on_quorum_loss: str):
        # Thread-pool worker 1 (owning half the 16 clients) crashes on
        # its 3rd round; in-process pools have no re-dispatch, so those
        # clients degrade to dropouts and the cohort falls to 50% —
        # below the 75% quorum.  The policy decides the round's fate.
        config = make_config(
            collect_backend="thread",
            n_workers=2,
            min_cohort_fraction=0.75,
            on_quorum_loss=on_quorum_loss,
        )
        chaos = FaultSchedule.from_args(["crash@3"], worker=1)
        return run_experiment(config, fault_schedule=chaos)

    accepted = run_with_policy("accept")
    degraded = [r.round_index for r in accepted if not r.quorum_met]
    print(f"  accept: run finished; degraded rounds: {degraded}")

    # A quorum retry re-collects the same plan; the one-shot fault is
    # already consumed, so the second attempt succeeds.
    retried = run_with_policy("retry")
    print(f"  retry:  per-round retries: {[r.num_retries for r in retried]}")
    assert all(r.quorum_met for r in retried)

    try:
        run_with_policy("abort")
    except QuorumLossError as error:
        print(f"  abort:  run stopped — {error}")


def kill_and_resume() -> None:
    print("\n=== 3. Kill a checkpointed run, resume bit-identically ===")
    baseline = run_experiment(make_config())

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.ckpt"
        # The sequential backend has no survivors to re-dispatch to, so a
        # crash is a fleet outage: the run dies mid-flight.
        outage = FaultSchedule.from_args(["crash@5"])
        try:
            run_experiment(
                make_config(),
                fault_schedule=outage,
                checkpoint_every=2,
                checkpoint_path=path,
            )
        except FleetOutageError:
            print("  run killed at round 5 (checkpoint holds rounds 1-4)")

        resumed = run_experiment(make_config(), resume_from=path)

    same = losses(resumed) == losses(baseline)
    print(f"  resumed run bit-identical to uninterrupted baseline: {same}")
    assert same


def main() -> None:
    chaos_with_redispatch()
    quorum_policies()
    kill_and_resume()
    print("\nAll fault-tolerance properties verified.")


if __name__ == "__main__":
    main()
