#!/usr/bin/env python3
"""Cross-device federated learning: client sampling, dropouts, and SignGuard.

The paper's experiments run in the cross-silo regime — every client submits
a gradient every round.  Real cross-device federations sample a small cohort
per round (FedAvg-style ``C·n`` sampling) and lose some of the sampled
clients to dropouts, which changes the defense's job: the Byzantine fraction
*within the cohort* fluctuates round to round.

This example runs the ByzMean attack against SignGuard on an n=200
federation in three participation regimes:

1. full participation (the paper's setting),
2. 20% uniform cohorts per round, and
3. 20% cohorts with a 10% dropout rate,

and prints accuracy plus cohort statistics.  The sampled runs train on ~5x
fewer client gradients per round — the collect stage's cost scales with the
cohort, not the population — while SignGuard's per-round sign-statistics
filtering keeps working on whatever subset reports.

Run with:  python examples/partial_participation.py
"""

from __future__ import annotations

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    run_experiment,
)


def make_config(**participation) -> ExperimentConfig:
    """An n=200 cross-device-sized setup that still finishes in minutes."""
    return ExperimentConfig(
        num_clients=200,
        seed=7,
        data=DataConfig(dataset="mnist_like", num_train=3000, num_test=500),
        training=TrainingConfig(
            model="mlp",
            rounds=15,
            batch_size=16,
            learning_rate=0.1,
            eval_every=5,
            **participation,
        ),
        attack=AttackConfig(name="byzmean", byzantine_fraction=0.2),
        defense=DefenseConfig(name="signguard"),
    )


def describe(name: str, recorder) -> None:
    print(
        f"{name:<28}: best_acc={100 * recorder.best_accuracy():6.2f}%  "
        f"mean_cohort={recorder.mean_cohort_size():6.1f}  "
        f"dropouts={recorder.total_dropouts():3d}  "
        f"byz_kept={100 * recorder.mean_byzantine_selection_rate():5.1f}%  "
        f"benign_kept={100 * recorder.mean_benign_selection_rate():5.1f}%"
    )


def main() -> None:
    print("1/3  Full participation (200 clients every round)...")
    full = run_experiment(make_config())

    print("2/3  Uniform 20% cohorts (40 clients per round)...")
    sampled = run_experiment(
        make_config(participation="uniform", participation_fraction=0.2)
    )

    print("3/3  20% cohorts with 10% dropouts...")
    flaky = run_experiment(
        make_config(
            participation="uniform",
            participation_fraction=0.2,
            dropout_rate=0.1,
        )
    )

    print("\n--- ByzMean vs SignGuard, n=200 --------------------------------")
    describe("full participation", full)
    describe("20% cohorts", sampled)
    describe("20% cohorts + 10% dropout", flaky)
    print(
        "\nPer-round cohort detail (first 5 sampled rounds):\n  "
        + "\n  ".join(
            f"round {r.round_index}: cohort={r.cohort_size} "
            f"dropped={r.num_dropped} reporting={r.num_reporting} "
            f"sampled_byzantine={r.byzantine_total}"
            for r in flaky.rounds[:5]
        )
    )


if __name__ == "__main__":
    main()
