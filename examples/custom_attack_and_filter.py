#!/usr/bin/env python3
"""Extending the library: a custom attack and a custom SignGuard filter.

This example shows the two extension points a security researcher typically
needs:

1. writing a new model-poisoning attack (here: a "partial drift" attack that
   pushes a random coordinate subset in the wrong direction), and
2. inspecting SignGuard's internals — feature extraction and per-filter
   decisions — on a single round of gradients, without running a full
   federated simulation.

Run with:  python examples/custom_attack_and_filter.py
"""

from __future__ import annotations

import numpy as np

from repro.attacks import Attack, AttackContext
from repro.core import (
    NormThresholdFilter,
    SignClusteringFilter,
    SignGuard,
    extract_features,
)
from repro.aggregators.base import ServerContext
from repro.data import build_dataset, partition_dataset
from repro.fl import build_clients
from repro.nn.models import build_model
from repro.utils.rng import RngFactory


class PartialDriftAttack(Attack):
    """Amplify and flip a random fraction of coordinates of the attacker's own gradient.

    A simple adaptive attack idea: corrupt only a subset of coordinates
    (rather than all of them, as sign-flipping does) and scale them up so the
    poisoned update actively pushes the model in the wrong direction.
    """

    name = "partial_drift"

    def __init__(self, corrupted_fraction: float = 0.6, scale: float = 6.0):
        self.corrupted_fraction = corrupted_fraction
        self.scale = scale

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        byzantine = np.asarray(context.byzantine_indices, dtype=int)
        crafted = honest_gradients[byzantine].copy()
        dim = honest_gradients.shape[1]
        corrupted = context.rng.choice(
            dim, size=int(self.corrupted_fraction * dim), replace=False
        )
        crafted[:, corrupted] *= -self.scale
        return crafted


def collect_one_round_of_gradients():
    """Compute one round of honest client gradients on the MNIST-like task."""
    rng_factory = RngFactory(0)
    split = build_dataset(
        "mnist_like", num_train=800, num_test=200, rng=rng_factory.make("d")
    )
    partitions = partition_dataset(
        split.train, 20, scheme="iid", rng=rng_factory.make("p")
    )
    clients = build_clients(
        split.train,
        partitions,
        byzantine_indices=[],
        batch_size=16,
        rng_factory=rng_factory,
    )
    model = build_model("mlp", split.spec, rng=rng_factory.make("m"))
    return np.vstack([client.compute_gradient(model) for client in clients])


def main() -> None:
    honest = collect_one_round_of_gradients()
    num_byzantine = 4
    context = AttackContext.make(
        num_clients=len(honest), byzantine_indices=np.arange(num_byzantine), rng=0
    )
    submitted = PartialDriftAttack(corrupted_fraction=0.6, scale=6.0).apply(
        honest, context
    )

    print("Sign-statistics features (positive / zero / negative fractions):")
    features = extract_features(submitted, coordinate_fraction=0.2, rng=1)
    for index, row in enumerate(features.matrix):
        marker = "<-- malicious" if index < num_byzantine else ""
        print(f"  client {index:2d}: {np.round(row, 3)} {marker}")

    norm_decision = NormThresholdFilter().apply(submitted)
    sign_decision = SignClusteringFilter(coordinate_fraction=0.2).apply(
        submitted, rng=1
    )
    print(f"\nNorm filter kept   : {sorted(map(int, norm_decision.selected_indices))}")
    print(f"Sign filter kept   : {sorted(map(int, sign_decision.selected_indices))}")

    result = SignGuard(coordinate_fraction=0.2)(submitted, ServerContext.make(rng=1))
    caught = set(range(num_byzantine)) - set(int(i) for i in result.selected_indices)
    print(f"SignGuard kept     : {sorted(map(int, result.selected_indices))}")
    print(f"Malicious filtered : {len(caught)} of {num_byzantine}")
    benign_mean = honest[num_byzantine:].mean(axis=0)
    print(
        "Aggregate error vs benign mean: "
        f"{np.linalg.norm(result.gradient - benign_mean):.4f} (SignGuard) vs "
        f"{np.linalg.norm(submitted.mean(axis=0) - benign_mean):.4f} (undefended mean)"
    )


if __name__ == "__main__":
    main()
