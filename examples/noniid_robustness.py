#!/usr/bin/env python3
"""Non-IID robustness: SignGuard-Sim under label-skewed client data (Fig. 6).

Partitions the synthetic Fashion-MNIST-like task with the paper's
sort-and-partition scheme at three skew levels (s = 0.3, 0.5, 0.8; smaller s
is more skewed) and compares SignGuard-Sim with trimmed mean and Multi-Krum
under the LIE and ByzMean attacks.

Run with:  python examples/noniid_robustness.py
"""

from __future__ import annotations

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    run_experiment,
)

SKEW_LEVELS = (0.3, 0.5, 0.8)
ATTACKS = ("lie", "byzmean")
DEFENSES = ("trimmed_mean", "multi_krum", "signguard_sim")


def make_config(attack: str, defense: str, iid_fraction: float) -> ExperimentConfig:
    return ExperimentConfig(
        num_clients=15,
        seed=5,
        data=DataConfig(
            dataset="fashion_like",
            num_train=900,
            num_test=300,
            partition="sort_and_partition",
            iid_fraction=iid_fraction,
        ),
        training=TrainingConfig(
            model="mlp", rounds=18, batch_size=16, learning_rate=0.1, eval_every=6
        ),
        attack=AttackConfig(name=attack, byzantine_fraction=0.2),
        defense=DefenseConfig(name=defense),
    )


def main() -> None:
    total = len(SKEW_LEVELS) * len(ATTACKS) * len(DEFENSES)
    print(f"Running {total} non-IID experiments (three skew levels)...")
    for attack in ATTACKS:
        print(f"\n== attack: {attack} ==")
        print(
            f"{'defense':16s}" + "".join(f"{'s=' + str(s):>10s}" for s in SKEW_LEVELS)
        )
        for defense in DEFENSES:
            accuracies = []
            for skew in SKEW_LEVELS:
                recorder = run_experiment(make_config(attack, defense, skew))
                accuracies.append(recorder.best_accuracy())
            print(f"{defense:16s}" + "".join(f"{100 * a:>9.1f}%" for a in accuracies))

    print(
        "\nPaper shape (Fig. 6): defenses degrade as s shrinks (more skew) and "
        "SignGuard-Sim sits at or near the top of each column. At this reduced "
        "example scale the attacks only partially bite, so the defenses end up "
        "close together; run the Fig. 6 benchmark (REPRO_BENCH_PROFILE=full "
        "pytest benchmarks/test_fig6_noniid_defense_comparison.py --benchmark-only -s) "
        "for the paper-scale separation."
    )


if __name__ == "__main__":
    main()
