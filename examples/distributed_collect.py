#!/usr/bin/env python3
"""Distributed gradient collection over a localhost ``repro-worker`` fleet.

PR 2–4 made the collect stage pluggable in-process (threads, worker
processes); ``repro.fl.transport`` takes the same contract across TCP.
Each ``repro-worker`` serves a shard of the client population: per round
it receives the global model's ``state_dict()`` and the round's row
slice, computes its clients' gradients through the exact sequential
collect loop, and streams the shard back into the caller's preallocated
round buffer.

This example demonstrates the two headline properties on a two-worker
localhost fleet (real subprocesses — the same entrypoint a multi-host
deployment runs):

1. **Bit-identical training.**  The distributed run reproduces the
   sequential run's per-round losses and accuracies exactly — same
   gradients, same model, same metrics — because client RNG streams live
   in the owning worker and advance exactly once per computed round.
2. **Failure = dropouts, not a crash.**  A worker that dies mid-round
   degrades into ``RoundPlan`` dropouts: the round completes with the
   surviving cohort, and the run keeps going.

Run with:  python examples/distributed_collect.py [--wire-codec CODEC]

``--wire-codec`` negotiates a compressed gradient wire format (PR 7):
``raw`` (the default) keeps the byte-identical wire and the bit-identical
guarantee; ``sign1bit`` / ``int8`` / ``fp16`` / ``topk`` trade exactness
for a 4–64x smaller gather, so the example reports the per-round metric
deltas against the sequential reference instead of asserting equality.

In a real deployment you would start workers yourself, e.g.::

    repro-worker --host 0.0.0.0 --port 9000   # on each worker host

and point the experiment at them::

    TrainingConfig(collect_backend="distributed",
                   workers=["hostA:9000", "hostB:9000"],
                   wire_codec="sign1bit")
"""

from __future__ import annotations

import argparse

from repro import (
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    run_experiment,
)
from repro.fl.transport import (
    spawn_local_fleet,
    spawn_worker_process,
    wire_codec_names,
)
from repro.perf import RoundProfiler


def make_config(**training) -> ExperimentConfig:
    return ExperimentConfig(
        num_clients=20,
        seed=11,
        data=DataConfig(dataset="mnist_like", num_train=600, num_test=200),
        training=TrainingConfig(
            model="mlp", rounds=5, batch_size=16, eval_every=1, **training
        ),
        defense=DefenseConfig(name="signguard"),
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--wire-codec",
        default="raw",
        choices=wire_codec_names(),
        help=(
            "gradient wire codec negotiated with the workers; raw keeps the "
            "bit-identical guarantee, the compressed codecs report metric "
            "deltas instead"
        ),
    )
    args = parser.parse_args(argv)
    codec = args.wire_codec

    print("1/3  Sequential reference run (20 clients, 5 rounds)...")
    sequential = run_experiment(make_config(collect_backend="sequential"))

    print(f"2/3  Same run over a two-worker localhost fleet (codec: {codec})...")
    profiler = RoundProfiler()
    with spawn_local_fleet(2) as fleet:
        print(f"     workers: {fleet.addresses}")
        distributed = run_experiment(
            make_config(
                collect_backend="distributed",
                workers=fleet.addresses,
                wire_codec=codec,
            ),
            profiler=profiler,
        )

    seq_losses = [round.train_loss for round in sequential.rounds]
    dist_losses = [round.train_loss for round in distributed.rounds]
    seq_accs = [round.test_accuracy for round in sequential.rounds]
    dist_accs = [round.test_accuracy for round in distributed.rounds]
    identical = seq_losses == dist_losses and seq_accs == dist_accs
    sent = profiler.counters.get("collect_bytes_sent", 0)
    received = profiler.counters.get("collect_bytes_received", 0)
    rounds = len(distributed.rounds)
    print("\n--- sequential vs distributed ----------------------------------")
    for index in range(rounds):
        print(
            f"  round {index}: loss {seq_losses[index]:.6f} / "
            f"{dist_losses[index]:.6f}   acc {100 * seq_accs[index]:5.2f}% / "
            f"{100 * dist_accs[index]:5.2f}%"
        )
    print(
        f"  wire traffic: {sent / 2**20:.2f} MiB sent, "
        f"{received / 2**20:.2f} MiB received "
        f"({(sent + received) / rounds / 2**20:.2f} MiB/round)"
    )
    if codec == "raw":
        print(f"  bit-identical: {identical}")
        if not identical:
            raise SystemExit("distributed run diverged from the sequential run")
    else:
        # A lossy codec trades exactness for wire bytes; the run must still
        # track the uncompressed reference closely.
        final_delta = abs(seq_accs[-1] - dist_accs[-1])
        print(
            f"  codec {codec}: final accuracy delta "
            f"{100 * final_delta:.2f} points vs the uncompressed reference"
        )
        if final_delta > 0.15:
            raise SystemExit(
                f"wire codec {codec} diverged from the sequential run: "
                f"final accuracy delta {final_delta:.4f} > 0.15"
            )

    print("\n3/3  Fault injection: one worker dies on its second round...")
    crashing = spawn_worker_process(extra_args=["--fault", "crash@2"])
    healthy = spawn_worker_process()
    try:
        degraded = run_experiment(
            make_config(
                collect_backend="distributed",
                workers=[crashing.address, healthy.address],
                wire_codec=codec,
            )
        )
    finally:
        crashing.terminate()
        healthy.terminate()
    for round in degraded.rounds:
        note = "  <- worker died: clients demoted to dropouts" * bool(
            round.num_dropped
        )
        print(
            f"  round {round.round_index}: reporting={round.num_reporting:2d} "
            f"dropped={round.num_dropped:2d} loss={round.train_loss:.4f}{note}"
        )
    print(
        "  the run completed all "
        f"{len(degraded.rounds)} rounds despite losing a worker"
    )


if __name__ == "__main__":
    main()
