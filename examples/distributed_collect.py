#!/usr/bin/env python3
"""Distributed gradient collection over a localhost ``repro-worker`` fleet.

PR 2–4 made the collect stage pluggable in-process (threads, worker
processes); ``repro.fl.transport`` takes the same contract across TCP.
Each ``repro-worker`` serves a shard of the client population: per round
it receives the global model's ``state_dict()`` and the round's row
slice, computes its clients' gradients through the exact sequential
collect loop, and streams the shard back into the caller's preallocated
round buffer.

This example demonstrates the two headline properties on a two-worker
localhost fleet (real subprocesses — the same entrypoint a multi-host
deployment runs):

1. **Bit-identical training.**  The distributed run reproduces the
   sequential run's per-round losses and accuracies exactly — same
   gradients, same model, same metrics — because client RNG streams live
   in the owning worker and advance exactly once per computed round.
2. **Failure = dropouts, not a crash.**  A worker that dies mid-round
   degrades into ``RoundPlan`` dropouts: the round completes with the
   surviving cohort, and the run keeps going.

Run with:  python examples/distributed_collect.py

In a real deployment you would start workers yourself, e.g.::

    repro-worker --host 0.0.0.0 --port 9000   # on each worker host

and point the experiment at them::

    TrainingConfig(collect_backend="distributed",
                   workers=["hostA:9000", "hostB:9000"])
"""

from __future__ import annotations

from repro import (
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    run_experiment,
)
from repro.fl.transport import spawn_local_fleet, spawn_worker_process
from repro.perf import RoundProfiler


def make_config(**training) -> ExperimentConfig:
    return ExperimentConfig(
        num_clients=20,
        seed=11,
        data=DataConfig(dataset="mnist_like", num_train=600, num_test=200),
        training=TrainingConfig(
            model="mlp", rounds=5, batch_size=16, eval_every=1, **training
        ),
        defense=DefenseConfig(name="signguard"),
    )


def main() -> None:
    print("1/3  Sequential reference run (20 clients, 5 rounds)...")
    sequential = run_experiment(make_config(collect_backend="sequential"))

    print("2/3  Same run over a two-worker localhost fleet...")
    profiler = RoundProfiler()
    with spawn_local_fleet(2) as fleet:
        print(f"     workers: {fleet.addresses}")
        distributed = run_experiment(
            make_config(collect_backend="distributed", workers=fleet.addresses),
            profiler=profiler,
        )

    seq_losses = [round.train_loss for round in sequential.rounds]
    dist_losses = [round.train_loss for round in distributed.rounds]
    seq_accs = [round.test_accuracy for round in sequential.rounds]
    dist_accs = [round.test_accuracy for round in distributed.rounds]
    identical = seq_losses == dist_losses and seq_accs == dist_accs
    sent = profiler.counters.get("collect_bytes_sent", 0)
    received = profiler.counters.get("collect_bytes_received", 0)
    rounds = len(distributed.rounds)
    print("\n--- sequential vs distributed ----------------------------------")
    for index in range(rounds):
        print(
            f"  round {index}: loss {seq_losses[index]:.6f} / "
            f"{dist_losses[index]:.6f}   acc {100 * seq_accs[index]:5.2f}% / "
            f"{100 * dist_accs[index]:5.2f}%"
        )
    print(f"  bit-identical: {identical}")
    print(
        f"  wire traffic: {sent / 2**20:.2f} MiB sent, "
        f"{received / 2**20:.2f} MiB received "
        f"({(sent + received) / rounds / 2**20:.2f} MiB/round)"
    )
    if not identical:
        raise SystemExit("distributed run diverged from the sequential run")

    print("\n3/3  Fault injection: one worker dies on its second round...")
    crashing = spawn_worker_process(extra_args=["--crash-at-round", "2"])
    healthy = spawn_worker_process()
    try:
        degraded = run_experiment(
            make_config(
                collect_backend="distributed",
                workers=[crashing.address, healthy.address],
            )
        )
    finally:
        crashing.terminate()
        healthy.terminate()
    for round in degraded.rounds:
        note = "  <- worker died: clients demoted to dropouts" * bool(
            round.num_dropped
        )
        print(
            f"  round {round.round_index}: reporting={round.num_reporting:2d} "
            f"dropped={round.num_dropped:2d} loss={round.train_loss:.4f}{note}"
        )
    print(
        "  the run completed all "
        f"{len(degraded.rounds)} rounds despite losing a worker"
    )


if __name__ == "__main__":
    main()
