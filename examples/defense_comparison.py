#!/usr/bin/env python3
"""Compare defenses across the paper's attack suite (a miniature Table I).

Runs a grid of attacks x defenses on one synthetic task and prints the best
test accuracy of every cell plus each defense's worst case across attacks —
the at-a-glance robustness comparison from the paper's evaluation.

Run with:  python examples/defense_comparison.py [--dataset mnist_like]
"""

from __future__ import annotations

import argparse

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    run_grid,
)

ATTACKS = ("no_attack", "random", "sign_flip", "lie", "byzmean", "min_max")
DEFENSES = (
    "mean",
    "median",
    "trimmed_mean",
    "multi_krum",
    "signguard",
    "signguard_sim",
)


def base_config(dataset: str) -> ExperimentConfig:
    model = "textrnn" if dataset == "agnews_like" else "mlp"
    learning_rate = 0.5 if model == "textrnn" else 0.1
    return ExperimentConfig(
        num_clients=15,
        seed=1,
        data=DataConfig(dataset=dataset, num_train=800, num_test=300),
        training=TrainingConfig(
            model=model,
            rounds=15,
            batch_size=16,
            learning_rate=learning_rate,
            eval_every=5,
        ),
        attack=AttackConfig(name="no_attack", byzantine_fraction=0.2),
        defense=DefenseConfig(name="mean"),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dataset",
        default="mnist_like",
        choices=["mnist_like", "fashion_like", "cifar_like", "agnews_like"],
    )
    args = parser.parse_args()

    print(f"Running {len(ATTACKS) * len(DEFENSES)} experiments on {args.dataset} "
          "(this takes a couple of minutes)...")
    results = run_grid(base_config(args.dataset), attacks=ATTACKS, defenses=DEFENSES)

    print(f"\nBest test accuracy (%) on {args.dataset}, 20% Byzantine clients")
    print(
        f"{'defense':16s}"
        + "".join(f"{attack:>12s}" for attack in ATTACKS)
        + f"{'worst':>12s}"
    )
    for defense in DEFENSES:
        accuracies = [results[(attack, defense)].best_accuracy() for attack in ATTACKS]
        worst_under_attack = min(accuracies[1:])
        row = "".join(f"{100 * acc:>11.2f}%" for acc in accuracies)
        print(f"{defense:16s}{row}{100 * worst_under_attack:>11.2f}%")

    print(
        "\nReading the table: the SignGuard rows should stay close to their no-attack "
        "column for every attack, while mean/median/Krum degrade under the "
        "well-crafted attacks (LIE, ByzMean, Min-Max)."
    )


if __name__ == "__main__":
    main()
