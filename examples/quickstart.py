#!/usr/bin/env python3
"""Quickstart: defend a federated-learning run against the ByzMean attack.

This example runs three small experiments on the synthetic MNIST-like task:

1. the no-attack baseline with plain mean aggregation,
2. the ByzMean attack (the paper's hybrid attack) against plain mean, and
3. the same attack defended by SignGuard.

It then prints the best test accuracy of each run, the attack impact, and the
fraction of honest / malicious gradients SignGuard kept — the same quantities
the paper reports in Table I and Table II.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    run_experiment,
)
from repro.fl.metrics import attack_impact


def make_config(attack: str, defense: str) -> ExperimentConfig:
    """A small configuration that finishes in well under a minute on a laptop."""
    return ExperimentConfig(
        num_clients=20,
        seed=7,
        data=DataConfig(dataset="mnist_like", num_train=1000, num_test=300),
        training=TrainingConfig(
            model="mlp", rounds=20, batch_size=16, learning_rate=0.1, eval_every=4
        ),
        attack=AttackConfig(name=attack, byzantine_fraction=0.2),
        defense=DefenseConfig(name=defense),
    )


def main() -> None:
    print("1/3  Training the no-attack baseline (mean aggregation)...")
    baseline = run_experiment(make_config("no_attack", "mean"))

    print("2/3  Training under the ByzMean attack with NO defense...")
    undefended = run_experiment(make_config("byzmean", "mean"))

    print("3/3  Training under the ByzMean attack defended by SignGuard...")
    defended = run_experiment(make_config("byzmean", "signguard"))

    baseline_acc = baseline.best_accuracy()
    undefended_acc = undefended.best_accuracy()
    defended_acc = defended.best_accuracy()

    print("\n--- results -------------------------------------------------------")
    print(
        f"no attack, mean aggregation      : {100 * baseline_acc:6.2f}% best accuracy"
    )
    print(
        f"ByzMean attack, mean aggregation : {100 * undefended_acc:6.2f}% "
        f"(attack impact {100 * attack_impact(baseline_acc, undefended_acc):.2f}%)"
    )
    print(
        f"ByzMean attack, SignGuard        : {100 * defended_acc:6.2f}% "
        f"(attack impact {100 * attack_impact(baseline_acc, defended_acc):.2f}%)"
    )
    print(
        "SignGuard selection rates        : "
        f"honest kept {100 * defended.mean_benign_selection_rate():.1f}%, "
        f"malicious kept {100 * defended.mean_byzantine_selection_rate():.1f}%"
    )
    print("-------------------------------------------------------------------")
    print(
        "SignGuard should track the baseline closely while the undefended "
        "run degrades."
    )


if __name__ == "__main__":
    main()
