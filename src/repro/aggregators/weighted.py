"""Weighted mean aggregation (FedAvg with per-client weights).

This is the first rule that consumes
:attr:`~repro.fl.participation.RoundPlan.weights`: the participation
engine threads each round's per-active-client aggregation weights to the
server, which exposes them as
``ServerContext.extra["participation_weights"]``.  The built-in schedules
emit uniform weights (every reporting client counts equally — plain
FedAvg under sampling), but a custom
:class:`~repro.fl.participation.ParticipationSchedule` can weight by
local sample counts to reproduce the heterogeneous-sample-size FedAvg
objective.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)


class WeightedMeanAggregator(Aggregator):
    """Convex combination of the received gradients.

    The weights come from (in priority order) the ``weights`` constructor
    argument, then ``context.extra["participation_weights"]`` — the
    round-plan channel — and finally a uniform fallback.

    Degenerate weights never crash a round mid-run: a weight vector of
    the wrong length, with non-finite or negative entries, or summing to
    (numerically) zero is replaced by the uniform fallback and the
    decision is reported in ``info["weights_fallback"]``.  The uniform
    path computes ``gradients.mean(axis=0)`` verbatim, so with the
    default schedules this rule is bit-identical to
    :class:`~repro.aggregators.mean.MeanAggregator`.
    """

    name = "weighted_mean"

    def __init__(self, *, weights=None):
        self.weights = None if weights is None else np.asarray(weights, np.float64)

    def _resolve_weights(
        self, n_clients: int, context: Optional[ServerContext]
    ) -> tuple:
        """Return ``(normalized weights or None, fallback reason or None)``."""
        weights = self.weights
        if weights is None and context is not None:
            weights = context.extra.get("participation_weights")
        if weights is None:
            return None, "no weights provided"
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n_clients,):
            return None, (
                f"expected weights of shape ({n_clients},), got {weights.shape}"
            )
        if not np.all(np.isfinite(weights)):
            return None, "weights contain non-finite entries"
        if np.any(weights < 0):
            return None, "weights contain negative entries"
        total = weights.sum()
        if total <= 0 or not np.isfinite(total):
            return None, "weights sum to zero"
        return weights / total, None

    def aggregate(
        self, gradients: np.ndarray, context: Optional[ServerContext] = None
    ) -> AggregationResult:
        weights, fallback = self._resolve_weights(len(gradients), context)
        if weights is not None and np.all(weights == weights[0]):
            # Exactly-uniform weights (what the built-in schedules emit)
            # take the plain-mean path, keeping this rule bit-identical to
            # MeanAggregator rather than merely close in floating point.
            weights = None
        if weights is None:
            aggregate = gradients.mean(axis=0)
            used = np.full(len(gradients), 1.0 / len(gradients), dtype=np.float64)
        else:
            # The weighted combination runs in the gradient dtype so the
            # float32 round path stays float32 end to end.
            aggregate = (weights.astype(gradients.dtype) @ gradients).astype(
                gradients.dtype
            )
            used = weights
        info = {"rule": self.name, "weights": used}
        if fallback is not None and (
            self.weights is not None
            or (context is not None and "participation_weights" in context.extra)
        ):
            # Only report a *fallback* when weights were actually supplied
            # and rejected; running without any weights is the normal
            # full-participation configuration, not a degeneracy.
            info["weights_fallback"] = fallback
        return AggregationResult(
            gradient=aggregate,
            selected_indices=all_indices(gradients),
            info=info,
        )
