"""Geometric median aggregation via Weiszfeld's algorithm."""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)
from repro.utils.batch import resolve_batch


def geometric_median(
    points: np.ndarray,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    epsilon: float = 1e-10,
) -> np.ndarray:
    """Weiszfeld iteration for the point minimizing the sum of Euclidean distances.

    The iteration is started from the coordinate-wise mean and smoothed with
    a distance floor to remain well-defined when the estimate coincides with
    one of the input points — with exact-duplicate rows (every Byzantine
    client replaying one crafted gradient) entire distance entries are
    exactly zero, and the floor is what keeps the ``1 / distance`` weights
    finite instead of dividing by zero.

    Both the floor and the early-exit tolerance are *scaled to the input
    norm* (the median row norm, floored at 1 so unit-scale inputs keep the
    historical absolute semantics): raw gradients can be O(1e3) while
    normalized ones are O(1), and an absolute ``1e-7`` step tolerance that
    is loose for the former spins uselessly for the latter — at large
    cohort sizes those wasted O(n · d) sweeps dominate the aggregation
    cost.

    Distances are deliberately computed directly from the difference matrix:
    the expanded quadratic form ``||p||² - 2 p·e + ||e||²`` cancels
    catastrophically once the estimate converges into a tight large-norm
    cluster, distorting the ``1 / distance`` weights far beyond the
    convergence tolerance.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    estimate = points.mean(axis=0)
    scale = max(float(np.median(np.linalg.norm(points, axis=1))), 1.0)
    step_tolerance = tolerance * scale
    distance_floor = epsilon * scale
    for _ in range(max_iterations):
        distances = np.linalg.norm(points - estimate, axis=1)
        weights = 1.0 / np.maximum(distances, distance_floor)
        new_estimate = (weights[:, None] * points).sum(axis=0) / weights.sum()
        if np.linalg.norm(new_estimate - estimate) <= step_tolerance:
            return new_estimate
        estimate = new_estimate
    return estimate


class GeometricMedianAggregator(Aggregator):
    """Aggregate with the geometric median of the received gradients (GeoMed)."""

    name = "geomed"

    def __init__(self, *, max_iterations: int = 100, tolerance: float = 1e-7):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        batch = resolve_batch(gradients, context)
        aggregated = geometric_median(
            batch.matrix,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        return AggregationResult(
            gradient=aggregated,
            selected_indices=all_indices(gradients),
            info={"rule": self.name},
        )
