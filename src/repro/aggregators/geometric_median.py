"""Geometric median aggregation via Weiszfeld's algorithm."""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)
from repro.utils.batch import resolve_batch


def geometric_median(
    points: np.ndarray,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    epsilon: float = 1e-10,
) -> np.ndarray:
    """Weiszfeld iteration for the point minimizing the sum of Euclidean distances.

    The iteration is started from the coordinate-wise mean and smoothed with
    ``epsilon`` to remain well-defined when the estimate coincides with one
    of the input points.

    Distances are deliberately computed directly from the difference matrix:
    the expanded quadratic form ``||p||² - 2 p·e + ||e||²`` cancels
    catastrophically once the estimate converges into a tight large-norm
    cluster, distorting the ``1 / distance`` weights far beyond the
    convergence tolerance.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    estimate = points.mean(axis=0)
    for _ in range(max_iterations):
        distances = np.linalg.norm(points - estimate, axis=1)
        weights = 1.0 / np.maximum(distances, epsilon)
        new_estimate = (weights[:, None] * points).sum(axis=0) / weights.sum()
        if np.linalg.norm(new_estimate - estimate) <= tolerance:
            return new_estimate
        estimate = new_estimate
    return estimate


class GeometricMedianAggregator(Aggregator):
    """Aggregate with the geometric median of the received gradients (GeoMed)."""

    name = "geomed"

    def __init__(self, *, max_iterations: int = 100, tolerance: float = 1e-7):
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        batch = resolve_batch(gradients, context)
        aggregated = geometric_median(
            batch.matrix,
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
        )
        return AggregationResult(
            gradient=aggregated,
            selected_indices=all_indices(gradients),
            info={"rule": self.name},
        )
