"""Divide-and-Conquer (DnC) aggregation (Shejwalkar & Houmansadr, NDSS 2021).

DnC repeatedly (1) subsamples coordinates, (2) centres the subsampled
gradients, (3) computes outlier scores as the squared projection onto the top
singular vector, and (4) removes the ``c * f`` highest-scoring clients.  The
final aggregate is the mean of the clients that survive every iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.utils.batch import resolve_batch


class DivideAndConquerAggregator(Aggregator):
    """Spectral outlier filtering via projections onto the top singular vector."""

    name = "dnc"
    requires_byzantine_count = True

    def __init__(
        self,
        num_byzantine: Optional[int] = None,
        *,
        num_iterations: int = 3,
        subsample_dim: int = 512,
        filter_fraction: float = 1.0,
    ):
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        if subsample_dim < 1:
            raise ValueError(f"subsample_dim must be >= 1, got {subsample_dim}")
        if filter_fraction <= 0:
            raise ValueError(f"filter_fraction must be > 0, got {filter_fraction}")
        self.num_byzantine = num_byzantine
        self.num_iterations = num_iterations
        self.subsample_dim = subsample_dim
        self.filter_fraction = filter_fraction

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        # DnC scores coordinate subsamples, so the round cache's full-matrix
        # quantities do not apply; the batch still supplies the validated
        # matrix without a second validation pass.
        gradients = resolve_batch(gradients, context).matrix
        n, dim = gradients.shape
        f = (
            self.num_byzantine
            if self.num_byzantine is not None
            else self._byzantine_count(gradients, context)
        )
        f = int(min(f, (n - 1) // 2))
        num_removed = int(round(self.filter_fraction * f))
        good = np.arange(n)

        # Removal *compounds*: every iteration drops ``num_removed`` of the
        # still-surviving clients (down to a floor of one), so the final
        # survivor count is roughly ``n - num_iterations * num_removed``.
        # This matches the seed and the frozen reference implementation
        # (tests/test_aggregators_advanced.py pins it).
        for _ in range(self.num_iterations):
            subset_dim = min(self.subsample_dim, dim)
            coords = context.rng.choice(dim, size=subset_dim, replace=False)
            sampled = gradients[good][:, coords]
            centered = sampled - sampled.mean(axis=0)
            # Top right-singular vector of the centered matrix.
            try:
                _, _, vt = np.linalg.svd(centered, full_matrices=False)
                top_direction = vt[0]
            except np.linalg.LinAlgError:  # pragma: no cover - degenerate input
                top_direction = np.ones(subset_dim) / np.sqrt(subset_dim)
            scores = (centered @ top_direction) ** 2
            keep = max(len(good) - num_removed, 1)
            # Stable sort so exact score ties (e.g. identical gradients)
            # break by client index on every platform.
            order = np.argsort(scores, kind="stable")
            good = good[order[:keep]]

        good = np.sort(good)
        return AggregationResult(
            gradient=gradients[good].mean(axis=0),
            selected_indices=good,
            info={"rule": self.name, "num_byzantine": f},
        )
