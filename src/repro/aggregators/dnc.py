"""Divide-and-Conquer (DnC) aggregation (Shejwalkar & Houmansadr, NDSS 2021).

DnC repeatedly (1) subsamples coordinates, (2) centres the subsampled
gradients, (3) computes outlier scores as the squared projection onto the top
singular vector, and (4) removes the ``c * f`` highest-scoring clients.  The
final aggregate is the mean of the clients that survive every iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.utils.batch import resolve_batch


def power_iteration_top_direction(
    centered: np.ndarray,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
) -> np.ndarray:
    """Top right-singular vector of ``centered`` via power iteration.

    Iterates ``v -> normalize(Aᵀ(A v))`` — the power method on the PSD
    operator ``AᵀA``, whose dominant eigenvector is the top right-singular
    vector of ``A``.  DnC only consumes *squared* projections onto the
    returned direction, so its (arbitrary) sign is irrelevant.

    Deterministic by construction: the start vector is the centered row
    with the largest squared norm (the row most aligned with the dominant
    direction on attack-structured populations), so the method draws no
    randomness and an aggregator switching between ``svd="full"`` and
    ``svd="power"`` consumes exactly the same rng stream for its
    coordinate subsampling.

    Convergence needs a spectral gap.  Byzantine-attacked populations have
    a large one (the benign/malicious separation *is* the top component,
    typically converging in a handful of iterations); on gap-free
    isotropic noise the method stops at ``max_iterations`` with a
    direction whose scores are near-uniform — exactly the regime where
    DnC's removal choice is arbitrary under full SVD too.
    """
    n, dim = centered.shape
    sq_norms = np.einsum("ij,ij->i", centered, centered)
    start = centered[int(np.argmax(sq_norms))]
    norm = np.linalg.norm(start)
    if norm == 0.0 or not np.isfinite(norm):
        # All-identical (fully centered-out) rows: any direction scores
        # every client identically; pick a fixed one.
        return np.ones(dim, dtype=centered.dtype) / np.sqrt(dim)
    vector = start / norm
    for _ in range(max_iterations):
        projected = centered.T @ (centered @ vector)
        norm = np.linalg.norm(projected)
        if norm == 0.0 or not np.isfinite(norm):
            return vector
        projected = projected / norm
        # The eigenvector is sign-ambiguous; compare against both signs so
        # an alternating iterate still registers as converged.
        step = min(
            float(np.linalg.norm(projected - vector)),
            float(np.linalg.norm(projected + vector)),
        )
        vector = projected
        if step <= tolerance:
            break
    return vector


class DivideAndConquerAggregator(Aggregator):
    """Spectral outlier filtering via projections onto the top singular vector."""

    name = "dnc"
    requires_byzantine_count = True

    def __init__(
        self,
        num_byzantine: Optional[int] = None,
        *,
        num_iterations: int = 3,
        subsample_dim: int = 512,
        filter_fraction: float = 1.0,
        svd: str = "full",
    ):
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        if subsample_dim < 1:
            raise ValueError(f"subsample_dim must be >= 1, got {subsample_dim}")
        if filter_fraction <= 0:
            raise ValueError(f"filter_fraction must be > 0, got {filter_fraction}")
        if svd not in {"full", "power"}:
            raise ValueError(f"svd must be 'full' or 'power', got {svd!r}")
        self.num_byzantine = num_byzantine
        self.num_iterations = num_iterations
        self.subsample_dim = subsample_dim
        self.filter_fraction = filter_fraction
        self.svd = svd

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        # DnC scores coordinate subsamples, so the round cache's full-matrix
        # quantities do not apply; the batch still supplies the validated
        # matrix without a second validation pass.
        gradients = resolve_batch(gradients, context).matrix
        n, dim = gradients.shape
        f = (
            self.num_byzantine
            if self.num_byzantine is not None
            else self._byzantine_count(gradients, context)
        )
        f = int(min(f, (n - 1) // 2))
        num_removed = int(round(self.filter_fraction * f))
        good = np.arange(n)

        # Removal *compounds*: every iteration drops ``num_removed`` of the
        # still-surviving clients (down to a floor of one), so the final
        # survivor count is roughly ``n - num_iterations * num_removed``.
        # This matches the seed and the frozen reference implementation
        # (tests/test_aggregators_advanced.py pins it).
        for _ in range(self.num_iterations):
            subset_dim = min(self.subsample_dim, dim)
            coords = context.rng.choice(dim, size=subset_dim, replace=False)
            sampled = gradients[good][:, coords]
            centered = sampled - sampled.mean(axis=0)
            # Top right-singular vector of the centered matrix.  The power
            # mode costs O(n · subsample_dim) per iterate instead of the
            # full O(min(n, d)² · max(n, d)) LAPACK factorization — the
            # large-cohort configuration.  Scores change only within the
            # power method's convergence tolerance; selection agreement
            # with svd="full" is equivalence-tested on attack-structured
            # populations (tests/test_aggregators_advanced.py), and both
            # modes consume identical rng streams.
            if self.svd == "power":
                top_direction = power_iteration_top_direction(centered)
            else:
                try:
                    _, _, vt = np.linalg.svd(centered, full_matrices=False)
                    top_direction = vt[0]
                except np.linalg.LinAlgError:  # pragma: no cover - degenerate
                    top_direction = np.ones(subset_dim) / np.sqrt(subset_dim)
            scores = (centered @ top_direction) ** 2
            keep = max(len(good) - num_removed, 1)
            # Stable sort so exact score ties (e.g. identical gradients)
            # break by client index on every platform.
            order = np.argsort(scores, kind="stable")
            good = good[order[:keep]]

        good = np.sort(good)
        return AggregationResult(
            gradient=gradients[good].mean(axis=0),
            selected_indices=good,
            info={"rule": self.name, "num_byzantine": f, "svd": self.svd},
        )
