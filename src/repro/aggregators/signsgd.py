"""signSGD with majority vote (Bernstein et al., ICML 2018).

The server aggregates only the signs of the received gradients and takes the
coordinate-wise majority.  The result is scaled by a configurable step size
(by default the median gradient norm divided by sqrt(d)) so its magnitude is
commensurate with the other rules in the library.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)
from repro.aggregators.norms import median_norm


class SignSGDMajorityAggregator(Aggregator):
    """Coordinate-wise majority vote over gradient signs."""

    name = "signsgd"

    def __init__(self, scale: Optional[float] = None):
        if scale is not None and scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        votes = np.sign(gradients).sum(axis=0)
        majority = np.sign(votes)
        if self.scale is not None:
            magnitude = self.scale
        else:
            dim = gradients.shape[1]
            magnitude = median_norm(gradients) / np.sqrt(dim)
        return AggregationResult(
            gradient=majority * magnitude,
            selected_indices=all_indices(gradients),
            info={"rule": self.name, "magnitude": magnitude},
        )
