"""Aggregator interface shared by baselines and SignGuard."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.utils.batch import GradientBatch
from repro.utils.rng import RngLike, as_rng


def _default_server_rng() -> np.random.Generator:
    """Deterministic generator for contexts built without an explicit seed.

    ``ServerContext()`` used to default to an *unseeded* ``default_rng()``,
    which made any aggregator that draws randomness (SignGuard's random
    coordinate selection) non-reproducible unless every call site
    remembered to pass a seed.  A fixed seed keeps the zero-config path
    deterministic; experiments that want varied draws pass their own
    generator via :meth:`ServerContext.make`.
    """
    return np.random.default_rng(0)


@dataclass
class ServerContext:
    """Per-round information available to the (defending) server.

    Attributes:
        round_index: current federated round.
        rng: the server's random generator (used e.g. for SignGuard's random
            coordinate selection).
        previous_gradient: the aggregate chosen in the previous round, used
            by history-aware similarity features.
        reference_gradient: a trusted gradient computed on server-held data,
            only available to auxiliary-data defenses such as FLTrust.
        num_byzantine_hint: the Byzantine count the operator *believes*;
            baselines like Krum and Bulyan require it (the paper notes this
            is an unrealistic advantage), SignGuard ignores it.
        batch: the round's shared :class:`~repro.utils.batch.GradientBatch`
            compute cache, populated by :meth:`Aggregator.__call__` so every
            consumer (filters, features, pairwise-distance scorers) reuses
            one set of memoized norms / Gram / distance matrices.
        extra: free-form channel.
    """

    round_index: int = 0
    rng: np.random.Generator = field(default_factory=_default_server_rng)
    previous_gradient: Optional[np.ndarray] = None
    reference_gradient: Optional[np.ndarray] = None
    num_byzantine_hint: Optional[int] = None
    batch: Optional[GradientBatch] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def make(cls, *, rng: RngLike = None, **kwargs: Any) -> "ServerContext":
        """Convenience constructor accepting a plain seed."""
        return cls(rng=as_rng(rng), **kwargs)


@dataclass
class AggregationResult:
    """Output of one aggregation step.

    Attributes:
        gradient: the aggregated gradient the server applies.
        selected_indices: rows of the input the rule treated as trusted.
            For rules without an explicit selection step (mean, median, ...)
            this is every row.
        info: diagnostic metadata (scores, cluster labels, thresholds...).
    """

    gradient: np.ndarray
    selected_indices: np.ndarray
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_selected(self) -> int:
        return len(self.selected_indices)


class Aggregator:
    """Base class for gradient aggregation rules."""

    name: str = "aggregator"
    #: True when the rule needs to be told the number of Byzantine clients.
    requires_byzantine_count: bool = False

    def aggregate(
        self, gradients: np.ndarray, context: Optional[ServerContext] = None
    ) -> AggregationResult:
        """Aggregate the stacked client gradients ``(n_clients, dim)``."""
        raise NotImplementedError

    def __call__(
        self, gradients: np.ndarray, context: Optional[ServerContext] = None
    ) -> AggregationResult:
        batch = GradientBatch.wrap(gradients)
        if context is None:
            context = ServerContext()
        context.batch = batch
        return self.aggregate(batch.matrix, context)

    def _byzantine_count(self, gradients: np.ndarray, context: ServerContext) -> int:
        """Resolve the Byzantine-count hint, defaulting to the max tolerable."""
        if context.num_byzantine_hint is not None:
            return int(context.num_byzantine_hint)
        # Without a hint, assume the largest tolerable minority.
        return max((len(gradients) - 1) // 2, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def all_indices(gradients: np.ndarray) -> np.ndarray:
    """Helper: every row index of the input."""
    return np.arange(len(gradients))
