"""Gradient aggregation rules (GARs): the baselines the paper compares against.

Every aggregator implements :class:`~repro.aggregators.base.Aggregator` and
returns an :class:`~repro.aggregators.base.AggregationResult` carrying the
aggregated gradient, the set of client rows it trusted (when meaningful), and
free-form diagnostic info.  The SignGuard family lives in :mod:`repro.core`
but implements the same interface, so the federated server treats all rules
uniformly.
"""

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.aggregators.mean import MeanAggregator
from repro.aggregators.trimmed_mean import TrimmedMeanAggregator
from repro.aggregators.weighted import WeightedMeanAggregator
from repro.aggregators.median import CoordinateMedianAggregator
from repro.aggregators.geometric_median import (
    GeometricMedianAggregator,
    geometric_median,
)
from repro.aggregators.krum import KrumAggregator, MultiKrumAggregator
from repro.aggregators.bulyan import BulyanAggregator
from repro.aggregators.dnc import DivideAndConquerAggregator
from repro.aggregators.signsgd import SignSGDMajorityAggregator
from repro.aggregators.centered_clipping import CenteredClippingAggregator
from repro.aggregators.fltrust import FLTrustAggregator
from repro.aggregators.norms import clip_gradients_to_norm, median_norm
from repro.aggregators.factory import AGGREGATOR_REGISTRY, build_aggregator

__all__ = [
    "AggregationResult",
    "Aggregator",
    "ServerContext",
    "MeanAggregator",
    "WeightedMeanAggregator",
    "TrimmedMeanAggregator",
    "CoordinateMedianAggregator",
    "GeometricMedianAggregator",
    "geometric_median",
    "KrumAggregator",
    "MultiKrumAggregator",
    "BulyanAggregator",
    "DivideAndConquerAggregator",
    "SignSGDMajorityAggregator",
    "CenteredClippingAggregator",
    "FLTrustAggregator",
    "clip_gradients_to_norm",
    "median_norm",
    "AGGREGATOR_REGISTRY",
    "build_aggregator",
]
