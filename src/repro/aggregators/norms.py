"""Norm utilities: median reference norm and norm clipping.

SignGuard aggregates the trusted set with mean-plus-norm-clipping, where the
clipping bound is the median of the received gradient norms (Algorithm 2,
step 3); the same helpers are reused by the centered-clipping baseline.

Every helper accepts either a raw matrix or a
:class:`~repro.utils.batch.GradientBatch`, in which case the batch's memoized
norms are reused instead of recomputed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.batch import ArrayOrBatch, GradientBatch


def gradient_norms(gradients: ArrayOrBatch) -> np.ndarray:
    """l2 norm of every row (cached when ``gradients`` is a batch)."""
    if isinstance(gradients, GradientBatch):
        return gradients.norms()
    return np.linalg.norm(np.atleast_2d(gradients), axis=1)


def median_norm(gradients: ArrayOrBatch) -> float:
    """Median of the row norms — the paper's reference norm ``M``."""
    return float(np.median(gradient_norms(gradients)))


def clip_scales(norms: np.ndarray, bound: float) -> np.ndarray:
    """Per-row scale factors ``min(1, bound / ||g||)`` (1 for zero rows).

    This is the single home of SignGuard's clipping rule (Algorithm 2,
    line 14); both :func:`clip_gradients_to_norm` and the pipeline's fused
    clip-and-mean consume it.
    """
    if bound < 0:
        raise ValueError(f"bound must be >= 0, got {bound}")
    norms = np.atleast_1d(norms)
    scales = np.ones_like(norms)
    positive = norms > 0
    scales[positive] = np.minimum(1.0, bound / norms[positive])
    return scales


def clip_gradients_to_norm(gradients: np.ndarray, bound: float) -> np.ndarray:
    """Scale every row with norm above ``bound`` down to exactly ``bound``.

    Rows with norm at or below the bound are returned unchanged (the
    ``min(1, M/||g||)`` factor in Algorithm 2, line 14).
    """
    gradients = np.atleast_2d(np.asarray(gradients, dtype=np.float64))
    scales = clip_scales(gradient_norms(gradients), bound)
    return gradients * scales[:, None]


def clipped_mean(gradients: np.ndarray, bound: float) -> np.ndarray:
    """Mean of the rows after clipping each to ``bound``."""
    return clip_gradients_to_norm(gradients, bound).mean(axis=0)
