"""Norm utilities: median reference norm and norm clipping.

SignGuard aggregates the trusted set with mean-plus-norm-clipping, where the
clipping bound is the median of the received gradient norms (Algorithm 2,
step 3); the same helpers are reused by the centered-clipping baseline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def gradient_norms(gradients: np.ndarray) -> np.ndarray:
    """l2 norm of every row."""
    return np.linalg.norm(np.atleast_2d(gradients), axis=1)


def median_norm(gradients: np.ndarray) -> float:
    """Median of the row norms — the paper's reference norm ``M``."""
    return float(np.median(gradient_norms(gradients)))


def clip_gradients_to_norm(gradients: np.ndarray, bound: float) -> np.ndarray:
    """Scale every row with norm above ``bound`` down to exactly ``bound``.

    Rows with norm at or below the bound are returned unchanged (the
    ``min(1, M/||g||)`` factor in Algorithm 2, line 14).
    """
    if bound < 0:
        raise ValueError(f"bound must be >= 0, got {bound}")
    gradients = np.atleast_2d(np.asarray(gradients, dtype=np.float64))
    norms = gradient_norms(gradients)
    scales = np.ones_like(norms)
    positive = norms > 0
    scales[positive] = np.minimum(1.0, bound / norms[positive])
    return gradients * scales[:, None]


def clipped_mean(gradients: np.ndarray, bound: float) -> np.ndarray:
    """Mean of the rows after clipping each to ``bound``."""
    return clip_gradients_to_norm(gradients, bound).mean(axis=0)
