"""Coordinate-wise median aggregation (Yin et al., ICML 2018)."""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)


class CoordinateMedianAggregator(Aggregator):
    """Take the median of every coordinate independently."""

    name = "median"

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        return AggregationResult(
            gradient=np.median(gradients, axis=0),
            selected_indices=all_indices(gradients),
            info={"rule": self.name},
        )
