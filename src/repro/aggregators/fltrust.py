"""FLTrust-style aggregation (Cao et al., NDSS 2021).

FLTrust represents the *auxiliary-data* family of defenses the paper
contrasts with: the server computes a reference gradient on a small trusted
root dataset and weights every client gradient by the ReLU-clipped cosine
similarity to that reference, after rescaling each client gradient to the
reference norm.  It is included for completeness (and as a baseline for the
"auxiliary data may not be available" argument); when no reference gradient
is supplied the rule degrades to using the coordinate-wise median of the
received gradients as a proxy reference.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)


class FLTrustAggregator(Aggregator):
    """Trust-bootstrapped cosine re-weighting against a server reference gradient."""

    name = "fltrust"

    def __init__(self, epsilon: float = 1e-9):
        self.epsilon = epsilon

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        if context.reference_gradient is not None:
            reference = np.asarray(context.reference_gradient, dtype=np.float64)
        else:
            reference = np.median(gradients, axis=0)
        reference_norm = np.linalg.norm(reference)
        if reference_norm <= self.epsilon:
            # Degenerate reference: fall back to plain mean.
            return AggregationResult(
                gradient=gradients.mean(axis=0),
                selected_indices=all_indices(gradients),
                info={"rule": self.name, "degenerate_reference": True},
            )
        norms = np.linalg.norm(gradients, axis=1)
        cosines = (gradients @ reference) / (
            np.maximum(norms, self.epsilon) * reference_norm
        )
        trust_scores = np.maximum(cosines, 0.0)  # ReLU clipping
        if trust_scores.sum() <= self.epsilon:
            aggregated = np.zeros_like(reference)
            selected = np.array([], dtype=int)
        else:
            # Rescale every client gradient to the reference norm, then take
            # the trust-weighted average.
            rescaled = (
                gradients * (reference_norm / np.maximum(norms, self.epsilon))[:, None]
            )
            weights = trust_scores / trust_scores.sum()
            aggregated = (weights[:, None] * rescaled).sum(axis=0)
            selected = np.flatnonzero(trust_scores > 0)
        return AggregationResult(
            gradient=aggregated,
            selected_indices=selected,
            info={"rule": self.name, "trust_scores": trust_scores},
        )
