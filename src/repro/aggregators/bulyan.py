"""Bulyan aggregation (El Mhamdi et al., ICML 2018).

Bulyan composes Multi-Krum selection with a per-coordinate trimmed mean:
first it iteratively selects ``theta = n - 2f`` gradients by repeatedly
applying Krum, then for every coordinate it averages the ``theta - 2f``
values closest to the coordinate median of the selected set.

The iterative selection historically rebuilt an O(n² · d) Gram matrix for
every one of the ``theta`` Krum passes.  Squared distances between rows do
not change when other rows are removed, so this implementation computes the
pairwise squared-distance matrix once (via the round-level
:class:`~repro.utils.batch.GradientBatch` cache) and re-scores each shrinking
subset from an O(n²) slice — turning the selection stage from
O(theta · n² · d) into O(n² · d + theta · n²).

Bulyan's selection is *inherently* dense in cohort size: every iteration
re-scores an arbitrary shrinking subset, so the ``theta`` sub-matrix slices
cannot be streamed one row-block at a time.  Above the batch's
``max_dense_pairwise`` threshold the ``sq_distances()`` call below therefore
raises :class:`~repro.utils.batch.PairwiseMemoryError` with a clear message
instead of silently allocating an ``O(n²)`` matrix — for 10k+ cohorts use a
streaming-capable rule (Krum/Multi-Krum, DnC, geometric median, SignGuard).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.aggregators.krum import krum_scores_from_sq_distances
from repro.utils.batch import resolve_batch


class BulyanAggregator(Aggregator):
    """Krum-based selection followed by a median-centred trimmed mean."""

    name = "bulyan"
    requires_byzantine_count = True

    def __init__(self, num_byzantine: Optional[int] = None):
        if num_byzantine is not None and num_byzantine < 0:
            raise ValueError(f"num_byzantine must be >= 0, got {num_byzantine}")
        self.num_byzantine = num_byzantine

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        n = len(gradients)
        f = (
            self.num_byzantine
            if self.num_byzantine is not None
            else self._byzantine_count(gradients, context)
        )
        # Bulyan formally requires n >= 4f + 3; with fewer clients we shrink
        # the effective f so the rule stays defined (matching common
        # open-source implementations).
        f = int(max(min(f, (n - 3) // 4), 0))
        theta = max(n - 2 * f, 1)

        # Stage 1: iterative Krum selection of theta gradients, scored from
        # one shared pairwise squared-distance matrix.
        sq_distances = resolve_batch(gradients, context).sq_distances()
        remaining = list(range(n))
        selected: List[int] = []
        while len(selected) < theta and len(remaining) > 2:
            sub_sq = sq_distances[np.ix_(remaining, remaining)]
            scores = krum_scores_from_sq_distances(sub_sq, f)
            winner_local = int(np.argmin(scores))
            selected.append(remaining.pop(winner_local))
        if not selected:
            selected = list(range(n))
        selected_array = np.array(sorted(selected))
        chosen = gradients[selected_array]

        # Stage 2: per-coordinate trimmed mean around the median.
        beta = max(len(chosen) - 2 * f, 1)
        median = np.median(chosen, axis=0)
        distance_to_median = np.abs(chosen - median)
        order = np.argsort(distance_to_median, axis=0)
        closest = np.take_along_axis(chosen, order[:beta], axis=0)
        aggregated = closest.mean(axis=0)

        return AggregationResult(
            gradient=aggregated,
            selected_indices=selected_array,
            info={"rule": self.name, "num_byzantine": f, "theta": theta, "beta": beta},
        )
