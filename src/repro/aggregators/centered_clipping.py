"""Centered clipping aggregation (Karimireddy et al., ICML 2021).

Iteratively refines an estimate ``v`` by adding the clipped residuals of the
client gradients around it:

    v <- v + (1/n) * sum_i clip(g_i - v, tau)

Starting from the previous round's aggregate makes the rule history-aware,
which is the property the original paper exploits against time-coupled
attacks.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)


class CenteredClippingAggregator(Aggregator):
    """Iterative clipped-residual aggregation around a moving center."""

    name = "centered_clipping"

    def __init__(self, clip_threshold: float = 1.0, *, num_iterations: int = 3):
        if clip_threshold <= 0:
            raise ValueError(f"clip_threshold must be positive, got {clip_threshold}")
        if num_iterations < 1:
            raise ValueError(f"num_iterations must be >= 1, got {num_iterations}")
        self.clip_threshold = clip_threshold
        self.num_iterations = num_iterations

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        if context.previous_gradient is not None and len(
            context.previous_gradient
        ) == gradients.shape[1]:
            center = np.asarray(context.previous_gradient, dtype=np.float64).copy()
        else:
            center = np.median(gradients, axis=0)
        for _ in range(self.num_iterations):
            residuals = gradients - center
            norms = np.linalg.norm(residuals, axis=1)
            scales = np.ones_like(norms)
            positive = norms > 0
            scales[positive] = np.minimum(1.0, self.clip_threshold / norms[positive])
            center = center + (residuals * scales[:, None]).mean(axis=0)
        return AggregationResult(
            gradient=center,
            selected_indices=all_indices(gradients),
            info={"rule": self.name, "clip_threshold": self.clip_threshold},
        )
