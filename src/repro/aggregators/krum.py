"""Krum and Multi-Krum aggregation (Blanchard et al., NeurIPS 2017)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext


def _krum_scores(gradients: np.ndarray, num_byzantine: int) -> np.ndarray:
    """Krum score of every gradient.

    The score of client ``i`` is the sum of its squared distances to its
    ``n - f - 2`` nearest neighbours (``f`` = assumed Byzantine count);
    smaller scores mean the gradient sits inside a dense benign clique.
    """
    n = len(gradients)
    num_neighbors = max(n - num_byzantine - 2, 1)
    sq_norms = np.sum(gradients**2, axis=1)
    squared = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (gradients @ gradients.T)
    np.maximum(squared, 0.0, out=squared)
    np.fill_diagonal(squared, np.inf)
    sorted_sq = np.sort(squared, axis=1)
    return sorted_sq[:, :num_neighbors].sum(axis=1)


class KrumAggregator(Aggregator):
    """Select the single gradient with the lowest Krum score."""

    name = "krum"
    requires_byzantine_count = True

    def __init__(self, num_byzantine: Optional[int] = None):
        if num_byzantine is not None and num_byzantine < 0:
            raise ValueError(f"num_byzantine must be >= 0, got {num_byzantine}")
        self.num_byzantine = num_byzantine

    def _resolve_f(self, gradients: np.ndarray, context: ServerContext) -> int:
        f = (
            self.num_byzantine
            if self.num_byzantine is not None
            else self._byzantine_count(gradients, context)
        )
        return int(min(f, max(len(gradients) - 3, 0)))

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        f = self._resolve_f(gradients, context)
        scores = _krum_scores(gradients, f)
        winner = int(np.argmin(scores))
        return AggregationResult(
            gradient=gradients[winner].copy(),
            selected_indices=np.array([winner]),
            info={"rule": self.name, "scores": scores, "num_byzantine": f},
        )


class MultiKrumAggregator(KrumAggregator):
    """Average the ``n - f`` gradients with the lowest Krum scores (Multi-Krum).

    Args:
        num_selected: how many lowest-score gradients to average.  ``None``
            means ``n - f`` (the standard choice).
    """

    name = "multi_krum"
    requires_byzantine_count = True

    def __init__(
        self, num_byzantine: Optional[int] = None, num_selected: Optional[int] = None
    ):
        super().__init__(num_byzantine)
        if num_selected is not None and num_selected < 1:
            raise ValueError(f"num_selected must be >= 1, got {num_selected}")
        self.num_selected = num_selected

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        n = len(gradients)
        f = self._resolve_f(gradients, context)
        scores = _krum_scores(gradients, f)
        num_selected = self.num_selected if self.num_selected is not None else max(n - f, 1)
        num_selected = int(min(num_selected, n))
        selected = np.argsort(scores)[:num_selected]
        return AggregationResult(
            gradient=gradients[selected].mean(axis=0),
            selected_indices=np.sort(selected),
            info={"rule": self.name, "scores": scores, "num_byzantine": f},
        )
