"""Krum and Multi-Krum aggregation (Blanchard et al., NeurIPS 2017)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.utils.batch import GradientBatch, resolve_batch


def krum_scores_from_sq_distances(
    sq_distances: np.ndarray, num_byzantine: int
) -> np.ndarray:
    """Krum scores from a precomputed pairwise squared-distance matrix.

    The matrix must have an exactly-zero diagonal (self-distance), which is
    what :meth:`repro.utils.batch.GradientBatch.sq_distances` guarantees.  The
    self-distance is then always among the ``k + 1`` smallest entries of a
    row and contributes nothing to the sum, so the score can be computed with
    a bounded :func:`np.partition` instead of mutating the diagonal and
    sorting the full row — the input is never written to (it may be a shared
    cache) and no ``(n, n)`` fully-sorted copy is materialized.
    """
    n = len(sq_distances)
    num_neighbors = max(n - num_byzantine - 2, 1)
    kth = min(num_neighbors, n - 1)
    part = np.partition(sq_distances, kth, axis=1)[:, : num_neighbors + 1]
    # Sort the small (n, k+1) block so the summation order matches the
    # historical sort-then-sum implementation bit-for-bit, then drop the
    # leading zero self-distance.
    part.sort(axis=1)
    return part[:, 1:].sum(axis=1)


def krum_scores(
    gradients: np.ndarray,
    num_byzantine: int,
    *,
    batch: Optional[GradientBatch] = None,
) -> np.ndarray:
    """Krum score of every gradient.

    The score of client ``i`` is the sum of its squared distances to its
    ``n - f - 2`` nearest neighbours (``f`` = assumed Byzantine count);
    smaller scores mean the gradient sits inside a dense benign clique.

    When ``batch`` is provided (the round-level compute cache) its memoized
    pairwise squared distances are reused instead of rebuilding the
    O(n² · d) Gram matrix.  Above the batch's ``max_dense_pairwise``
    threshold the scores are computed from streamed row-block tiles
    (:meth:`~repro.utils.batch.GradientBatch.k_smallest_neighbor_sums`),
    so large cohorts never materialize the ``(n, n)`` distance matrix;
    below it the dense cache path is bit-identical to the historical
    implementation.
    """
    if batch is None or batch.matrix is not gradients:
        batch = GradientBatch.wrap(gradients, validate=False)
    n = batch.n_clients
    num_neighbors = max(n - num_byzantine - 2, 1)
    return batch.k_smallest_neighbor_sums(num_neighbors)


class KrumAggregator(Aggregator):
    """Select the single gradient with the lowest Krum score."""

    name = "krum"
    requires_byzantine_count = True

    def __init__(self, num_byzantine: Optional[int] = None):
        if num_byzantine is not None and num_byzantine < 0:
            raise ValueError(f"num_byzantine must be >= 0, got {num_byzantine}")
        self.num_byzantine = num_byzantine

    def _resolve_f(self, gradients: np.ndarray, context: ServerContext) -> int:
        f = (
            self.num_byzantine
            if self.num_byzantine is not None
            else self._byzantine_count(gradients, context)
        )
        return int(min(f, max(len(gradients) - 3, 0)))

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        f = self._resolve_f(gradients, context)
        scores = krum_scores(gradients, f, batch=resolve_batch(gradients, context))
        winner = int(np.argmin(scores))
        return AggregationResult(
            gradient=gradients[winner].copy(),
            selected_indices=np.array([winner]),
            info={"rule": self.name, "scores": scores, "num_byzantine": f},
        )


class MultiKrumAggregator(KrumAggregator):
    """Average the ``n - f`` gradients with the lowest Krum scores (Multi-Krum).

    Args:
        num_selected: how many lowest-score gradients to average.  ``None``
            means ``n - f`` (the standard choice).
    """

    name = "multi_krum"
    requires_byzantine_count = True

    def __init__(
        self, num_byzantine: Optional[int] = None, num_selected: Optional[int] = None
    ):
        super().__init__(num_byzantine)
        if num_selected is not None and num_selected < 1:
            raise ValueError(f"num_selected must be >= 1, got {num_selected}")
        self.num_selected = num_selected

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        n = len(gradients)
        f = self._resolve_f(gradients, context)
        scores = krum_scores(gradients, f, batch=resolve_batch(gradients, context))
        num_selected = (
            self.num_selected if self.num_selected is not None else max(n - f, 1)
        )
        num_selected = int(min(num_selected, n))
        selected = np.argsort(scores)[:num_selected]
        return AggregationResult(
            gradient=gradients[selected].mean(axis=0),
            selected_indices=np.sort(selected),
            info={"rule": self.name, "scores": scores, "num_byzantine": f},
        )
