"""Plain mean aggregation (FedAvg without any defense)."""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)


class MeanAggregator(Aggregator):
    """Coordinate-wise mean of all received gradients.

    This is the undefended baseline whose accuracy under *no attack* the
    paper uses as the benchmark for every dataset.
    """

    name = "mean"

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        return AggregationResult(
            gradient=gradients.mean(axis=0),
            selected_indices=all_indices(gradients),
            info={"rule": self.name},
        )
