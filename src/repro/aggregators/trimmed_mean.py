"""Coordinate-wise trimmed mean (Yin et al., ICML 2018)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import (
    AggregationResult,
    Aggregator,
    ServerContext,
    all_indices,
)


class TrimmedMeanAggregator(Aggregator):
    """Discard the ``trim`` largest and smallest values per coordinate, then average.

    Args:
        trim: number of values trimmed from each side of every coordinate.
            When ``None`` the rule uses the server's Byzantine-count hint
            (the paper gives the baselines this knowledge).
    """

    name = "trimmed_mean"
    requires_byzantine_count = True

    def __init__(self, trim: Optional[int] = None):
        if trim is not None and trim < 0:
            raise ValueError(f"trim must be >= 0, got {trim}")
        self.trim = trim

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        n = len(gradients)
        trim = (
            self.trim
            if self.trim is not None
            else self._byzantine_count(gradients, context)
        )
        trim = int(min(trim, (n - 1) // 2))
        if trim == 0:
            aggregated = gradients.mean(axis=0)
        else:
            ordered = np.sort(gradients, axis=0)
            aggregated = ordered[trim : n - trim].mean(axis=0)
        return AggregationResult(
            gradient=aggregated,
            selected_indices=all_indices(gradients),
            info={"rule": self.name, "trim": trim},
        )
