"""Aggregator factory: build registered aggregation rules by name.

The SignGuard variants register themselves here as well (see
``repro.core.signguard``), so the federated experiment runner can construct
any rule from its string name.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.aggregators.base import Aggregator
from repro.aggregators.bulyan import BulyanAggregator
from repro.aggregators.centered_clipping import CenteredClippingAggregator
from repro.aggregators.dnc import DivideAndConquerAggregator
from repro.aggregators.fltrust import FLTrustAggregator
from repro.aggregators.geometric_median import GeometricMedianAggregator
from repro.aggregators.krum import KrumAggregator, MultiKrumAggregator
from repro.aggregators.mean import MeanAggregator
from repro.aggregators.median import CoordinateMedianAggregator
from repro.aggregators.signsgd import SignSGDMajorityAggregator
from repro.aggregators.trimmed_mean import TrimmedMeanAggregator
from repro.aggregators.weighted import WeightedMeanAggregator
from repro.utils.registry import Registry

AGGREGATOR_REGISTRY = Registry("aggregators")

AGGREGATOR_REGISTRY.register("mean", MeanAggregator)
AGGREGATOR_REGISTRY.register("weighted_mean", WeightedMeanAggregator)
AGGREGATOR_REGISTRY.register("trimmed_mean", TrimmedMeanAggregator)
AGGREGATOR_REGISTRY.register("median", CoordinateMedianAggregator)
AGGREGATOR_REGISTRY.register("geomed", GeometricMedianAggregator)
AGGREGATOR_REGISTRY.register("krum", KrumAggregator)
AGGREGATOR_REGISTRY.register("multi_krum", MultiKrumAggregator)
AGGREGATOR_REGISTRY.register("bulyan", BulyanAggregator)
AGGREGATOR_REGISTRY.register("dnc", DivideAndConquerAggregator)
AGGREGATOR_REGISTRY.register("signsgd", SignSGDMajorityAggregator)
AGGREGATOR_REGISTRY.register("centered_clipping", CenteredClippingAggregator)
AGGREGATOR_REGISTRY.register("fltrust", FLTrustAggregator)

AGGREGATOR_REGISTRY.register_alias("fedavg", "weighted_mean")
AGGREGATOR_REGISTRY.register_alias("trmean", "trimmed_mean")
AGGREGATOR_REGISTRY.register_alias("geometric_median", "geomed")
AGGREGATOR_REGISTRY.register_alias("multikrum", "multi_krum")
AGGREGATOR_REGISTRY.register_alias("divide_and_conquer", "dnc")


def build_aggregator(name: str, params: Dict[str, Any] = None) -> Aggregator:
    """Instantiate the aggregation rule registered under ``name``.

    Importing :mod:`repro.core` (done lazily here) makes sure the SignGuard
    variants are registered before lookup.
    """
    import repro.core  # noqa: F401  (registers the SignGuard aggregators)

    params = dict(params or {})
    return AGGREGATOR_REGISTRY.create(name, **params)
