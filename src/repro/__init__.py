"""SignGuard reproduction: Byzantine-robust federated learning through
collaborative malicious gradient filtering (ICDCS 2022).

Public entry points:

* :func:`repro.fl.run_experiment` — run a full federated experiment from an
  :class:`repro.utils.ExperimentConfig`.
* :class:`repro.core.SignGuard` (and ``SignGuardSim`` / ``SignGuardDist``) —
  the paper's defense, usable as a standalone gradient aggregation rule.
* :mod:`repro.attacks` / :mod:`repro.aggregators` — every attack and baseline
  defense evaluated in the paper.
* :mod:`repro.analysis` — executable forms of the paper's theory (LIE
  stealthiness, sign statistics, convergence bounds).
"""

from repro.utils.config import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    default_paper_config,
)
from repro.core import SignGuard, SignGuardDist, SignGuardSim
from repro.fl import run_experiment, run_grid
from repro.perf import RoundProfiler
from repro.utils.batch import GradientBatch

__version__ = "1.1.0"

__all__ = [
    "GradientBatch",
    "RoundProfiler",
    "ExperimentConfig",
    "DataConfig",
    "TrainingConfig",
    "AttackConfig",
    "DefenseConfig",
    "default_paper_config",
    "SignGuard",
    "SignGuardSim",
    "SignGuardDist",
    "run_experiment",
    "run_grid",
    "__version__",
]
