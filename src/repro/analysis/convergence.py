"""Convergence analysis: Lemma 1 and Theorem 1 of the paper, in executable form.

These helpers evaluate the closed-form error bounds so experiments (and
tests) can check qualitative claims such as "Byzantine clients inevitably
affect the convergence error in non-IID settings even when every malicious
gradient is removed" (Remark 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_fraction, check_positive


def lemma1_deviation_bound(
    *, beta: float, kappa: float, sigma: float, num_clients: int
) -> float:
    """Lemma 1: bound on ``E||g_bar - grad F||^2`` when only benign clients average.

    ``beta^2 kappa^2 / (1-beta)^2 + sigma^2 / ((1-beta) n)``.
    """
    check_fraction(beta, "beta")
    if beta >= 1.0:
        raise ValueError("beta must be < 1")
    check_positive(kappa, "kappa", strict=False)
    check_positive(sigma, "sigma", strict=False)
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    return (beta**2 * kappa**2) / (1 - beta) ** 2 + sigma**2 / (
        (1 - beta) * num_clients
    )


def max_stable_learning_rate(*, delta: float, beta: float, smoothness: float) -> float:
    """Theorem 1's learning-rate condition.

    ``eta <= (2 - sqrt(delta) - 2 beta) / (4 L)``.
    """
    check_fraction(delta, "delta")
    check_fraction(beta, "beta")
    check_positive(smoothness, "smoothness")
    numerator = 2.0 - np.sqrt(delta) - 2.0 * beta
    if numerator <= 0:
        raise ValueError(
            f"no stable learning rate exists for delta={delta}, beta={beta} "
            "(the Byzantine fraction is too large for the bound)"
        )
    return float(numerator / (4.0 * smoothness))


@dataclass
class ConvergenceBound:
    """Theorem 1's bound on the average squared gradient norm.

    Attributes:
        optimality_term: ``2 (F(x0) - F*) / (eta T)`` — vanishes as T grows.
        delta1: the ``2 L eta Delta_1`` variance-driven term.
        delta2: the ``Delta_2`` bias floor (nonzero whenever beta > 0 on
            non-IID data, per Remark 2).
    """

    optimality_term: float
    delta1: float
    delta2: float

    @property
    def total(self) -> float:
        """The full right-hand side of Theorem 1."""
        return self.optimality_term + self.delta1 + self.delta2


def theorem1_bound(
    *,
    initial_gap: float,
    learning_rate: float,
    rounds: int,
    smoothness: float,
    sigma: float,
    kappa: float,
    beta: float,
    delta: float,
    c: float = 1.0,
    b: float = 0.0,
    num_clients: int = 50,
) -> ConvergenceBound:
    """Evaluate Theorem 1's bound for concrete constants.

    Args:
        initial_gap: ``F(x0) - F*``.
        learning_rate: step size ``eta`` (must satisfy the Theorem 1 condition).
        rounds: number of iterations ``T``.
        smoothness: Lipschitz constant ``L``.
        sigma: local gradient-variance bound.
        kappa: local-to-global gradient deviation bound (0 in IID settings).
        beta: Byzantine fraction.
        delta: fraction of Byzantine clients that circumvent the defense.
        c, b: the Assumption 2 constants (bias coefficient and residual
            standard deviation of the aggregation output).
        num_clients: total number of clients ``n``.
    """
    check_positive(initial_gap, "initial_gap", strict=False)
    check_positive(learning_rate, "learning_rate")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    check_positive(smoothness, "smoothness")
    check_fraction(beta, "beta")
    check_fraction(delta, "delta")
    if delta > beta:
        raise ValueError(f"delta ({delta}) cannot exceed beta ({beta})")
    eta_max = max_stable_learning_rate(delta=delta, beta=beta, smoothness=smoothness)
    if learning_rate > eta_max + 1e-12:
        raise ValueError(
            f"learning_rate={learning_rate} violates Theorem 1's condition "
            f"(maximum {eta_max:.6f} for delta={delta}, beta={beta}, L={smoothness})"
        )
    variance_sum = sigma**2 + kappa**2
    delta1 = (
        4 * c * delta * variance_sum
        + 2 * b**2
        + 2 * beta**2 * kappa**2 / (1 - beta) ** 2
        + 2 * sigma**2 / ((1 - beta) * num_clients)
    )
    delta2 = 4 * c * np.sqrt(delta) * variance_sum + beta * kappa**2 / (1 - beta) ** 2
    return ConvergenceBound(
        optimality_term=2 * initial_gap / (learning_rate * rounds),
        delta1=2 * smoothness * learning_rate * delta1,
        delta2=float(delta2),
    )
