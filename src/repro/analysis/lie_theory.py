"""Section III analysis of the Little-Is-Enough attack.

This module provides executable forms of the paper's theoretical claims:

* Eq. (2): the maximal stealthy attack factor ``z_max`` (re-exported from the
  attack implementation so the analysis and the attack always agree).
* Eq. (3)/(5): how large ``z`` must be to reverse a coordinate's sign under
  median and mean aggregation.
* Proposition 1: with a small enough ``z`` the malicious gradient can be
  *closer* to the true average and *more cosine-similar* to it than some
  honest gradient — i.e. distance- and similarity-based defenses cannot
  separate it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.lie import lie_z_max  # noqa: F401  (re-exported)
from repro.utils.validation import check_gradient_matrix


def lie_sign_reversal_threshold(
    mu_j: float, sigma_j: float, *, rule: str = "median", n: int = 50, m: int = 10
) -> float:
    """Minimal ``z`` that flips the sign of coordinate ``j`` (Eqs. 3 and 5).

    Args:
        mu_j: coordinate mean over honest gradients (assumed positive in the
            paper's exposition; the absolute value is used).
        sigma_j: coordinate standard deviation (must be positive).
        rule: ``"median"`` (Eq. 3, the aggregate equals the malicious value)
            or ``"mean"`` (Eq. 5, the malicious value is diluted by benign
            clients).
        n, m: total and Byzantine client counts (mean rule only).
    """
    if sigma_j <= 0:
        raise ValueError(f"sigma_j must be positive, got {sigma_j}")
    mu = abs(float(mu_j))
    if rule == "median":
        return mu / sigma_j
    if rule == "mean":
        if not 0 < m < n:
            raise ValueError(f"need 0 < m < n, got n={n}, m={m}")
        return n * mu / (m * sigma_j)
    raise ValueError(f"rule must be 'median' or 'mean', got {rule!r}")


@dataclass
class LieStealthReport:
    """Empirical check of Proposition 1 on a population of honest gradients.

    Attributes:
        malicious_distance: ``||g_m - g_bar||`` of the LIE gradient.
        honest_distances: per-client distances ``||g_i - g_bar||``.
        malicious_cosine: cosine similarity of the LIE gradient to the mean.
        honest_cosines: per-client cosine similarities.
        closer_than_fraction: fraction of honest clients *farther* from the
            mean than the malicious gradient (Prop. 1, Eq. 6 asks for > 0).
        more_similar_than_fraction: fraction of honest clients *less similar*
            to the mean than the malicious gradient (Prop. 1, Eq. 7).
        sign_disagreement: fraction of coordinates where the malicious
            gradient's sign differs from the mean gradient's — the quantity
            SignGuard exploits.
    """

    malicious_distance: float
    honest_distances: np.ndarray
    malicious_cosine: float
    honest_cosines: np.ndarray
    closer_than_fraction: float
    more_similar_than_fraction: float
    sign_disagreement: float

    @property
    def satisfies_distance_claim(self) -> bool:
        """Eq. (6): some honest gradient is farther from the mean."""
        return bool(self.closer_than_fraction > 0)

    @property
    def satisfies_cosine_claim(self) -> bool:
        """Eq. (7): some honest gradient is less similar to the mean."""
        return bool(self.more_similar_than_fraction > 0)


def _cosine(a: np.ndarray, b: np.ndarray, epsilon: float = 1e-12) -> float:
    denominator = max(np.linalg.norm(a), epsilon) * max(np.linalg.norm(b), epsilon)
    return float(a @ b / denominator)


def lie_stealthiness_report(
    honest_gradients: np.ndarray, *, z: float = 0.3
) -> LieStealthReport:
    """Evaluate Proposition 1's quantities for a concrete honest population.

    Args:
        honest_gradients: stacked honest gradients ``(n, d)``.
        z: the LIE attack factor.
    """
    gradients = check_gradient_matrix(honest_gradients)
    mean = gradients.mean(axis=0)
    std = gradients.std(axis=0)
    malicious = mean - z * std

    honest_distances = np.linalg.norm(gradients - mean, axis=1)
    malicious_distance = float(np.linalg.norm(malicious - mean))
    honest_cosines = np.array([_cosine(g, mean) for g in gradients])
    malicious_cosine = _cosine(malicious, mean)

    mean_signs = np.sign(mean)
    malicious_signs = np.sign(malicious)
    relevant = mean_signs != 0
    if relevant.any():
        sign_disagreement = float(
            np.mean(malicious_signs[relevant] != mean_signs[relevant])
        )
    else:
        sign_disagreement = 0.0

    return LieStealthReport(
        malicious_distance=malicious_distance,
        honest_distances=honest_distances,
        malicious_cosine=malicious_cosine,
        honest_cosines=honest_cosines,
        closer_than_fraction=float(np.mean(honest_distances > malicious_distance)),
        more_similar_than_fraction=float(np.mean(honest_cosines < malicious_cosine)),
        sign_disagreement=sign_disagreement,
    )
