"""Theoretical-analysis utilities for the SignGuard paper.

* :mod:`repro.analysis.lie_theory` — the Section III analysis of the
  Little-Is-Enough attack (Eq. 2's maximal attack factor, Proposition 1's
  distance/cosine stealthiness comparison, sign-reversal conditions).
* :mod:`repro.analysis.sign_stats` — the Fig. 2 experiment: sign statistics
  of honest vs LIE-crafted gradients over training.
* :mod:`repro.analysis.convergence` — Lemma 1's deviation bound and
  Theorem 1's convergence error terms and learning-rate condition.
"""

from repro.analysis.lie_theory import (
    LieStealthReport,
    lie_sign_reversal_threshold,
    lie_stealthiness_report,
    lie_z_max,
)
from repro.analysis.sign_stats import SignStatisticsTrace, sign_statistics_of_vector
from repro.analysis.convergence import (
    ConvergenceBound,
    lemma1_deviation_bound,
    max_stable_learning_rate,
    theorem1_bound,
)

__all__ = [
    "lie_z_max",
    "lie_sign_reversal_threshold",
    "lie_stealthiness_report",
    "LieStealthReport",
    "SignStatisticsTrace",
    "sign_statistics_of_vector",
    "lemma1_deviation_bound",
    "max_stable_learning_rate",
    "theorem1_bound",
    "ConvergenceBound",
]
