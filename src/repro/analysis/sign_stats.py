"""Sign-statistics traces over training (the Fig. 2 experiment).

The paper plots, over training iterations, the fractions of positive / zero /
negative elements of (a) the averaged honest gradient and (b) a virtual
malicious gradient crafted with the LIE rule.  The honest trace stays roughly
balanced while the LIE trace collapses toward the negative side — the visual
motivation for SignGuard's sign features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.features import sign_statistics
from repro.utils.validation import check_gradient_matrix


def sign_statistics_of_vector(
    vector: np.ndarray, *, zero_tolerance: float = 0.0
) -> Dict[str, float]:
    """Positive/zero/negative fractions of a single gradient vector."""
    stats = sign_statistics(np.atleast_2d(vector), zero_tolerance=zero_tolerance)[0]
    return {
        "positive": float(stats[0]),
        "zero": float(stats[1]),
        "negative": float(stats[2]),
    }


@dataclass
class SignStatisticsTrace:
    """Accumulates per-iteration sign statistics of honest and LIE gradients."""

    z: float = 0.3
    honest: List[Dict[str, float]] = field(default_factory=list)
    malicious: List[Dict[str, float]] = field(default_factory=list)

    def record(self, honest_gradients: np.ndarray) -> None:
        """Record one iteration given the stacked honest gradients."""
        gradients = check_gradient_matrix(honest_gradients)
        mean = gradients.mean(axis=0)
        std = gradients.std(axis=0)
        crafted = mean - self.z * std
        self.honest.append(sign_statistics_of_vector(mean))
        self.malicious.append(sign_statistics_of_vector(crafted))

    def __len__(self) -> int:
        return len(self.honest)

    def series(self, which: str, component: str) -> np.ndarray:
        """Return one component series (e.g. ``series("malicious", "negative")``)."""
        if which not in {"honest", "malicious"}:
            raise ValueError(f"which must be 'honest' or 'malicious', got {which!r}")
        if component not in {"positive", "zero", "negative"}:
            raise ValueError(
                "component must be 'positive', 'zero', or 'negative', "
                f"got {component!r}"
            )
        rows = self.honest if which == "honest" else self.malicious
        return np.array([row[component] for row in rows])

    def summary(self) -> Dict[str, float]:
        """Mean fractions across the recorded iterations (both traces)."""
        result: Dict[str, float] = {}
        for which in ("honest", "malicious"):
            for component in ("positive", "zero", "negative"):
                series = self.series(which, component)
                result[f"{which}_{component}"] = (
                    float(series.mean()) if len(series) else float("nan")
                )
        return result
