"""SignGuard: collaborative malicious-gradient filtering (the paper's contribution).

The framework (Algorithm 2 of the paper) processes the received gradients
through multiple filters in parallel and aggregates the intersection of
their outputs:

1. **Norm-based thresholding** — the median gradient norm is the reference;
   gradients whose relative norm falls outside ``[L, R]`` are discarded.
2. **Sign-based clustering** — sign statistics (fractions of positive, zero,
   and negative elements on a random coordinate subset), optionally augmented
   with a similarity feature, are clustered with Mean-Shift; the largest
   cluster is trusted.
3. **Aggregation** — the trusted intersection is averaged after clipping
   every gradient to the median norm.

Three variants are exposed, matching the paper:

* :class:`SignGuard` — sign statistics only (the "plain" variant).
* :class:`SignGuardSim` — adds cosine similarity to the previous aggregate.
* :class:`SignGuardDist` — adds Euclidean distance to the previous aggregate.
"""

from repro.core.features import (
    GradientFeatures,
    cosine_similarity_feature,
    euclidean_distance_feature,
    extract_features,
    resolve_reference,
    sign_statistics,
)
from repro.utils.batch import GradientBatch
from repro.core.filters import (
    FilterDecision,
    GradientFilter,
    NormThresholdFilter,
    SignClusteringFilter,
)
from repro.core.pipeline import SignGuardPipeline
from repro.core.signguard import SignGuard, SignGuardDist, SignGuardSim

__all__ = [
    "GradientBatch",
    "GradientFeatures",
    "resolve_reference",
    "sign_statistics",
    "cosine_similarity_feature",
    "euclidean_distance_feature",
    "extract_features",
    "FilterDecision",
    "GradientFilter",
    "NormThresholdFilter",
    "SignClusteringFilter",
    "SignGuardPipeline",
    "SignGuard",
    "SignGuardSim",
    "SignGuardDist",
]
