"""SignGuard aggregators (plain, -Sim, -Dist) exposing the Aggregator interface.

These classes wrap :class:`~repro.core.pipeline.SignGuardPipeline` so the
federated server can use SignGuard exactly like any baseline rule.  Unlike
the baselines, SignGuard never consumes the server's Byzantine-count hint —
the paper highlights this as a practical advantage.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.aggregators.factory import AGGREGATOR_REGISTRY
from repro.core.pipeline import SignGuardPipeline
from repro.utils.batch import resolve_batch


class SignGuard(Aggregator):
    """Plain SignGuard: sign statistics only (no similarity feature).

    Args:
        lower, upper: relative norm bounds (paper defaults 0.1 and 3.0).
        coordinate_fraction: fraction of coordinates for sign statistics
            (paper default 10%).
        clustering: clustering backend, ``"meanshift"`` by default.
        use_norm_threshold / use_sign_clustering / use_norm_clipping:
            component toggles used by the Table III ablation.
    """

    name = "signguard"
    similarity = "none"

    def __init__(
        self,
        *,
        lower: float = 0.1,
        upper: float = 3.0,
        coordinate_fraction: float = 0.1,
        clustering: str = "meanshift",
        bandwidth_quantile: float = 0.5,
        use_norm_threshold: bool = True,
        use_sign_clustering: bool = True,
        use_norm_clipping: bool = True,
    ):
        self.pipeline = SignGuardPipeline(
            use_norm_threshold=use_norm_threshold,
            use_sign_clustering=use_sign_clustering,
            use_norm_clipping=use_norm_clipping,
            lower=lower,
            upper=upper,
            similarity=self.similarity,
            coordinate_fraction=coordinate_fraction,
            clustering=clustering,
            bandwidth_quantile=bandwidth_quantile,
        )

    def aggregate(
        self, gradients: np.ndarray, context: ServerContext
    ) -> AggregationResult:
        outcome = self.pipeline.aggregate(
            resolve_batch(gradients, context),
            reference=context.previous_gradient,
            rng=context.rng,
        )
        info = dict(outcome["info"])
        info["rule"] = self.name
        return AggregationResult(
            gradient=outcome["gradient"],
            selected_indices=outcome["selected_indices"],
            info=info,
        )


class SignGuardSim(SignGuard):
    """SignGuard-Sim: sign statistics + cosine similarity to the previous aggregate."""

    name = "signguard_sim"
    similarity = "cosine"


class SignGuardDist(SignGuard):
    """SignGuard-Dist: sign statistics + Euclidean distance to previous aggregate."""

    name = "signguard_dist"
    similarity = "euclidean"


AGGREGATOR_REGISTRY.register("signguard", SignGuard)
AGGREGATOR_REGISTRY.register("signguard_sim", SignGuardSim)
AGGREGATOR_REGISTRY.register("signguard_dist", SignGuardDist)
AGGREGATOR_REGISTRY.register_alias("sign_guard", "signguard")
