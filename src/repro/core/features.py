"""Gradient feature extraction for SignGuard's clustering filter.

The paper's key observation (Section III) is that the element-wise *sign*
distribution of a gradient is a robust fingerprint: well-crafted attacks such
as Little-Is-Enough keep the malicious gradient close to the benign ones in
Euclidean distance and cosine similarity, but cannot avoid shifting a large
fraction of coordinates across zero, which shows up directly in the
proportions of positive / zero / negative elements.

All entry points accept either a raw ``(n_clients, dim)`` matrix or a
:class:`~repro.utils.batch.GradientBatch`; with a batch, the pairwise-median
fallbacks reuse the round's memoized norms, Gram matrix, and distance matrix
instead of rebuilding them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.batch import ArrayOrBatch, GradientBatch
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_fraction


@dataclass
class GradientFeatures:
    """Per-client feature matrix plus bookkeeping about how it was built.

    Attributes:
        matrix: array of shape ``(n_clients, n_features)``.
        feature_names: human-readable name of every column.
        coordinates: the coordinate subset the sign statistics were computed
            on (``None`` means all coordinates).
    """

    matrix: np.ndarray
    feature_names: tuple
    coordinates: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.matrix)


def resolve_reference(
    reference: Optional[np.ndarray], dim: int, *, epsilon: float = 1e-12
) -> Optional[np.ndarray]:
    """Normalize the similarity features' reference-gradient handling.

    A reference is usable only when it is present, has exactly ``dim``
    elements, and has norm above ``epsilon``.  Historically the cosine
    feature checked the norm while the Euclidean feature only checked the
    size, so on an all-zero first-round aggregate the two features disagreed
    about whether a reference existed; both now share this single rule.

    Returns the reference as a float64 vector, or ``None`` when the
    pairwise-median fallback should be used.
    """
    if reference is None:
        return None
    reference = np.asarray(reference, dtype=np.float64).reshape(-1)
    if reference.size != dim:
        return None
    if np.linalg.norm(reference) <= epsilon:
        return None
    return reference


def sign_statistics(
    gradients: ArrayOrBatch,
    *,
    coordinates: Optional[np.ndarray] = None,
    zero_tolerance: float = 0.0,
) -> np.ndarray:
    """Fractions of positive, zero, and negative elements per gradient.

    Args:
        gradients: stacked gradients ``(n_clients, dim)`` or a batch.
        coordinates: optional index subset on which to compute the statistics
            (SignGuard's randomized coordinate selection).
        zero_tolerance: entries with ``|g_j| <= zero_tolerance`` count as zero
            (exact zeros are common for ReLU networks; a tolerance lets the
            caller treat numerically tiny values the same way).

    Returns:
        Array of shape ``(n_clients, 3)`` with columns (positive, zero,
        negative) fractions, each row summing to 1.
    """
    if zero_tolerance < 0:
        raise ValueError(f"zero_tolerance must be >= 0, got {zero_tolerance}")
    batch = GradientBatch.wrap(gradients)
    if coordinates is None:
        # Full-coordinate statistics come from the round cache.
        counts = batch.sign_counts(zero_tolerance)
        return counts / batch.dim
    coordinates = np.asarray(coordinates, dtype=int)
    if coordinates.size == 0:
        raise ValueError("coordinates subset must be non-empty")
    subset = batch.matrix[:, coordinates]
    dim = subset.shape[1]
    positive_count = (subset > zero_tolerance).sum(axis=1)
    negative_count = (subset < -zero_tolerance).sum(axis=1)
    zero_count = dim - positive_count - negative_count
    return np.column_stack([positive_count, zero_count, negative_count]) / dim


def select_random_coordinates(
    dim: int, fraction: float, rng: RngLike = None
) -> np.ndarray:
    """Randomly select ``fraction`` of the coordinate indices (at least one)."""
    check_fraction(fraction, "fraction")
    rng = as_rng(rng)
    count = max(int(round(fraction * dim)), 1)
    return np.sort(rng.choice(dim, size=count, replace=False))


def cosine_similarity_feature(
    gradients: ArrayOrBatch, reference: Optional[np.ndarray], *, epsilon: float = 1e-12
) -> np.ndarray:
    """Cosine similarity of every gradient to a reference gradient.

    When no usable reference is available (see :func:`resolve_reference`) the
    pairwise-median fallback from the paper is used: each gradient's feature
    is the median cosine similarity to all the other gradients.  With a
    single client the fallback has no "other" gradients, so the feature is
    the neutral self-similarity of 1.0.
    """
    batch = GradientBatch.wrap(gradients)
    norms = batch.norms()
    reference = resolve_reference(reference, batch.dim, epsilon=epsilon)
    if reference is not None:
        return (batch.matrix @ reference) / (
            np.maximum(norms, epsilon) * np.linalg.norm(reference)
        )
    # Pairwise-median fallback.  The batch delegates to its dense cache at
    # small n (bit-identical to the historical fill_diagonal + nanmedian
    # implementation) and streams row-block tiles above its
    # max_dense_pairwise threshold.
    if batch.n_clients == 1:
        return np.ones(1)
    return batch.median_cosine_similarities(epsilon=epsilon)


def euclidean_distance_feature(
    gradients: ArrayOrBatch,
    reference: Optional[np.ndarray],
    *,
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Euclidean distance of every gradient to a reference gradient.

    Uses the same reference rule (:func:`resolve_reference`) and
    pairwise-median fallback as the cosine feature.  Distances are normalized
    by their median so the feature scale is comparable with the sign
    fractions.  A single client without a reference gets distance 0.0.
    """
    batch = GradientBatch.wrap(gradients)
    reference = resolve_reference(reference, batch.dim, epsilon=epsilon)
    if reference is not None:
        distances = np.linalg.norm(batch.matrix - reference, axis=1)
    elif batch.n_clients == 1:
        return np.zeros(1, dtype=np.float64)
    else:
        # Dense-cache delegation at small n, streamed tiles above the
        # batch's max_dense_pairwise threshold (see median_cosine above).
        distances = batch.median_distances()
    scale = np.median(distances)
    if scale > 0:
        distances = distances / scale
    return distances


def extract_features(
    gradients: ArrayOrBatch,
    *,
    coordinate_fraction: float = 0.1,
    similarity: str = "none",
    reference: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> GradientFeatures:
    """Build the clustering feature matrix used by the sign filter.

    Args:
        gradients: stacked gradients ``(n_clients, dim)`` or a batch.
        coordinate_fraction: fraction of coordinates randomly selected for the
            sign statistics (the paper uses 10%).
        similarity: ``"none"`` (plain SignGuard), ``"cosine"``
            (SignGuard-Sim), or ``"euclidean"`` (SignGuard-Dist).
        reference: the "correct" gradient used by the similarity feature —
            in practice the previous round's aggregate.
        rng: randomness for the coordinate selection.
    """
    batch = GradientBatch.wrap(gradients)
    rng = as_rng(rng)
    coordinates = select_random_coordinates(batch.dim, coordinate_fraction, rng)
    features = [sign_statistics(batch, coordinates=coordinates)]
    names = ["positive_fraction", "zero_fraction", "negative_fraction"]

    if similarity == "cosine":
        features.append(cosine_similarity_feature(batch, reference)[:, None])
        names.append("cosine_similarity")
    elif similarity == "euclidean":
        features.append(euclidean_distance_feature(batch, reference)[:, None])
        names.append("euclidean_distance")
    elif similarity != "none":
        raise ValueError(
            f"similarity must be 'none', 'cosine', or 'euclidean', got {similarity!r}"
        )

    return GradientFeatures(
        matrix=np.hstack(features),
        feature_names=tuple(names),
        coordinates=coordinates,
    )
