"""Gradient feature extraction for SignGuard's clustering filter.

The paper's key observation (Section III) is that the element-wise *sign*
distribution of a gradient is a robust fingerprint: well-crafted attacks such
as Little-Is-Enough keep the malicious gradient close to the benign ones in
Euclidean distance and cosine similarity, but cannot avoid shifting a large
fraction of coordinates across zero, which shows up directly in the
proportions of positive / zero / negative elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_fraction, check_gradient_matrix


@dataclass
class GradientFeatures:
    """Per-client feature matrix plus bookkeeping about how it was built.

    Attributes:
        matrix: array of shape ``(n_clients, n_features)``.
        feature_names: human-readable name of every column.
        coordinates: the coordinate subset the sign statistics were computed
            on (``None`` means all coordinates).
    """

    matrix: np.ndarray
    feature_names: tuple
    coordinates: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.matrix)


def sign_statistics(
    gradients: np.ndarray,
    *,
    coordinates: Optional[np.ndarray] = None,
    zero_tolerance: float = 0.0,
) -> np.ndarray:
    """Fractions of positive, zero, and negative elements per gradient.

    Args:
        gradients: stacked gradients ``(n_clients, dim)``.
        coordinates: optional index subset on which to compute the statistics
            (SignGuard's randomized coordinate selection).
        zero_tolerance: entries with ``|g_j| <= zero_tolerance`` count as zero
            (exact zeros are common for ReLU networks; a tolerance lets the
            caller treat numerically tiny values the same way).

    Returns:
        Array of shape ``(n_clients, 3)`` with columns (positive, zero,
        negative) fractions, each row summing to 1.
    """
    gradients = check_gradient_matrix(gradients)
    if coordinates is not None:
        coordinates = np.asarray(coordinates, dtype=int)
        if coordinates.size == 0:
            raise ValueError("coordinates subset must be non-empty")
        gradients = gradients[:, coordinates]
    if zero_tolerance < 0:
        raise ValueError(f"zero_tolerance must be >= 0, got {zero_tolerance}")
    dim = gradients.shape[1]
    positive_count = (gradients > zero_tolerance).sum(axis=1)
    negative_count = (gradients < -zero_tolerance).sum(axis=1)
    zero_count = dim - positive_count - negative_count
    return np.column_stack([positive_count, zero_count, negative_count]) / dim


def select_random_coordinates(
    dim: int, fraction: float, rng: RngLike = None
) -> np.ndarray:
    """Randomly select ``fraction`` of the coordinate indices (at least one)."""
    check_fraction(fraction, "fraction")
    rng = as_rng(rng)
    count = max(int(round(fraction * dim)), 1)
    return np.sort(rng.choice(dim, size=count, replace=False))


def cosine_similarity_feature(
    gradients: np.ndarray, reference: Optional[np.ndarray], *, epsilon: float = 1e-12
) -> np.ndarray:
    """Cosine similarity of every gradient to a reference gradient.

    When no reference is available (the first round, or a defense configured
    without history) the pairwise-median fallback from the paper is used:
    each gradient's feature is the median cosine similarity to all the other
    gradients.
    """
    gradients = check_gradient_matrix(gradients)
    norms = np.linalg.norm(gradients, axis=1)
    if reference is not None and np.linalg.norm(reference) > epsilon:
        reference = np.asarray(reference, dtype=np.float64)
        return (gradients @ reference) / (
            np.maximum(norms, epsilon) * np.linalg.norm(reference)
        )
    # Pairwise-median fallback.
    normalized = gradients / np.maximum(norms, epsilon)[:, None]
    similarity = normalized @ normalized.T
    np.fill_diagonal(similarity, np.nan)
    return np.nanmedian(similarity, axis=1)


def euclidean_distance_feature(
    gradients: np.ndarray, reference: Optional[np.ndarray]
) -> np.ndarray:
    """Euclidean distance of every gradient to a reference gradient.

    Uses the same pairwise-median fallback as the cosine feature when no
    reference is available.  Distances are normalized by their median so the
    feature scale is comparable with the sign fractions.
    """
    gradients = check_gradient_matrix(gradients)
    if reference is not None and np.asarray(reference).size == gradients.shape[1]:
        reference = np.asarray(reference, dtype=np.float64)
        distances = np.linalg.norm(gradients - reference, axis=1)
    else:
        sq_norms = np.sum(gradients**2, axis=1)
        squared = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (gradients @ gradients.T)
        np.maximum(squared, 0.0, out=squared)
        pairwise = np.sqrt(squared)
        np.fill_diagonal(pairwise, np.nan)
        distances = np.nanmedian(pairwise, axis=1)
    scale = np.median(distances)
    if scale > 0:
        distances = distances / scale
    return distances


def extract_features(
    gradients: np.ndarray,
    *,
    coordinate_fraction: float = 0.1,
    similarity: str = "none",
    reference: Optional[np.ndarray] = None,
    rng: RngLike = None,
) -> GradientFeatures:
    """Build the clustering feature matrix used by the sign filter.

    Args:
        gradients: stacked gradients ``(n_clients, dim)``.
        coordinate_fraction: fraction of coordinates randomly selected for the
            sign statistics (the paper uses 10%).
        similarity: ``"none"`` (plain SignGuard), ``"cosine"``
            (SignGuard-Sim), or ``"euclidean"`` (SignGuard-Dist).
        reference: the "correct" gradient used by the similarity feature —
            in practice the previous round's aggregate.
        rng: randomness for the coordinate selection.
    """
    gradients = check_gradient_matrix(gradients)
    rng = as_rng(rng)
    dim = gradients.shape[1]
    coordinates = select_random_coordinates(dim, coordinate_fraction, rng)
    features = [sign_statistics(gradients, coordinates=coordinates)]
    names = ["positive_fraction", "zero_fraction", "negative_fraction"]

    if similarity == "cosine":
        features.append(cosine_similarity_feature(gradients, reference)[:, None])
        names.append("cosine_similarity")
    elif similarity == "euclidean":
        features.append(euclidean_distance_feature(gradients, reference)[:, None])
        names.append("euclidean_distance")
    elif similarity != "none":
        raise ValueError(
            f"similarity must be 'none', 'cosine', or 'euclidean', got {similarity!r}"
        )

    return GradientFeatures(
        matrix=np.hstack(features),
        feature_names=tuple(names),
        coordinates=coordinates,
    )
