"""The SignGuard filtering pipeline (Algorithm 2).

The pipeline runs the enabled filters in parallel over the received
gradients, intersects their trusted sets, and aggregates the survivors with
a norm-clipped mean.  Each stage can be toggled independently, which is what
the Table III ablation exercises (thresholding / clustering / norm-clipping).

All per-round derived quantities (row norms, Gram/distance matrices for the
similarity fallbacks) flow through one :class:`~repro.utils.batch.GradientBatch`,
so the matrix is validated once and each quantity is computed at most once
per round no matter how many stages consume it.

The pipeline makes no assumption about the matrix's row count: under
partial participation the simulation submits one row per *reporting* client
(the active cohort), which varies round to round — every threshold, sign
statistic, clustering pass, and the clipped mean are sized from the batch
itself, and the per-round ``GradientBatch`` is built fresh each aggregation
call so a cohort-size change can never reuse stale-shape cached quantities.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.aggregators.norms import clip_scales
from repro.core.filters import FilterDecision, NormThresholdFilter, SignClusteringFilter
from repro.utils.batch import ArrayOrBatch, GradientBatch
from repro.utils.rng import RngLike, as_rng


class SignGuardPipeline:
    """Composable SignGuard: norm filter ∩ sign-clustering filter → clipped mean.

    Args:
        use_norm_threshold: enable the norm-based thresholding filter.
        use_sign_clustering: enable the sign-based clustering filter.
        use_norm_clipping: clip every trusted gradient to the median norm
            before averaging.
        lower, upper: relative-norm bounds for the thresholding filter
            (the paper's defaults are ``L = 0.1`` and ``R = 3.0``).
        similarity: ``"none"`` / ``"cosine"`` / ``"euclidean"`` — selects the
            plain / -Sim / -Dist feature sets.
        coordinate_fraction: fraction of coordinates used for sign statistics
            (the paper uses 10%).
        clustering: clustering backend for the sign filter.
    """

    def __init__(
        self,
        *,
        use_norm_threshold: bool = True,
        use_sign_clustering: bool = True,
        use_norm_clipping: bool = True,
        lower: float = 0.1,
        upper: float = 3.0,
        similarity: str = "none",
        coordinate_fraction: float = 0.1,
        clustering: str = "meanshift",
        bandwidth_quantile: float = 0.5,
    ):
        if not (use_norm_threshold or use_sign_clustering or use_norm_clipping):
            raise ValueError("at least one defensive component must be enabled")
        self.use_norm_threshold = use_norm_threshold
        self.use_sign_clustering = use_sign_clustering
        self.use_norm_clipping = use_norm_clipping
        self.norm_filter = NormThresholdFilter(lower=lower, upper=upper)
        self.sign_filter = SignClusteringFilter(
            similarity=similarity,
            coordinate_fraction=coordinate_fraction,
            clustering=clustering,
            bandwidth_quantile=bandwidth_quantile,
        )

    def filter(
        self,
        gradients: ArrayOrBatch,
        *,
        reference: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> FilterDecision:
        """Run the enabled filters and return the intersected trusted set."""
        batch = GradientBatch.wrap(gradients)
        rng = as_rng(rng)
        decision = FilterDecision(selected_indices=np.arange(batch.n_clients))
        if self.use_norm_threshold:
            decision = decision.intersect(
                self.norm_filter.apply(batch, reference=reference, rng=rng)
            )
        if self.use_sign_clustering:
            decision = decision.intersect(
                self.sign_filter.apply(batch, reference=reference, rng=rng)
            )
        if len(decision.selected_indices) == 0:
            # Never let the round fail completely: fall back to trusting the
            # gradient with the median norm (a conservative, norm-robust pick).
            norms = batch.norms()
            fallback = int(np.argsort(norms)[len(norms) // 2])
            decision = FilterDecision(
                selected_indices=np.array([fallback]),
                info={**decision.info, "fallback": True},
            )
        return decision

    def aggregate(
        self,
        gradients: ArrayOrBatch,
        *,
        reference: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> Dict[str, Any]:
        """Full Algorithm 2: filter, then norm-clipped mean over the trusted set.

        Returns a dict with keys ``gradient``, ``selected_indices``, ``info``
        (consumed by the aggregator wrappers in :mod:`repro.core.signguard`).
        """
        batch = GradientBatch.wrap(gradients)
        rng = as_rng(rng)
        decision = self.filter(batch, reference=reference, rng=rng)
        selected = decision.selected_indices
        # Clip + mean fused into one weighted vector-matrix product: the
        # clip scale of each trusted row becomes its mean weight (untrusted
        # rows get weight 0), so no trusted-row copy and no scaled (k, dim)
        # intermediate is ever materialized.
        if self.use_norm_clipping:
            bound = batch.median_norm()
            scales = clip_scales(batch.norms()[selected], bound)
            decision.info["clip_bound"] = bound
        else:
            scales = np.ones(len(selected))
        # Weights accumulate in float64 and convert once below: the scales
        # come from float64 norm statistics, so this keeps the fused product
        # bit-identical to the previous clip-then-mean formulation.
        weights = np.zeros(batch.n_clients, dtype=np.float64)
        weights[selected] = scales / len(selected)
        aggregated = weights.astype(batch.dtype, copy=False) @ batch.matrix
        return {
            "gradient": aggregated,
            "selected_indices": decision.selected_indices,
            "info": decision.info,
        }
