"""SignGuard's gradient filters.

Each filter looks at the full set of received gradients and returns a
:class:`FilterDecision` — the subset of client indices it trusts plus
diagnostics.  The pipeline (see :mod:`repro.core.pipeline`) intersects the
decisions of all enabled filters.

Filters accept either a raw ``(n_clients, dim)`` matrix or the round's
:class:`~repro.utils.batch.GradientBatch`, so norms and pairwise quantities
computed by one filter are reused by the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.clustering import DBSCAN, KMeans, MeanShift
from repro.core.features import extract_features
from repro.utils.batch import ArrayOrBatch, GradientBatch
from repro.utils.rng import RngLike, as_rng


@dataclass
class FilterDecision:
    """Outcome of one filter: trusted client indices plus diagnostics."""

    selected_indices: np.ndarray
    info: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.selected_indices = np.asarray(self.selected_indices, dtype=int)

    def intersect(self, other: "FilterDecision") -> "FilterDecision":
        """Intersection of two decisions (the pipeline's combining rule)."""
        merged = np.intersect1d(self.selected_indices, other.selected_indices)
        info = {**self.info, **other.info}
        return FilterDecision(selected_indices=merged, info=info)


class GradientFilter:
    """Base class for SignGuard filters."""

    name: str = "filter"

    def apply(
        self,
        gradients: ArrayOrBatch,
        *,
        reference: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> FilterDecision:
        """Return the subset of client indices this filter trusts."""
        raise NotImplementedError

    def __call__(self, gradients: ArrayOrBatch, **kwargs: Any) -> FilterDecision:
        return self.apply(GradientBatch.wrap(gradients), **kwargs)


class NormThresholdFilter(GradientFilter):
    """Norm-based thresholding (Algorithm 2, Step 1).

    The median of the received gradient norms serves as the reference norm
    ``M``; a gradient is kept when ``L <= ||g|| / M <= R``.  The paper uses a
    loose lower bound ``L = 0.1`` (small gradients do little harm) and a
    strict upper bound ``R = 3.0`` (very large gradients are malicious).
    """

    name = "norm_threshold"

    def __init__(self, lower: float = 0.1, upper: float = 3.0):
        if lower < 0:
            raise ValueError(f"lower must be >= 0, got {lower}")
        if upper <= lower:
            raise ValueError(f"upper ({upper}) must exceed lower ({lower})")
        self.lower = lower
        self.upper = upper

    def apply(
        self,
        gradients: ArrayOrBatch,
        *,
        reference: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> FilterDecision:
        batch = GradientBatch.wrap(gradients)
        norms = batch.norms()
        reference_norm = float(np.median(norms))
        if reference_norm <= 0:
            # All-zero gradients (e.g. the very first round of a fresh model):
            # nothing can be distinguished by norm, so trust everyone.
            selected = np.arange(batch.n_clients)
            ratios = np.zeros_like(norms)
        else:
            ratios = norms / reference_norm
            selected = np.flatnonzero((ratios >= self.lower) & (ratios <= self.upper))
        return FilterDecision(
            selected_indices=selected,
            info={
                "norm_reference": reference_norm,
                "norm_ratios": ratios,
                "norm_bounds": (self.lower, self.upper),
            },
        )


class SignClusteringFilter(GradientFilter):
    """Sign-statistics clustering (Algorithm 2, Step 2).

    Extracts sign statistics (and optionally a similarity feature) on a
    random coordinate subset, clusters the per-client feature vectors, and
    trusts the largest cluster.

    Args:
        similarity: ``"none"``, ``"cosine"``, or ``"euclidean"`` — selects the
            plain / -Sim / -Dist variants.
        coordinate_fraction: fraction of coordinates used for sign statistics.
        clustering: ``"meanshift"`` (paper default, adaptive cluster count),
            ``"meanshift_binned"`` (grid-seeded Mean-Shift — same partition
            on SignGuard feature distributions at a fraction of the
            shift-iteration cost, for large cohorts), ``"meanshift_grid"``
            (grid-seeded *and* grid-pruned range queries — the scaling
            configuration for cohorts past ~1k clients), ``"kmeans"`` (two
            clusters), or ``"dbscan"``.
        bandwidth_quantile: Mean-Shift bandwidth heuristic quantile.
    """

    name = "sign_clustering"

    def __init__(
        self,
        *,
        similarity: str = "none",
        coordinate_fraction: float = 0.1,
        clustering: str = "meanshift",
        bandwidth_quantile: float = 0.5,
    ):
        if clustering not in {
            "meanshift",
            "meanshift_binned",
            "meanshift_grid",
            "kmeans",
            "dbscan",
        }:
            raise ValueError(
                "clustering must be 'meanshift', 'meanshift_binned', "
                f"'meanshift_grid', 'kmeans', or 'dbscan', got {clustering!r}"
            )
        self.similarity = similarity
        self.coordinate_fraction = coordinate_fraction
        self.clustering = clustering
        self.bandwidth_quantile = bandwidth_quantile

    def _cluster(self, features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the indices of the largest cluster of the feature rows."""
        n = len(features)
        if n <= 2:
            return np.arange(n)
        if self.clustering == "kmeans":
            model = KMeans(n_clusters=2, rng=rng)
            labels = model.fit_predict(features)
            counts = np.bincount(labels)
            return np.flatnonzero(labels == np.argmax(counts))
        if self.clustering == "dbscan":
            # Scale eps with the spread of the features.
            spread = float(np.median(np.std(features, axis=0))) or 1e-3
            model = DBSCAN(eps=max(1.5 * spread, 1e-3), min_samples=max(n // 4, 2))
            model.fit(features)
            return model.largest_cluster()
        model = MeanShift(
            quantile=self.bandwidth_quantile,
            bin_seeding=self.clustering in {"meanshift_binned", "meanshift_grid"},
            neighborhood="grid" if self.clustering == "meanshift_grid" else "dense",
        )
        model.fit(features)
        return model.largest_cluster()

    def apply(
        self,
        gradients: ArrayOrBatch,
        *,
        reference: Optional[np.ndarray] = None,
        rng: RngLike = None,
    ) -> FilterDecision:
        rng = as_rng(rng)
        features = extract_features(
            GradientBatch.wrap(gradients),
            coordinate_fraction=self.coordinate_fraction,
            similarity=self.similarity,
            reference=reference,
            rng=rng,
        )
        selected = self._cluster(features.matrix, rng)
        return FilterDecision(
            selected_indices=np.sort(selected),
            info={
                "features": features.matrix,
                "feature_names": features.feature_names,
                "clustering": self.clustering,
            },
        )
