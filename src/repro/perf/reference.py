"""Frozen pre-optimization (seed) implementations.

These are verbatim-behavior copies of the hot-path algorithms as they
existed before the round-level compute cache and the vectorized paths were
introduced.  They exist for two reasons:

1. **Equivalence testing** — ``tests/test_equivalence_reference.py`` proves
   the optimized implementations select the same clients and produce the
   same aggregates as these references.
2. **Benchmarking** — ``benchmarks/perf_smoke.py`` measures the optimized
   paths against these references and records the speedups in
   ``BENCH_round_engine.json``.

Do not "fix" or optimize anything in this module: its value is precisely
that it stays frozen at seed behavior.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_fraction, check_gradient_matrix


# ---------------------------------------------------------------------------
# Krum / Multi-Krum / Bulyan (seed: O(n²·d) Gram rebuild per scoring call)
# ---------------------------------------------------------------------------


def krum_scores_reference(gradients: np.ndarray, num_byzantine: int) -> np.ndarray:
    """Seed Krum scoring: fresh Gram matrix + full row sort per call."""
    n = len(gradients)
    num_neighbors = max(n - num_byzantine - 2, 1)
    sq_norms = np.sum(gradients**2, axis=1)
    squared = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (gradients @ gradients.T)
    np.maximum(squared, 0.0, out=squared)
    np.fill_diagonal(squared, np.inf)
    sorted_sq = np.sort(squared, axis=1)
    return sorted_sq[:, :num_neighbors].sum(axis=1)


def multi_krum_select_reference(
    gradients: np.ndarray, num_byzantine: int, num_selected: Optional[int] = None
) -> np.ndarray:
    """Seed Multi-Krum selection (ascending score order, then sorted)."""
    n = len(gradients)
    scores = krum_scores_reference(gradients, num_byzantine)
    if num_selected is None:
        num_selected = max(n - num_byzantine, 1)
    num_selected = int(min(num_selected, n))
    return np.argsort(scores)[:num_selected]


def bulyan_reference(
    gradients: np.ndarray, num_byzantine: int
) -> Dict[str, np.ndarray]:
    """Seed Bulyan: iterative Krum with a fresh Gram matrix per iteration."""
    n = len(gradients)
    f = int(max(min(num_byzantine, (n - 3) // 4), 0))
    theta = max(n - 2 * f, 1)

    remaining = list(range(n))
    selected: List[int] = []
    while len(selected) < theta and len(remaining) > 2:
        subset = gradients[remaining]
        scores = krum_scores_reference(subset, f)
        winner_local = int(np.argmin(scores))
        selected.append(remaining.pop(winner_local))
    if not selected:
        selected = list(range(n))
    selected_array = np.array(sorted(selected))
    chosen = gradients[selected_array]

    beta = max(len(chosen) - 2 * f, 1)
    median = np.median(chosen, axis=0)
    distance_to_median = np.abs(chosen - median)
    order = np.argsort(distance_to_median, axis=0)
    closest = np.take_along_axis(chosen, order[:beta], axis=0)
    aggregated = closest.mean(axis=0)
    return {"gradient": aggregated, "selected_indices": selected_array}


# ---------------------------------------------------------------------------
# DnC (seed loop; rng consumption must match the optimized implementation)
# ---------------------------------------------------------------------------


def dnc_reference(
    gradients: np.ndarray,
    num_byzantine: int,
    rng: np.random.Generator,
    *,
    num_iterations: int = 3,
    subsample_dim: int = 512,
    filter_fraction: float = 1.0,
) -> Dict[str, np.ndarray]:
    """Seed Divide-and-Conquer spectral filtering."""
    n, dim = gradients.shape
    f = int(min(num_byzantine, (n - 1) // 2))
    num_removed = int(round(filter_fraction * f))
    good = np.arange(n)

    for _ in range(num_iterations):
        subset_dim = min(subsample_dim, dim)
        coords = rng.choice(dim, size=subset_dim, replace=False)
        sampled = gradients[good][:, coords]
        centered = sampled - sampled.mean(axis=0)
        try:
            _, _, vt = np.linalg.svd(centered, full_matrices=False)
            top_direction = vt[0]
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate input
            top_direction = np.ones(subset_dim) / np.sqrt(subset_dim)
        scores = (centered @ top_direction) ** 2
        keep = max(len(good) - num_removed, 1)
        # Stable, like the optimized implementation: exact score ties break
        # by client index on every platform.
        order = np.argsort(scores, kind="stable")
        good = good[order[:keep]]

    good = np.sort(good)
    return {"gradient": gradients[good].mean(axis=0), "selected_indices": good}


# ---------------------------------------------------------------------------
# Mean-Shift (seed: full pairwise recompute per iteration + Python merge loop)
# ---------------------------------------------------------------------------


def _pairwise_distances_reference(x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = x if y is None else np.atleast_2d(np.asarray(y, dtype=np.float64))
    x_sq = np.sum(x**2, axis=1)[:, None]
    y_sq = np.sum(y**2, axis=1)[None, :]
    squared = x_sq + y_sq - 2.0 * (x @ y.T)
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared)


def estimate_bandwidth_reference(x: np.ndarray, *, quantile: float = 0.3) -> float:
    """Seed bandwidth heuristic (always recomputes its own distances)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if len(x) < 2:
        return 1.0
    distances = _pairwise_distances_reference(x)
    upper = distances[np.triu_indices(len(x), k=1)]
    bandwidth = float(np.quantile(upper, quantile))
    if bandwidth <= 0.0:
        positive = upper[upper > 0]
        bandwidth = float(positive.min()) if len(positive) else 1e-3
    return bandwidth


def meanshift_reference(
    x: np.ndarray,
    *,
    bandwidth: Optional[float] = None,
    max_iter: int = 200,
    tol: float = 1e-5,
    quantile: float = 0.3,
) -> Dict[str, Any]:
    """Seed flat-kernel Mean-Shift fit returning labels / centers / count."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n_samples = len(x)
    if n_samples == 0:
        raise ValueError("cannot cluster an empty feature matrix")
    if bandwidth is None:
        bandwidth = estimate_bandwidth_reference(x, quantile=quantile)

    points = x.copy()
    for _ in range(max_iter):
        distances = _pairwise_distances_reference(points, x)
        within = distances <= bandwidth
        weights = within.astype(np.float64)
        counts = weights.sum(axis=1, keepdims=True)
        shifted = (weights @ x) / counts
        movement = float(np.max(np.linalg.norm(shifted - points, axis=1)))
        points = shifted
        if movement <= tol:
            break

    centers: list = []
    labels = np.full(n_samples, -1, dtype=int)
    for i in range(n_samples):
        assigned = False
        for cluster_index, center in enumerate(centers):
            if np.linalg.norm(points[i] - center) <= bandwidth:
                labels[i] = cluster_index
                assigned = True
                break
        if not assigned:
            centers.append(points[i])
            labels[i] = len(centers) - 1

    refined = np.vstack([x[labels == k].mean(axis=0) for k in range(len(centers))])
    return {"labels": labels, "cluster_centers": refined, "n_clusters": len(centers)}


def meanshift_largest_cluster_reference(
    labels: np.ndarray, n_clusters: int
) -> np.ndarray:
    counts = np.bincount(labels, minlength=n_clusters)
    winner = int(np.argmax(counts))
    return np.flatnonzero(labels == winner)


# ---------------------------------------------------------------------------
# SignGuard pipeline (seed: per-stage revalidation and norm recomputation)
# ---------------------------------------------------------------------------


def _sign_statistics_reference(
    gradients: np.ndarray, coordinates: Optional[np.ndarray] = None
) -> np.ndarray:
    gradients = check_gradient_matrix(gradients)
    if coordinates is not None:
        gradients = gradients[:, np.asarray(coordinates, dtype=int)]
    dim = gradients.shape[1]
    positive_count = (gradients > 0.0).sum(axis=1)
    negative_count = (gradients < 0.0).sum(axis=1)
    zero_count = dim - positive_count - negative_count
    return np.column_stack([positive_count, zero_count, negative_count]) / dim


def _cosine_feature_reference(
    gradients: np.ndarray, reference: Optional[np.ndarray], epsilon: float = 1e-12
) -> np.ndarray:
    gradients = check_gradient_matrix(gradients)
    norms = np.linalg.norm(gradients, axis=1)
    if reference is not None and np.linalg.norm(reference) > epsilon:
        reference = np.asarray(reference, dtype=np.float64)
        return (gradients @ reference) / (
            np.maximum(norms, epsilon) * np.linalg.norm(reference)
        )
    normalized = gradients / np.maximum(norms, epsilon)[:, None]
    similarity = normalized @ normalized.T
    np.fill_diagonal(similarity, np.nan)
    return np.nanmedian(similarity, axis=1)


def _euclidean_feature_reference(
    gradients: np.ndarray, reference: Optional[np.ndarray]
) -> np.ndarray:
    gradients = check_gradient_matrix(gradients)
    if reference is not None and np.asarray(reference).size == gradients.shape[1]:
        reference = np.asarray(reference, dtype=np.float64)
        distances = np.linalg.norm(gradients - reference, axis=1)
    else:
        sq_norms = np.sum(gradients**2, axis=1)
        squared = (
            sq_norms[:, None] + sq_norms[None, :] - 2.0 * (gradients @ gradients.T)
        )
        np.maximum(squared, 0.0, out=squared)
        pairwise = np.sqrt(squared)
        np.fill_diagonal(pairwise, np.nan)
        distances = np.nanmedian(pairwise, axis=1)
    scale = np.median(distances)
    if scale > 0:
        distances = distances / scale
    return distances


def signguard_pipeline_reference(
    gradients: np.ndarray,
    *,
    reference: Optional[np.ndarray] = None,
    rng: RngLike = None,
    similarity: str = "none",
    coordinate_fraction: float = 0.1,
    lower: float = 0.1,
    upper: float = 3.0,
    bandwidth_quantile: float = 0.5,
    use_norm_threshold: bool = True,
    use_sign_clustering: bool = True,
    use_norm_clipping: bool = True,
) -> Dict[str, Any]:
    """Seed ``SignGuardPipeline.aggregate``: Mean-Shift clustering backend.

    The rng draw sequence matches the optimized pipeline exactly (one
    ``rng.choice`` for the coordinate subset), so running both with
    identically seeded generators must produce the same selection.

    Note: unlike the unified post-fix behavior, the seed Euclidean feature
    accepted an all-zero reference — callers comparing against the optimized
    path should pass either ``None`` or a usable (non-zero) reference.
    """
    gradients = check_gradient_matrix(gradients)
    rng = as_rng(rng)
    n = len(gradients)
    selected = np.arange(n)

    if use_norm_threshold:
        norms = np.linalg.norm(check_gradient_matrix(gradients), axis=1)
        reference_norm = float(np.median(norms))
        if reference_norm <= 0:
            keep = np.arange(n)
        else:
            ratios = norms / reference_norm
            keep = np.flatnonzero((ratios >= lower) & (ratios <= upper))
        selected = np.intersect1d(selected, keep)

    if use_sign_clustering:
        checked = check_gradient_matrix(gradients)
        dim = checked.shape[1]
        check_fraction(coordinate_fraction, "fraction")
        count = max(int(round(coordinate_fraction * dim)), 1)
        coordinates = np.sort(rng.choice(dim, size=count, replace=False))
        features = [_sign_statistics_reference(checked, coordinates)]
        if similarity == "cosine":
            features.append(_cosine_feature_reference(checked, reference)[:, None])
        elif similarity == "euclidean":
            features.append(_euclidean_feature_reference(checked, reference)[:, None])
        matrix = np.hstack(features)
        if n <= 2:
            keep = np.arange(n)
        else:
            fit = meanshift_reference(matrix, quantile=bandwidth_quantile)
            keep = meanshift_largest_cluster_reference(fit["labels"], fit["n_clusters"])
        selected = np.intersect1d(selected, np.sort(keep))

    if len(selected) == 0:
        norms = np.linalg.norm(gradients, axis=1)
        selected = np.array([int(np.argsort(norms)[len(norms) // 2])])

    trusted = gradients[selected]
    if use_norm_clipping:
        bound = float(
            np.median(np.linalg.norm(check_gradient_matrix(gradients), axis=1))
        )
        clip_norms = np.linalg.norm(np.atleast_2d(trusted), axis=1)
        scales = np.ones_like(clip_norms)
        positive = clip_norms > 0
        scales[positive] = np.minimum(1.0, bound / clip_norms[positive])
        trusted = trusted * scales[:, None]
    aggregated = trusted.mean(axis=0)
    return {"gradient": aggregated, "selected_indices": selected}
