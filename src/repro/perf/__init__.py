"""``repro.perf`` — the benchmarking and profiling subsystem.

The ROADMAP's north star is a system that "runs as fast as the hardware
allows"; this package supplies the instrumentation needed to *prove* every
speedup instead of asserting it:

* :mod:`repro.perf.timers` — monotonic wall-clock timers and a named
  stage-timing accumulator.
* :mod:`repro.perf.profiler` — :class:`RoundProfiler`, the per-round,
  per-stage profiler the federated server and simulation hook into.
* :mod:`repro.perf.bench` — a micro-benchmark runner producing
  machine-readable ``BENCH_*.json`` files so regressions are visible
  PR-over-PR.
* :mod:`repro.perf.reference` — frozen copies of the pre-optimization
  (seed) implementations, used as the baseline for both the equivalence
  test suite and the speedup benchmarks.
"""

from repro.perf.bench import (
    BenchResult,
    peak_rss_bytes,
    read_bench_json,
    run_benchmark,
    speedup,
    write_bench_json,
)
from repro.perf.profiler import NULL_PROFILER, NullProfiler, RoundProfiler
from repro.perf.timers import StageTimings, Timer, monotonic

__all__ = [
    "BenchResult",
    "peak_rss_bytes",
    "run_benchmark",
    "speedup",
    "read_bench_json",
    "write_bench_json",
    "RoundProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "StageTimings",
    "Timer",
    "monotonic",
]
