"""Per-round, per-stage profiling for the federated training loop.

A :class:`RoundProfiler` is handed to
:class:`~repro.fl.server.FederatedServer` /
:class:`~repro.fl.simulation.FederatedSimulation` (or any other component)
and collects how long each named stage of every round takes — gradient
collection, the attack transformation, the defense's aggregation, the model
update.  The result is a machine-readable dict suitable for
:func:`repro.perf.bench.write_bench_json`.

When no profiler is configured the components use :data:`NULL_PROFILER`,
whose ``stage`` context manager is a reusable no-op, so the hot path pays a
single attribute lookup when profiling is off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.perf.timers import StageTimings, monotonic


class NullProfiler:
    """No-op profiler with the same interface as :class:`RoundProfiler`."""

    enabled = False

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        yield

    def record(self, name: str, seconds: float) -> None:
        pass

    def count(self, name: str, value: float) -> None:
        pass

    def annotate(self, **fields: Any) -> None:
        pass

    def begin_round(self, round_index: Optional[int] = None) -> None:
        pass

    def end_round(self) -> None:
        pass


#: Shared no-op instance used when profiling is disabled.
NULL_PROFILER = NullProfiler()


class RoundProfiler:
    """Collects per-stage wall-clock timings across federated rounds.

    Usage::

        profiler = RoundProfiler()
        profiler.begin_round(0)
        with profiler.stage("aggregate"):
            result = aggregator(gradients, context)
        profiler.end_round()
        profiler.summary()  # {'aggregate': {'count': 1, 'mean_s': ...}, ...}

    Stages may nest and may also be recorded outside any round (the round
    bookkeeping only feeds the per-round totals).
    """

    enabled = True

    def __init__(self) -> None:
        self.timings = StageTimings()
        self.counters: Dict[str, float] = {}
        self.round_totals: List[Dict[str, Any]] = []
        self._round_start: Optional[float] = None
        self._round_index: Optional[int] = None
        self._round_annotations: Dict[str, Any] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a named stage and record the sample."""
        start = monotonic()
        try:
            yield
        finally:
            self.timings.add(name, monotonic() - start)

    def record(self, name: str, seconds: float) -> None:
        """Record an externally measured duration sample for ``name``.

        Used for stages that are not timed around a ``with`` block — e.g.
        the per-worker chunk durations reported by a
        :class:`~repro.fl.collector.ParallelCollector`.
        """
        self.timings.add(name, float(seconds))

    def count(self, name: str, value: float) -> None:
        """Accumulate a non-time quantity (bytes on the wire, cache hits...).

        Counters are plain run-level totals: the distributed collect
        backend feeds its per-round ``bytes_sent``/``bytes_received`` here,
        so benchmark JSON can report traffic next to wall-clock stages.
        """
        self.counters[name] = self.counters.get(name, 0) + value

    def annotate(self, **fields: Any) -> None:
        """Attach metadata to the current round's totals entry.

        The federated simulation uses this to record participation facts —
        cohort size, sampled Byzantine count, dropouts, stragglers — next
        to the round's wall-clock total.  Calling it outside a round is a
        no-op.
        """
        if self._round_start is not None:
            self._round_annotations.update(fields)

    def begin_round(self, round_index: Optional[int] = None) -> None:
        """Mark the start of a federated round."""
        self._round_start = monotonic()
        if round_index is None:
            round_index = len(self.round_totals)
        self._round_index = int(round_index)
        self._round_annotations = {}

    def end_round(self) -> None:
        """Mark the end of a round and record its total wall-clock time."""
        if self._round_start is None:
            return
        elapsed = monotonic() - self._round_start
        self.timings.add("round_total", elapsed)
        self.round_totals.append(
            {
                "round_index": self._round_index,
                "total_s": elapsed,
                **self._round_annotations,
            }
        )
        self._round_start = None
        self._round_index = None
        self._round_annotations = {}

    @property
    def num_rounds(self) -> int:
        return len(self.round_totals)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage statistics over every recorded sample."""
        return self.timings.summary()

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable payload for ``BENCH_*.json`` files."""
        return {
            "num_rounds": self.num_rounds,
            "stages": self.summary(),
            "counters": dict(self.counters),
            "rounds": list(self.round_totals),
        }

    def reset(self) -> None:
        self.timings.clear()
        self.counters.clear()
        self.round_totals.clear()
        self._round_start = None
        self._round_index = None
