"""Monotonic timers and named stage-timing accumulation.

Everything here measures wall-clock time with ``time.perf_counter`` — a
monotonic clock with the highest resolution the platform offers — so timings
are immune to system clock adjustments.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


def monotonic() -> float:
    """Current monotonic wall-clock time in seconds."""
    return time.perf_counter()


class Timer:
    """A start/stop stopwatch usable as a context manager.

    >>> with Timer() as t:
    ...     work()
    >>> t.elapsed  # seconds
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = monotonic()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = monotonic() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class StageTimings:
    """Accumulates named duration samples and summarizes them.

    The summary statistics (count / total / mean / min / max) are the
    machine-readable payload written into ``BENCH_*.json`` files.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    def add(self, name: str, seconds: float) -> None:
        self._samples.setdefault(name, []).append(float(seconds))

    def samples(self, name: str) -> List[float]:
        return list(self._samples.get(name, []))

    @property
    def stage_names(self) -> List[str]:
        return list(self._samples)

    def total(self, name: str) -> float:
        return sum(self._samples.get(name, []))

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage statistics over all recorded samples."""
        result: Dict[str, Dict[str, float]] = {}
        for name, samples in self._samples.items():
            if not samples:
                continue
            result[name] = {
                "count": len(samples),
                "total_s": sum(samples),
                "mean_s": sum(samples) / len(samples),
                "min_s": min(samples),
                "max_s": max(samples),
            }
        return result

    def merge(self, other: "StageTimings") -> "StageTimings":
        """Fold another accumulator's samples into this one."""
        for name, samples in other._samples.items():
            self._samples.setdefault(name, []).extend(samples)
        return self

    def clear(self) -> None:
        self._samples.clear()

    def __len__(self) -> int:
        return sum(len(samples) for samples in self._samples.values())
