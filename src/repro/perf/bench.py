"""Micro-benchmark runner with machine-readable JSON output.

The runner deliberately stays tiny: warm up, run ``repeats`` timed
iterations of a callable, record best/mean/total.  Results are serialized to
``BENCH_*.json`` files (one per benchmark suite) so each PR can check in
hard evidence of its speedups and CI can detect regressions by comparing
files across revisions.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.perf.timers import monotonic

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX hosts
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """Process-lifetime high-water-mark resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; 0 on platforms
    without the ``resource`` module.  The value is monotone over the
    process lifetime (it cannot be reset), so it is an *upper bound* on
    any single benchmark's footprint — memory *floors* are enforced with
    a resettable tracer (``tracemalloc``), while this number is recorded
    per bench row as deployment-planning context.
    """
    if resource is None:  # pragma: no cover - non-POSIX hosts
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak if sys.platform == "darwin" else peak * 1024)


@dataclass
class BenchResult:
    """Timing summary of one micro-benchmark case."""

    name: str
    repeats: int
    best_s: float
    mean_s: float
    total_s: float
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "total_s": self.total_s,
            "extra": dict(self.extra),
        }


def run_benchmark(
    fn: Callable[[], Any],
    *,
    name: str = "benchmark",
    repeats: int = 3,
    warmup: int = 1,
    extra: Optional[Dict[str, Any]] = None,
) -> BenchResult:
    """Time ``fn`` over ``repeats`` runs after ``warmup`` untimed runs."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = monotonic()
        fn()
        samples.append(monotonic() - start)
    # Every bench row carries the process peak RSS observed by the time the
    # row was measured (callers can override by passing their own value).
    merged_extra = dict(extra or {})
    merged_extra.setdefault("peak_rss_bytes", peak_rss_bytes())
    return BenchResult(
        name=name,
        repeats=repeats,
        best_s=min(samples),
        mean_s=sum(samples) / len(samples),
        total_s=sum(samples),
        extra=merged_extra,
    )


def speedup(reference: BenchResult, optimized: BenchResult) -> float:
    """Best-over-best wall-clock speedup of ``optimized`` vs ``reference``."""
    if optimized.best_s <= 0:
        return float("inf")
    return reference.best_s / optimized.best_s


def _environment_info() -> Dict[str, Any]:
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        # Parallel-backend speedups (process/distributed collect) only mean
        # anything next to the core count they were measured on.
        "cpu_count": os.cpu_count() or 1,
    }


def write_bench_json(
    path: Union[str, Path],
    results: Iterable[BenchResult],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Serialize benchmark results (plus environment info) to ``path``."""
    path = Path(path)
    payload = {
        "schema": "repro.perf/bench-v1",
        "environment": _environment_info(),
        "metadata": dict(metadata or {}),
        "results": [result.to_dict() for result in results],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` payload back into a dict."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
