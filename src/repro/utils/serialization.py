"""JSON serialization helpers that tolerate numpy scalars and arrays."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that converts numpy types to their Python equivalents."""

    def default(self, obj: Any) -> Any:  # noqa: D102 - documented by parent
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, (np.bool_,)):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(payload: Any, path: PathLike, *, indent: int = 2) -> Path:
    """Write ``payload`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, cls=NumpyJSONEncoder)
    return path


def load_json(path: PathLike) -> Any:
    """Read JSON from ``path``."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def dumps(payload: Any, *, indent: int = 2) -> str:
    """Serialize ``payload`` to a JSON string with numpy support."""
    return json.dumps(payload, indent=indent, cls=NumpyJSONEncoder)
