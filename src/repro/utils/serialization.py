"""Serialization helpers: numpy-tolerant JSON and binary array blobs.

The JSON half backs benchmark/recording files; the binary half
(:func:`arrays_to_blob` / :func:`blob_to_arrays`) is the pickle-free wire
format the distributed transport uses for per-round ``Module.state_dict()``
broadcasts — a JSON manifest of ``(name, dtype, shape)`` followed by the
concatenated raw array bytes, so decoding is a zero-copy ``frombuffer``
per array.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

PathLike = Union[str, Path]


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that converts numpy types to their Python equivalents."""

    def default(self, obj: Any) -> Any:  # noqa: D102 - documented by parent
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, (np.bool_,)):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(payload: Any, path: PathLike, *, indent: int = 2) -> Path:
    """Write ``payload`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, cls=NumpyJSONEncoder)
    return path


def load_json(path: PathLike) -> Any:
    """Read JSON from ``path``."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def dumps(payload: Any, *, indent: int = 2) -> str:
    """Serialize ``payload`` to a JSON string with numpy support."""
    return json.dumps(payload, indent=indent, cls=NumpyJSONEncoder)


#: struct format of the manifest-length prefix in an array blob.
_BLOB_PREFIX = struct.Struct("!I")


def arrays_to_blob(arrays: Dict[str, np.ndarray]) -> bytes:
    """Encode named arrays into one self-describing binary blob.

    Layout: a 4-byte big-endian manifest length, a JSON manifest of
    ``[name, dtype, shape]`` entries (in dict order), then each array's raw
    C-order bytes concatenated.  No pickling is involved, so the format is
    safe to decode from an untrusted peer.
    """
    manifest = []
    chunks = []
    for name, array in arrays.items():
        # asarray(order="C"), not ascontiguousarray: the latter silently
        # promotes 0-d arrays to 1-d, corrupting scalar buffers' shapes.
        array = np.asarray(array, order="C")
        manifest.append([name, array.dtype.str, list(array.shape)])
        chunks.append(array.tobytes())
    header = json.dumps(manifest).encode("utf-8")
    return b"".join([_BLOB_PREFIX.pack(len(header)), header, *chunks])


def blob_to_arrays(blob: bytes) -> Dict[str, np.ndarray]:
    """Decode a blob produced by :func:`arrays_to_blob`.

    The returned arrays are read-only views into ``blob`` (no copy); callers
    that need to mutate them copy explicitly.  Raises ``ValueError`` on a
    malformed or truncated blob.
    """
    view = memoryview(blob)
    if len(view) < _BLOB_PREFIX.size:
        raise ValueError("array blob shorter than its manifest prefix")
    (header_len,) = _BLOB_PREFIX.unpack_from(view)
    offset = _BLOB_PREFIX.size
    if len(view) < offset + header_len:
        raise ValueError("array blob truncated inside its manifest")
    try:
        manifest = json.loads(bytes(view[offset : offset + header_len]))
    except json.JSONDecodeError as exc:
        raise ValueError(f"array blob has a malformed manifest: {exc}") from exc
    offset += header_len
    arrays: Dict[str, np.ndarray] = {}
    for entry in manifest:
        try:
            name, dtype_str, shape = entry
            dtype = np.dtype(dtype_str)
            shape = tuple(int(dim) for dim in shape)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"array blob manifest entry invalid: {entry!r}") from exc
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if len(view) < offset + nbytes:
            raise ValueError(f"array blob truncated inside array {name!r}")
        arrays[name] = np.frombuffer(
            view[offset : offset + nbytes], dtype=dtype
        ).reshape(shape)
        offset += nbytes
    if offset != len(view):
        raise ValueError(
            f"array blob has {len(view) - offset} trailing bytes after its arrays"
        )
    return arrays
