"""Experiment configuration dataclasses.

A federated-learning experiment in this reproduction is fully described by an
:class:`ExperimentConfig`, which nests data, training, attack, and defense
sub-configs.  The dataclasses are plain and serializable (``to_dict`` /
``from_dict``) so benchmark sweeps and example scripts can construct, mutate,
and record them without extra machinery.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.utils.validation import (
    check_fraction,
    check_integer_in_range,
    check_positive,
)


@dataclass
class DataConfig:
    """Which dataset to use and how to partition it across clients.

    Attributes:
        dataset: registered dataset name (``mnist_like``, ``fashion_like``,
            ``cifar_like``, ``agnews_like``).
        num_train: number of training samples generated.
        num_test: number of held-out test samples.
        partition: ``"iid"``, ``"sort_and_partition"`` or ``"dirichlet"``.
        iid_fraction: the paper's ``s`` parameter for the sort-and-partition
            non-IID scheme (fraction of the data spread IID before sorting).
        dirichlet_alpha: concentration for the Dirichlet partitioner.
        shards_per_client: shards assigned per client in the non-IID scheme.
    """

    dataset: str = "mnist_like"
    num_train: int = 2000
    num_test: int = 500
    partition: str = "iid"
    iid_fraction: float = 1.0
    dirichlet_alpha: float = 0.5
    shards_per_client: int = 2

    def validate(self) -> "DataConfig":
        check_integer_in_range(self.num_train, "num_train", minimum=1)
        check_integer_in_range(self.num_test, "num_test", minimum=1)
        check_fraction(self.iid_fraction, "iid_fraction")
        check_positive(self.dirichlet_alpha, "dirichlet_alpha")
        check_integer_in_range(self.shards_per_client, "shards_per_client", minimum=1)
        if self.partition not in {"iid", "sort_and_partition", "dirichlet"}:
            raise ValueError(f"unknown partition scheme {self.partition!r}")
        return self


@dataclass
class TrainingConfig:
    """Optimization hyper-parameters for the federated simulation.

    Mirrors the paper's defaults: momentum SGD (0.9) with weight decay
    5e-4 and one local iteration per round.

    ``dtype`` selects the precision of the whole round: the global model's
    parameters, the clients' gradient computation, and the round gradient
    buffer that flows through the attack → defense → aggregation path.
    ``"float64"`` (default) or ``"float32"`` (halved memory traffic on the
    round hot path, including the collect stage).

    ``n_workers`` sets the worker count of the collect stage (1 = the
    sequential seed behaviour) and ``collect_backend`` picks the strategy the
    workers run on: ``"thread"`` (default — a
    :class:`~repro.fl.collector.ParallelCollector`, best when clients wait on
    dispatch latency or GIL-releasing BLAS), ``"process"`` (a
    :class:`~repro.fl.collector.ProcessCollector` over shared memory —
    recovers compute parallelism on GIL-bound hosts), ``"distributed"`` (a
    :class:`~repro.fl.transport.collector.DistributedCollector` over the
    TCP ``repro-worker`` fleet listed in ``workers``), or ``"sequential"``
    (force the seed loop regardless of ``n_workers``).  Every backend is
    bit-identical to the sequential path at any worker count; the
    distributed backend additionally degrades a dead or timed-out worker
    into :class:`~repro.fl.participation.RoundPlan` dropouts instead of
    crashing the run.

    ``wire_codec`` picks the gradient wire codec of the distributed
    backend's shard frames (see :mod:`repro.fl.transport.codec`):
    ``"raw"`` (default — lossless, the pre-codec wire format byte for
    byte), ``"sign1bit"``, ``"int8"``, ``"fp16"``, or ``"topk"``.  The
    non-raw codecs trade the collect contract's bit-exactness for a
    16–64× smaller gradient frame; only ``"raw"`` is meaningful for the
    in-process backends (which have no wire).

    ``participation`` selects which clients train each round (see
    :mod:`repro.fl.participation`): ``"full"`` (default — every client,
    every round, the paper's cross-silo setting), ``"uniform"`` (a
    ``participation_fraction`` cohort sampled per round, FedAvg-style), or
    ``"fixed_cohort"`` (exactly ``cohort_size`` clients per round).
    ``dropout_rate`` and ``straggler_rate`` simulate sampled clients that
    fail before computing / compute but miss the synchronous deadline.

    The fault-tolerance knobs: ``connect_timeout`` / ``round_timeout``
    bound the distributed backend's worker handshakes and round replies
    (``round_timeout=None`` waits forever); ``min_cohort_fraction`` is the
    round quorum (at least ``ceil(fraction * cohort_size)`` clients must
    aggregate) and ``on_quorum_loss`` what to do beneath it — ``"accept"``
    the degraded round, ``"retry"`` the plan up to ``quorum_retries``
    times, or ``"abort"`` the run (see
    :class:`~repro.fl.simulation.FederatedSimulation`).
    """

    model: str = "simple_cnn"
    rounds: int = 30
    batch_size: int = 32
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    local_iterations: int = 1
    lr_decay: float = 1.0
    eval_every: int = 1
    dtype: str = "float64"
    n_workers: int = 1
    collect_backend: str = "thread"
    workers: Optional[List[str]] = None
    wire_codec: str = "raw"
    participation: str = "full"
    participation_fraction: float = 1.0
    cohort_size: Optional[int] = None
    dropout_rate: float = 0.0
    straggler_rate: float = 0.0
    connect_timeout: float = 10.0
    round_timeout: Optional[float] = 120.0
    min_cohort_fraction: float = 0.0
    on_quorum_loss: str = "accept"
    quorum_retries: int = 2

    def validate(self) -> "TrainingConfig":
        check_integer_in_range(self.rounds, "rounds", minimum=1)
        check_integer_in_range(self.batch_size, "batch_size", minimum=1)
        check_positive(self.learning_rate, "learning_rate")
        check_fraction(self.momentum, "momentum")
        check_positive(self.weight_decay, "weight_decay", strict=False)
        check_integer_in_range(self.local_iterations, "local_iterations", minimum=1)
        check_positive(self.lr_decay, "lr_decay")
        check_integer_in_range(self.eval_every, "eval_every", minimum=1)
        if self.dtype not in {"float32", "float64"}:
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
        check_integer_in_range(self.n_workers, "n_workers", minimum=1)
        # Function-scope import: repro.fl.collector owns the backend registry
        # and importing it at module level would cycle (fl imports config).
        from repro.fl.collector import COLLECT_BACKENDS

        if self.collect_backend not in COLLECT_BACKENDS:
            raise ValueError(
                f"collect_backend must be one of {COLLECT_BACKENDS}, "
                f"got {self.collect_backend!r}"
            )
        if self.collect_backend == "distributed":
            if not self.workers:
                raise ValueError(
                    "collect_backend='distributed' requires workers="
                    "['host:port', ...]"
                )
            from repro.fl.transport.client import parse_address

            for spec in self.workers:
                parse_address(spec)
        elif self.workers:
            raise ValueError(
                "workers= is only meaningful with collect_backend='distributed' "
                f"(got collect_backend={self.collect_backend!r})"
            )
        from repro.fl.transport.codec import wire_codec_names

        if self.wire_codec not in wire_codec_names():
            raise ValueError(
                f"wire_codec must be one of {wire_codec_names()}, "
                f"got {self.wire_codec!r}"
            )
        if self.wire_codec != "raw" and self.collect_backend != "distributed":
            raise ValueError(
                "wire_codec= is only meaningful with collect_backend="
                "'distributed' — the in-process backends have no wire "
                f"(got collect_backend={self.collect_backend!r})"
            )
        from repro.fl.participation import PARTICIPATION_SCHEDULES

        if self.participation not in PARTICIPATION_SCHEDULES:
            raise ValueError(
                f"participation must be one of {PARTICIPATION_SCHEDULES}, "
                f"got {self.participation!r}"
            )
        check_fraction(self.participation_fraction, "participation_fraction")
        if self.participation_fraction <= 0.0:
            raise ValueError(
                "participation_fraction must be in (0, 1], "
                f"got {self.participation_fraction}"
            )
        if self.cohort_size is not None:
            check_integer_in_range(self.cohort_size, "cohort_size", minimum=1)
        if self.participation == "fixed_cohort" and self.cohort_size is None:
            raise ValueError("participation='fixed_cohort' requires cohort_size")
        check_fraction(self.dropout_rate, "dropout_rate")
        check_fraction(self.straggler_rate, "straggler_rate")
        if self.dropout_rate >= 1.0 or self.straggler_rate >= 1.0:
            raise ValueError("dropout_rate and straggler_rate must be < 1")
        check_positive(self.connect_timeout, "connect_timeout")
        if self.round_timeout is not None:
            check_positive(self.round_timeout, "round_timeout")
        check_fraction(self.min_cohort_fraction, "min_cohort_fraction")
        from repro.fl.faults import QUORUM_POLICIES

        if self.on_quorum_loss not in QUORUM_POLICIES:
            raise ValueError(
                f"on_quorum_loss must be one of {QUORUM_POLICIES}, "
                f"got {self.on_quorum_loss!r}"
            )
        check_integer_in_range(self.quorum_retries, "quorum_retries", minimum=0)
        return self


@dataclass
class AttackConfig:
    """Which attack the Byzantine clients mount and its parameters."""

    name: str = "no_attack"
    byzantine_fraction: float = 0.2
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> "AttackConfig":
        check_fraction(self.byzantine_fraction, "byzantine_fraction")
        if self.byzantine_fraction >= 0.5:
            raise ValueError(
                "byzantine_fraction must be < 0.5 (Byzantine minority assumption)"
            )
        return self


@dataclass
class DefenseConfig:
    """Which gradient aggregation rule the server runs and its parameters."""

    name: str = "signguard"
    params: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> "DefenseConfig":
        if not self.name:
            raise ValueError("defense name must be non-empty")
        return self


@dataclass
class ExperimentConfig:
    """Complete description of one federated-learning experiment."""

    num_clients: int = 50
    seed: int = 0
    data: DataConfig = field(default_factory=DataConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    attack: AttackConfig = field(default_factory=AttackConfig)
    defense: DefenseConfig = field(default_factory=DefenseConfig)
    tag: str = ""

    def validate(self) -> "ExperimentConfig":
        check_integer_in_range(self.num_clients, "num_clients", minimum=2)
        self.data.validate()
        self.training.validate()
        self.attack.validate()
        self.defense.validate()
        if self.num_byzantine * 2 >= self.num_clients:
            raise ValueError(
                f"{self.num_byzantine} Byzantine clients out of {self.num_clients} "
                "violates the Byzantine-minority assumption"
            )
        if (
            self.training.cohort_size is not None
            and self.training.cohort_size > self.num_clients
        ):
            raise ValueError(
                f"cohort_size={self.training.cohort_size} exceeds "
                f"num_clients={self.num_clients}"
            )
        return self

    @property
    def num_byzantine(self) -> int:
        """Number of Byzantine clients implied by the attack fraction."""
        return int(round(self.attack.byzantine_fraction * self.num_clients))

    @property
    def num_benign(self) -> int:
        """Number of benign clients."""
        return self.num_clients - self.num_byzantine

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain nested dictionary."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentConfig":
        """Reconstruct a config from :meth:`to_dict` output."""
        data = DataConfig(**payload.get("data", {}))
        training = TrainingConfig(**payload.get("training", {}))
        attack = AttackConfig(**payload.get("attack", {}))
        defense = DefenseConfig(**payload.get("defense", {}))
        return cls(
            num_clients=payload.get("num_clients", 50),
            seed=payload.get("seed", 0),
            data=data,
            training=training,
            attack=attack,
            defense=defense,
            tag=payload.get("tag", ""),
        )

    def replace(self, **overrides: Any) -> "ExperimentConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **overrides)

    def describe(self) -> str:
        """Short human-readable identifier for logs and benchmark rows."""
        return (
            f"{self.data.dataset}/{self.training.model} "
            f"attack={self.attack.name} defense={self.defense.name} "
            f"beta={self.attack.byzantine_fraction:.2f}"
        )


def default_paper_config(
    dataset: str = "mnist_like",
    attack: str = "no_attack",
    defense: str = "signguard",
    *,
    byzantine_fraction: float = 0.2,
    seed: int = 0,
) -> ExperimentConfig:
    """The paper's default setup scaled to laptop size.

    50 clients, 20% Byzantine, IID data, momentum 0.9, weight decay 5e-4,
    one local iteration per round.  Model and round budget are chosen per
    dataset to keep single experiments fast while preserving the qualitative
    attack/defense behaviour.
    """
    training_by_dataset = {
        "mnist_like": TrainingConfig(model="simple_cnn", rounds=40, learning_rate=0.05),
        "fashion_like": TrainingConfig(
            model="simple_cnn", rounds=40, learning_rate=0.05
        ),
        "cifar_like": TrainingConfig(
            model="resnet_lite", rounds=40, learning_rate=0.05
        ),
        "agnews_like": TrainingConfig(model="textrnn", rounds=30, learning_rate=0.5),
    }
    if dataset not in training_by_dataset:
        raise ValueError(f"unknown dataset {dataset!r}")
    return ExperimentConfig(
        num_clients=50,
        seed=seed,
        data=DataConfig(dataset=dataset),
        training=training_by_dataset[dataset],
        attack=AttackConfig(name=attack, byzantine_fraction=byzantine_fraction),
        defense=DefenseConfig(name=defense),
    ).validate()
