"""Deterministic random-number management for reproducible simulations.

Every stochastic component in the reproduction (data generation, mini-batch
sampling, attack noise, clustering initialization, coordinate subsampling)
draws from a ``numpy.random.Generator`` that is derived from a single
experiment seed.  This keeps entire federated-learning runs bit-reproducible
while still giving each client and each subsystem an independent stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Uses ``SeedSequence.spawn`` so the child streams are statistically
    independent regardless of how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator so children are stable.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class RngFactory:
    """Named, reproducible RNG streams derived from one experiment seed.

    Each distinct ``name`` maps to an independent stream; requesting the same
    name twice returns generators with identical state history, which makes
    subsystem-level reproducibility straightforward:

    >>> factory = RngFactory(seed=0)
    >>> a = factory.make("clients")
    >>> b = factory.make("server")
    >>> a is not b
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._counters: Dict[str, int] = {}

    def make(self, name: str) -> np.random.Generator:
        """Return a new generator for stream ``name``.

        Repeated calls with the same name yield successive independent
        children of that name's sub-sequence (so components can ask for as
        many generators as they need without coordinating indices).
        """
        index = self._counters.get(name, 0)
        self._counters[name] = index + 1
        # Derive a stable child from (name, index) using hash-free mixing.
        name_entropy = [ord(ch) for ch in name] or [0]
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(*name_entropy, index),
        )
        return np.random.default_rng(child)

    def make_many(self, name: str, count: int) -> List[np.random.Generator]:
        """Return ``count`` generators for stream ``name``."""
        return [self.make(name) for _ in range(count)]

    def reset(self) -> None:
        """Forget all per-name counters (streams restart from the beginning)."""
        self._counters.clear()


def choice_without_replacement(
    rng: np.random.Generator, population: int, size: int
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``.

    Thin wrapper that validates arguments and always returns a sorted array,
    which makes downstream masking deterministic and easier to test.
    """
    if size > population:
        raise ValueError(
            f"cannot sample {size} items from a population of {population}"
        )
    picked = rng.choice(population, size=size, replace=False)
    return np.sort(picked)


def split_indices(
    rng: np.random.Generator, total: int, fractions: Iterable[float]
) -> List[np.ndarray]:
    """Randomly split ``range(total)`` into groups with the given fractions.

    The fractions must sum to 1 (within tolerance); the last group absorbs
    rounding remainders.
    """
    fracs = list(fractions)
    if not np.isclose(sum(fracs), 1.0, atol=1e-6):
        raise ValueError(f"fractions must sum to 1, got {sum(fracs)}")
    permutation = rng.permutation(total)
    groups: List[np.ndarray] = []
    start = 0
    for i, frac in enumerate(fracs):
        if i == len(fracs) - 1:
            stop = total
        else:
            stop = start + int(round(frac * total))
        groups.append(np.sort(permutation[start:stop]))
        start = stop
    return groups
