"""Input-validation helpers shared across the library.

All validators raise ``ValueError`` (or ``TypeError`` for wrong types) with a
message that names the offending argument, so failures deep inside a
federated simulation are easy to attribute.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Ensure ``value`` is a (strictly) positive finite number."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Ensure ``value`` lies in [0, 1] (or (0, 1) when ``inclusive=False``)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_gradient_matrix(
    gradients: np.ndarray, name: str = "gradients", *, preserve_dtype: bool = False
) -> np.ndarray:
    """Validate a stacked gradient matrix of shape ``(n_clients, dim)``.

    Returns the input coerced to a 2-D float64 array.  Empty matrices and
    non-finite entries are rejected because every aggregation rule in the
    library assumes at least one finite gradient.

    Args:
        preserve_dtype: keep a float32 input as float32 instead of upcasting
            (the reduced-precision round path); any non-float dtype is still
            coerced to float64.
    """
    if preserve_dtype:
        array = np.asarray(gradients)
        if array.dtype not in (np.float32, np.float64):
            array = np.asarray(array, dtype=np.float64)
    else:
        array = np.asarray(gradients, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(
            f"{name} must be a 2-D array of shape (n_clients, dim), "
            f"got shape {array.shape}"
        )
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains non-finite entries")
    return array


def check_probability_vector(probs: np.ndarray, name: str = "probs") -> np.ndarray:
    """Validate a 1-D vector of non-negative numbers that sums to 1."""
    array = np.asarray(probs, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    if np.any(array < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(array.sum())
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return array


def check_byzantine_count(
    num_byzantine: int, num_clients: int, *, name: str = "num_byzantine"
) -> int:
    """Ensure the Byzantine count is valid for ``num_clients`` participants.

    The paper's threat model requires a strict Byzantine minority
    (``n >= 2m + 1``).
    """
    num_byzantine = int(num_byzantine)
    num_clients = int(num_clients)
    if num_byzantine < 0:
        raise ValueError(f"{name} must be non-negative, got {num_byzantine}")
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    if num_byzantine * 2 >= num_clients:
        raise ValueError(
            f"{name}={num_byzantine} violates the Byzantine-minority requirement "
            f"n >= 2m + 1 for n={num_clients}"
        )
    return num_byzantine


def check_same_dimension(
    a: np.ndarray, b: np.ndarray, name_a: str = "a", name_b: str = "b"
) -> None:
    """Ensure two vectors/matrices share their trailing dimension."""
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(
            f"{name_a} and {name_b} must share their last dimension, "
            f"got {a.shape} and {b.shape}"
        )


def check_integer_in_range(
    value: int,
    name: str,
    *,
    minimum: Optional[int] = None,
    maximum: Optional[int] = None,
) -> int:
    """Ensure an integer falls in the inclusive range [minimum, maximum]."""
    if not float(value).is_integer():
        raise ValueError(f"{name} must be an integer, got {value}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValueError(f"{name} must be <= {maximum}, got {value}")
    return value
