"""The round-level gradient workspace: one matrix, many memoized views.

Every federated round touches the same stacked ``(n_clients, dim)`` gradient
matrix from several angles — the norm filter needs L2 norms, Krum/Bulyan/DnC
and the pairwise-fallback features need a Gram or distance matrix, the sign
filter needs sign counts, and the final clipped mean needs the norms again.
Before this module existed each consumer recomputed its quantity from
scratch, so a single SignGuard round validated the matrix up to six times and
ran three separate full norm passes.

:class:`GradientBatch` wraps the validated matrix once and memoizes every
derived quantity lazily.  It is threaded through
:class:`repro.aggregators.base.ServerContext` so the whole round shares one
cache; all public entry points still accept a raw ``np.ndarray`` and wrap it
on the fly (:meth:`GradientBatch.wrap` is idempotent).

The pairwise quantities intentionally mirror the pre-cache implementations
exactly (``np.sum(g**2, axis=1)`` for squared norms, the expanded quadratic
form for pairwise distances) so cached scoring paths stay bit-compatible
with the historical ones; row norms use a faster temp-free ``einsum`` that
agrees with ``np.linalg.norm`` to within a few ulps.

**Large cohorts.** The dense pairwise caches are ``O(n²)`` memory — at
``n=10_000`` the float64 distance matrix alone is 800 MB.  Above
``max_dense_pairwise`` rows (default :data:`MAX_DENSE_PAIRWISE`) the four
dense accessors (``gram`` / ``sq_distances`` / ``distances`` /
``cosine_similarities``) refuse with :class:`PairwiseMemoryError`, and
consumers go through the *blocked* primitives instead
(:meth:`GradientBatch.sq_distances_block`,
:meth:`GradientBatch.k_smallest_neighbor_sums`,
:meth:`GradientBatch.median_cosine_similarities`,
:meth:`GradientBatch.median_distances`,
:meth:`GradientBatch.max_pairwise_sq_distance`,
:meth:`GradientBatch.max_sum_sq_distance`), which stream
``(block_rows, n)`` tiles and never hold more than one tile at a time.
Below the threshold the blocked primitives *delegate to the dense caches*
(on this platform a row-block matmul ``m[a:b] @ m.T`` is not bitwise equal
to slicing the full ``m @ m.T`` — BLAS kernel dispatch varies with shape —
so delegation, not re-blocking, is what keeps small-n results bit-identical
to the historical dense path while sharing the round's memoization).

This module lives in ``repro.utils`` so that both ``repro.core`` and
``repro.aggregators`` can import it without creating a package cycle.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.utils.validation import check_gradient_matrix

ArrayOrBatch = Union[np.ndarray, "GradientBatch"]

#: dtypes the cache keeps as-is; everything else is coerced to float64.
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: Default row count above which the dense ``(n, n)`` pairwise caches
#: refuse to materialize.  4096² float64 = 128 MiB per matrix — the last
#: size where holding Gram + squared + sqrt'd distance matrices at once is
#: still comfortably inside a CI runner's memory.
MAX_DENSE_PAIRWISE = 4096

#: Row-block height for the streaming primitives: a ``(1024, n)`` float64
#: tile at n=100k is ~800 MB/100 = bounded independent of n² — peak memory
#: is ``O(block_rows · n)``.
PAIRWISE_BLOCK_ROWS = 1024


class PairwiseMemoryError(RuntimeError):
    """A dense ``(n, n)`` pairwise matrix was requested above the threshold.

    Raised by the four dense accessors when ``n_clients`` exceeds the
    batch's ``max_dense_pairwise``.  Consumers that can stream should use
    the blocked primitives; consumers that fundamentally need the dense
    matrix (Bulyan's iterative sub-matrix selection) surface this error to
    the caller rather than silently allocating gigabytes.
    """


class GradientBatch:
    """Per-round cache of derived quantities over a stacked gradient matrix.

    Attributes:
        matrix: the validated ``(n_clients, dim)`` gradient matrix.  Treated
            as read-only by every cached consumer; mutating it after derived
            quantities have been computed leaves the cache stale.

    Every derived quantity is computed at most once; ``compute_counts``
    records how many times each one was *actually* computed, which the perf
    smoke test uses to prove that optimized code paths never silently fall
    back to naive recomputation.
    """

    __slots__ = (
        "matrix",
        "max_dense_pairwise",
        "block_rows",
        "_norms",
        "_sq_norms",
        "_gram",
        "_sq_distances",
        "_distances",
        "_sign_counts",
        "compute_counts",
    )

    def __init__(
        self,
        gradients: np.ndarray,
        *,
        validate: bool = True,
        max_dense_pairwise: int = MAX_DENSE_PAIRWISE,
        block_rows: int = PAIRWISE_BLOCK_ROWS,
    ):
        if max_dense_pairwise < 1:
            raise ValueError(
                f"max_dense_pairwise must be >= 1, got {max_dense_pairwise}"
            )
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        if validate:
            matrix = check_gradient_matrix(gradients, preserve_dtype=True)
        else:
            matrix = np.atleast_2d(np.asarray(gradients))
            if matrix.dtype not in _FLOAT_DTYPES:
                matrix = matrix.astype(np.float64)
        self.matrix = matrix
        self.max_dense_pairwise = int(max_dense_pairwise)
        self.block_rows = int(block_rows)
        self._norms: Optional[np.ndarray] = None
        self._sq_norms: Optional[np.ndarray] = None
        self._gram: Optional[np.ndarray] = None
        self._sq_distances: Optional[np.ndarray] = None
        self._distances: Optional[np.ndarray] = None
        self._sign_counts: Dict[float, np.ndarray] = {}
        self.compute_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def wrap(cls, gradients: ArrayOrBatch, *, validate: bool = True) -> "GradientBatch":
        """Wrap ``gradients`` in a batch; a batch passes through unchanged."""
        if isinstance(gradients, GradientBatch):
            return gradients
        return cls(gradients, validate=validate)

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------

    @property
    def n_clients(self) -> int:
        return self.matrix.shape[0]

    @property
    def dim(self) -> int:
        return self.matrix.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    def __len__(self) -> int:
        return self.n_clients

    def __array__(self, dtype=None) -> np.ndarray:
        return self.matrix if dtype is None else self.matrix.astype(dtype)

    def _count(self, name: str) -> None:
        self.compute_counts[name] = self.compute_counts.get(name, 0) + 1

    @property
    def dense_pairwise_allowed(self) -> bool:
        """True when the ``(n, n)`` caches fit the configured memory budget."""
        return self.n_clients <= self.max_dense_pairwise

    def _require_dense_pairwise(self, name: str) -> None:
        if not self.dense_pairwise_allowed:
            n = self.n_clients
            gib = n * n * self.matrix.dtype.itemsize / 2**30
            raise PairwiseMemoryError(
                f"{name}() would materialize a ({n}, {n}) matrix "
                f"(~{gib:.1f} GiB) above max_dense_pairwise="
                f"{self.max_dense_pairwise}; use the blocked primitives "
                "(sq_distances_block / k_smallest_neighbor_sums / "
                "median_cosine_similarities / median_distances / "
                "max_pairwise_sq_distance / max_sum_sq_distance) or raise "
                "the threshold explicitly"
            )

    # ------------------------------------------------------------------
    # Memoized derived quantities
    # ------------------------------------------------------------------

    def norms(self) -> np.ndarray:
        """L2 norm of every row.

        Computed as ``sqrt(einsum('ij,ij->i'))``, which avoids the
        ``(n, dim)`` squared temporary that ``np.linalg.norm`` materializes —
        on a 100×100k matrix this is ~4× faster.  Values agree with
        ``np.linalg.norm`` to within a few ulps (summation order differs).
        """
        if self._norms is None:
            self._count("norms")
            self._norms = np.sqrt(np.einsum("ij,ij->i", self.matrix, self.matrix))
        return self._norms

    def median_norm(self) -> float:
        """Median row norm — SignGuard's reference norm ``M``."""
        return float(np.median(self.norms()))

    def sq_norms(self) -> np.ndarray:
        """Squared L2 norm of every row (``np.sum(g**2, axis=1)`` semantics)."""
        if self._sq_norms is None:
            self._count("sq_norms")
            self._sq_norms = np.sum(self.matrix**2, axis=1)
        return self._sq_norms

    def gram(self) -> np.ndarray:
        """The ``(n, n)`` Gram matrix ``G @ G.T``.

        Raises :class:`PairwiseMemoryError` above ``max_dense_pairwise``.
        """
        if self._gram is None:
            self._require_dense_pairwise("gram")
            self._count("gram")
            self._gram = self.matrix @ self.matrix.T
        return self._gram

    def sq_distances(self) -> np.ndarray:
        """Pairwise squared Euclidean distances between rows.

        Computed from the Gram matrix via the expanded quadratic form and
        clamped at zero, exactly like the historical per-consumer
        implementations.  The diagonal is exactly zero.  Callers must treat
        the returned matrix as read-only.
        """
        if self._sq_distances is None:
            self._require_dense_pairwise("sq_distances")
            self._count("sq_distances")
            sq_norms = self.sq_norms()
            squared = sq_norms[:, None] + sq_norms[None, :] - 2.0 * self.gram()
            np.maximum(squared, 0.0, out=squared)
            np.fill_diagonal(squared, 0.0)
            self._sq_distances = squared
        return self._sq_distances

    def distances(self) -> np.ndarray:
        """Pairwise Euclidean distances between rows (read-only)."""
        if self._distances is None:
            self._require_dense_pairwise("distances")
            self._count("distances")
            self._distances = np.sqrt(self.sq_distances())
        return self._distances

    def cosine_similarities(self, *, epsilon: float = 1e-12) -> np.ndarray:
        """Pairwise cosine similarities computed from the cached Gram matrix.

        Norms are clamped at ``epsilon`` (not at the float64 ``tiny``, whose
        square underflows to zero): an all-zero gradient row then gets
        similarity ``0 / epsilon² = 0`` everywhere, matching the historical
        normalize-then-multiply implementation.
        """
        self._require_dense_pairwise("cosine_similarities")
        norms = np.maximum(self.norms(), epsilon)
        return self.gram() / (norms[:, None] * norms[None, :])

    def sign_counts(self, zero_tolerance: float = 0.0) -> np.ndarray:
        """Per-row (positive, zero, negative) element counts over all coordinates.

        Cached per ``zero_tolerance`` value; used by
        :func:`repro.core.features.sign_statistics` when no coordinate subset
        is requested.
        """
        key = float(zero_tolerance)
        if key not in self._sign_counts:
            self._count("sign_counts")
            positive = (self.matrix > key).sum(axis=1)
            negative = (self.matrix < -key).sum(axis=1)
            zero = self.dim - positive - negative
            self._sign_counts[key] = np.column_stack([positive, zero, negative])
        return self._sign_counts[key]

    # ------------------------------------------------------------------
    # Blocked pairwise primitives (bounded peak memory at any n)
    # ------------------------------------------------------------------
    #
    # Below ``max_dense_pairwise`` every method here *delegates to the
    # dense caches* — bit-identical to the historical dense consumers by
    # construction, and sharing the round's memoization.  Above it, they
    # stream ``(block_rows, n)`` tiles built from the same expanded
    # quadratic form, holding at most one tile at a time: peak memory is
    # ``O(block_rows · n)`` instead of ``O(n²)``.

    def _row_block(self, rows: np.ndarray) -> np.ndarray:
        """The ``(len(rows), dim)`` row block, as a view when contiguous."""
        if rows.size and rows[-1] - rows[0] + 1 == rows.size:
            start = int(rows[0])
            candidate = self.matrix[start : start + rows.size]
            if np.array_equal(rows, np.arange(start, start + rows.size)):
                return candidate
        return self.matrix[rows]

    def sq_distances_block(self, rows: np.ndarray) -> np.ndarray:
        """Rows ``rows`` of the pairwise squared-distance matrix.

        Returns a fresh, writable ``(len(rows), n)`` tile with exactly-zero
        self-distances, matching :meth:`sq_distances` row for row.  The
        caller bounds peak memory by bounding ``len(rows)``.
        """
        rows = np.asarray(rows, dtype=np.intp).reshape(-1)
        if self.dense_pairwise_allowed:
            return self.sq_distances()[rows]
        self._count("sq_distances_block")
        sq_norms = self.sq_norms()
        tile = self._row_block(rows) @ self.matrix.T
        tile *= -2.0
        tile += sq_norms[rows][:, None]
        tile += sq_norms[None, :]
        np.maximum(tile, 0.0, out=tile)
        tile[np.arange(rows.size), rows] = 0.0
        return tile

    def iter_sq_distance_blocks(
        self, *, block_rows: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(row_indices, tile)`` covering every row exactly once."""
        step = int(block_rows if block_rows is not None else self.block_rows)
        if step < 1:
            raise ValueError(f"block_rows must be >= 1, got {step}")
        for start in range(0, self.n_clients, step):
            rows = np.arange(start, min(start + step, self.n_clients))
            yield rows, self.sq_distances_block(rows)

    def k_smallest_neighbor_sums(
        self, num_neighbors: int, *, block_rows: Optional[int] = None
    ) -> np.ndarray:
        """Per row: the sum of its ``num_neighbors`` smallest squared
        distances to *other* rows — the Krum score kernel.

        The exactly-zero self-distance is always among the ``k + 1``
        smallest entries of a row and contributes nothing, so each block is
        reduced with a bounded :func:`np.partition` plus a small
        ``(block, k + 1)`` sort whose summation order matches the
        historical sort-then-sum implementation bit-for-bit.
        """
        n = self.n_clients
        if num_neighbors < 1:
            raise ValueError(f"num_neighbors must be >= 1, got {num_neighbors}")
        kth = min(num_neighbors, n - 1)

        def reduce_block(tile: np.ndarray) -> np.ndarray:
            part = np.partition(tile, kth, axis=1)[:, : num_neighbors + 1]
            part.sort(axis=1)
            return part[:, 1:].sum(axis=1)

        if self.dense_pairwise_allowed:
            return reduce_block(self.sq_distances())
        sums = np.empty(n, dtype=self.sq_norms().dtype)
        for rows, tile in self.iter_sq_distance_blocks(block_rows=block_rows):
            sums[rows] = reduce_block(tile)
        return sums

    def median_cosine_similarities(
        self, *, epsilon: float = 1e-12, block_rows: Optional[int] = None
    ) -> np.ndarray:
        """Per row: the median cosine similarity to all *other* rows.

        The pairwise-median fallback of SignGuard's similarity feature
        (:func:`repro.core.features.cosine_similarity_feature`), computed
        without ever holding the full similarity matrix when dense caches
        are refused.
        """
        if self.dense_pairwise_allowed:
            similarity = self.cosine_similarities(epsilon=epsilon).astype(
                np.float64, copy=False
            )
            np.fill_diagonal(similarity, np.nan)
            return np.nanmedian(similarity, axis=1)
        self._count("median_cosine_similarities")
        norms = np.maximum(self.norms(), epsilon)
        out = np.empty(self.n_clients, dtype=np.float64)
        step = int(block_rows if block_rows is not None else self.block_rows)
        if step < 1:
            raise ValueError(f"block_rows must be >= 1, got {step}")
        for start in range(0, self.n_clients, step):
            rows = np.arange(start, min(start + step, self.n_clients))
            tile = self._row_block(rows) @ self.matrix.T
            # Divide in the matrix dtype first (like the dense path), then
            # widen — float32 inputs otherwise see a differently-rounded
            # similarity and the per-row median can pick another element.
            tile /= norms[rows][:, None]
            tile /= norms[None, :]
            tile = tile.astype(np.float64, copy=False)
            tile[np.arange(rows.size), rows] = np.nan
            out[rows] = np.nanmedian(tile, axis=1)
        return out

    def median_distances(
        self, *, block_rows: Optional[int] = None
    ) -> np.ndarray:
        """Per row: the median Euclidean distance to all *other* rows.

        The pairwise-median fallback of SignGuard's distance feature
        (:func:`repro.core.features.euclidean_distance_feature`); the
        caller applies its own normalization.
        """
        if self.dense_pairwise_allowed:
            pairwise = np.array(self.distances(), dtype=np.float64)
            np.fill_diagonal(pairwise, np.nan)
            return np.nanmedian(pairwise, axis=1)
        self._count("median_distances")
        out = np.empty(self.n_clients, dtype=np.float64)
        for rows, tile in self.iter_sq_distance_blocks(block_rows=block_rows):
            tile = np.sqrt(tile, out=tile).astype(np.float64, copy=False)
            tile[np.arange(rows.size), rows] = np.nan
            out[rows] = np.nanmedian(tile, axis=1)
        return out

    def max_pairwise_sq_distance(
        self, *, block_rows: Optional[int] = None
    ) -> float:
        """Maximum squared distance between any two rows (Min-Max stealth bound)."""
        if self.dense_pairwise_allowed:
            return float(self.sq_distances().max())
        best = 0.0
        for _, tile in self.iter_sq_distance_blocks(block_rows=block_rows):
            best = max(best, float(tile.max()))
        return best

    def max_sum_sq_distance(
        self, *, block_rows: Optional[int] = None
    ) -> float:
        """Maximum over rows of the summed squared distances to all other
        rows (Min-Sum stealth bound)."""
        if self.dense_pairwise_allowed:
            return float(self.sq_distances().sum(axis=1).max())
        best = 0.0
        for _, tile in self.iter_sq_distance_blocks(block_rows=block_rows):
            best = max(best, float(tile.sum(axis=1).max()))
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def compute_count(self, name: str) -> int:
        """How many times the named quantity was actually computed (0 or 1)."""
        return self.compute_counts.get(name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        cached = sorted(self.compute_counts)
        return (
            f"GradientBatch(n_clients={self.n_clients}, dim={self.dim}, "
            f"dtype={self.matrix.dtype.name}, cached={cached})"
        )


def as_batch(gradients: ArrayOrBatch) -> GradientBatch:
    """Module-level alias for :meth:`GradientBatch.wrap` (validating)."""
    return GradientBatch.wrap(gradients)


def resolve_batch(
    gradients: np.ndarray, context: Optional[object] = None
) -> GradientBatch:
    """Return the context's batch when it wraps exactly this matrix.

    Aggregators receive ``(gradients, context)`` where ``context.batch`` is
    populated by :meth:`repro.aggregators.base.Aggregator.__call__`.  When an
    aggregator's ``aggregate`` is invoked directly with a raw array (or with a
    sub-matrix, as Bulyan does internally), the context batch would be stale —
    the identity check guards against using cached quantities of the wrong
    matrix.
    """
    batch = getattr(context, "batch", None)
    if isinstance(batch, GradientBatch) and batch.matrix is gradients:
        return batch
    return GradientBatch.wrap(gradients)
