"""The round-level gradient workspace: one matrix, many memoized views.

Every federated round touches the same stacked ``(n_clients, dim)`` gradient
matrix from several angles — the norm filter needs L2 norms, Krum/Bulyan/DnC
and the pairwise-fallback features need a Gram or distance matrix, the sign
filter needs sign counts, and the final clipped mean needs the norms again.
Before this module existed each consumer recomputed its quantity from
scratch, so a single SignGuard round validated the matrix up to six times and
ran three separate full norm passes.

:class:`GradientBatch` wraps the validated matrix once and memoizes every
derived quantity lazily.  It is threaded through
:class:`repro.aggregators.base.ServerContext` so the whole round shares one
cache; all public entry points still accept a raw ``np.ndarray`` and wrap it
on the fly (:meth:`GradientBatch.wrap` is idempotent).

The pairwise quantities intentionally mirror the pre-cache implementations
exactly (``np.sum(g**2, axis=1)`` for squared norms, the expanded quadratic
form for pairwise distances) so cached scoring paths stay bit-compatible
with the historical ones; row norms use a faster temp-free ``einsum`` that
agrees with ``np.linalg.norm`` to within a few ulps.

This module lives in ``repro.utils`` so that both ``repro.core`` and
``repro.aggregators`` can import it without creating a package cycle.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.utils.validation import check_gradient_matrix

ArrayOrBatch = Union[np.ndarray, "GradientBatch"]

#: dtypes the cache keeps as-is; everything else is coerced to float64.
_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


class GradientBatch:
    """Per-round cache of derived quantities over a stacked gradient matrix.

    Attributes:
        matrix: the validated ``(n_clients, dim)`` gradient matrix.  Treated
            as read-only by every cached consumer; mutating it after derived
            quantities have been computed leaves the cache stale.

    Every derived quantity is computed at most once; ``compute_counts``
    records how many times each one was *actually* computed, which the perf
    smoke test uses to prove that optimized code paths never silently fall
    back to naive recomputation.
    """

    __slots__ = (
        "matrix",
        "_norms",
        "_sq_norms",
        "_gram",
        "_sq_distances",
        "_distances",
        "_sign_counts",
        "compute_counts",
    )

    def __init__(self, gradients: np.ndarray, *, validate: bool = True):
        if validate:
            matrix = check_gradient_matrix(gradients, preserve_dtype=True)
        else:
            matrix = np.atleast_2d(np.asarray(gradients))
            if matrix.dtype not in _FLOAT_DTYPES:
                matrix = matrix.astype(np.float64)
        self.matrix = matrix
        self._norms: Optional[np.ndarray] = None
        self._sq_norms: Optional[np.ndarray] = None
        self._gram: Optional[np.ndarray] = None
        self._sq_distances: Optional[np.ndarray] = None
        self._distances: Optional[np.ndarray] = None
        self._sign_counts: Dict[float, np.ndarray] = {}
        self.compute_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def wrap(cls, gradients: ArrayOrBatch, *, validate: bool = True) -> "GradientBatch":
        """Wrap ``gradients`` in a batch; a batch passes through unchanged."""
        if isinstance(gradients, GradientBatch):
            return gradients
        return cls(gradients, validate=validate)

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------

    @property
    def n_clients(self) -> int:
        return self.matrix.shape[0]

    @property
    def dim(self) -> int:
        return self.matrix.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    def __len__(self) -> int:
        return self.n_clients

    def __array__(self, dtype=None) -> np.ndarray:
        return self.matrix if dtype is None else self.matrix.astype(dtype)

    def _count(self, name: str) -> None:
        self.compute_counts[name] = self.compute_counts.get(name, 0) + 1

    # ------------------------------------------------------------------
    # Memoized derived quantities
    # ------------------------------------------------------------------

    def norms(self) -> np.ndarray:
        """L2 norm of every row.

        Computed as ``sqrt(einsum('ij,ij->i'))``, which avoids the
        ``(n, dim)`` squared temporary that ``np.linalg.norm`` materializes —
        on a 100×100k matrix this is ~4× faster.  Values agree with
        ``np.linalg.norm`` to within a few ulps (summation order differs).
        """
        if self._norms is None:
            self._count("norms")
            self._norms = np.sqrt(np.einsum("ij,ij->i", self.matrix, self.matrix))
        return self._norms

    def median_norm(self) -> float:
        """Median row norm — SignGuard's reference norm ``M``."""
        return float(np.median(self.norms()))

    def sq_norms(self) -> np.ndarray:
        """Squared L2 norm of every row (``np.sum(g**2, axis=1)`` semantics)."""
        if self._sq_norms is None:
            self._count("sq_norms")
            self._sq_norms = np.sum(self.matrix**2, axis=1)
        return self._sq_norms

    def gram(self) -> np.ndarray:
        """The ``(n, n)`` Gram matrix ``G @ G.T``."""
        if self._gram is None:
            self._count("gram")
            self._gram = self.matrix @ self.matrix.T
        return self._gram

    def sq_distances(self) -> np.ndarray:
        """Pairwise squared Euclidean distances between rows.

        Computed from the Gram matrix via the expanded quadratic form and
        clamped at zero, exactly like the historical per-consumer
        implementations.  The diagonal is exactly zero.  Callers must treat
        the returned matrix as read-only.
        """
        if self._sq_distances is None:
            self._count("sq_distances")
            sq_norms = self.sq_norms()
            squared = sq_norms[:, None] + sq_norms[None, :] - 2.0 * self.gram()
            np.maximum(squared, 0.0, out=squared)
            np.fill_diagonal(squared, 0.0)
            self._sq_distances = squared
        return self._sq_distances

    def distances(self) -> np.ndarray:
        """Pairwise Euclidean distances between rows (read-only)."""
        if self._distances is None:
            self._count("distances")
            self._distances = np.sqrt(self.sq_distances())
        return self._distances

    def cosine_similarities(self, *, epsilon: float = 1e-12) -> np.ndarray:
        """Pairwise cosine similarities computed from the cached Gram matrix.

        Norms are clamped at ``epsilon`` (not at the float64 ``tiny``, whose
        square underflows to zero): an all-zero gradient row then gets
        similarity ``0 / epsilon² = 0`` everywhere, matching the historical
        normalize-then-multiply implementation.
        """
        norms = np.maximum(self.norms(), epsilon)
        return self.gram() / (norms[:, None] * norms[None, :])

    def sign_counts(self, zero_tolerance: float = 0.0) -> np.ndarray:
        """Per-row (positive, zero, negative) element counts over all coordinates.

        Cached per ``zero_tolerance`` value; used by
        :func:`repro.core.features.sign_statistics` when no coordinate subset
        is requested.
        """
        key = float(zero_tolerance)
        if key not in self._sign_counts:
            self._count("sign_counts")
            positive = (self.matrix > key).sum(axis=1)
            negative = (self.matrix < -key).sum(axis=1)
            zero = self.dim - positive - negative
            self._sign_counts[key] = np.column_stack([positive, zero, negative])
        return self._sign_counts[key]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def compute_count(self, name: str) -> int:
        """How many times the named quantity was actually computed (0 or 1)."""
        return self.compute_counts.get(name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        cached = sorted(self.compute_counts)
        return (
            f"GradientBatch(n_clients={self.n_clients}, dim={self.dim}, "
            f"dtype={self.matrix.dtype.name}, cached={cached})"
        )


def as_batch(gradients: ArrayOrBatch) -> GradientBatch:
    """Module-level alias for :meth:`GradientBatch.wrap` (validating)."""
    return GradientBatch.wrap(gradients)


def resolve_batch(
    gradients: np.ndarray, context: Optional[object] = None
) -> GradientBatch:
    """Return the context's batch when it wraps exactly this matrix.

    Aggregators receive ``(gradients, context)`` where ``context.batch`` is
    populated by :meth:`repro.aggregators.base.Aggregator.__call__`.  When an
    aggregator's ``aggregate`` is invoked directly with a raw array (or with a
    sub-matrix, as Bulyan does internally), the context batch would be stale —
    the identity check guards against using cached quantities of the wrong
    matrix.
    """
    batch = getattr(context, "batch", None)
    if isinstance(batch, GradientBatch) and batch.matrix is gradients:
        return batch
    return GradientBatch.wrap(gradients)
