"""A minimal name → factory registry.

Attacks, aggregation rules, models, and datasets all register themselves by
name so that experiments can be described with plain strings (e.g. in the
benchmark harness or in JSON configs) and instantiated uniformly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional


class Registry:
    """Case-insensitive registry mapping names to factories.

    >>> registry = Registry("aggregators")
    >>> @registry.register("mean")
    ... class Mean:
    ...     pass
    >>> registry.create("Mean") is not None
    True
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}

    @staticmethod
    def _normalize(name: str) -> str:
        return name.strip().lower().replace("-", "_").replace(" ", "_")

    def register(
        self, name: str, factory: Optional[Callable[..., Any]] = None
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``name``.

        Usable as a decorator (``@registry.register("foo")``) or a plain call
        (``registry.register("foo", factory)``).
        """

        def _register(target: Callable[..., Any]) -> Callable[..., Any]:
            key = self._normalize(name)
            if key in self._factories:
                raise KeyError(
                    f"{self.kind} registry already contains an entry for {name!r}"
                )
            self._factories[key] = target
            return target

        if factory is not None:
            return _register(factory)
        return _register

    def register_alias(self, alias: str, name: str) -> None:
        """Register ``alias`` as another name for an existing entry."""
        key = self._normalize(name)
        if key not in self._factories:
            raise KeyError(f"unknown {self.kind} {name!r}")
        alias_key = self._normalize(alias)
        if alias_key in self._factories:
            raise KeyError(
                f"{self.kind} registry already contains an entry for {alias!r}"
            )
        self._factories[alias_key] = self._factories[key]

    def get(self, name: str) -> Callable[..., Any]:
        """Return the factory registered under ``name``."""
        key = self._normalize(name)
        if key not in self._factories:
            known = ", ".join(sorted(self._factories))
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}")
        return self._factories[key]

    def create(self, name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the factory registered under ``name``."""
        return self.get(name)(*args, **kwargs)

    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Registry(kind={self.kind!r}, entries={self.names()})"
