"""Run recording: per-round metrics collected during a federated simulation.

The recorder is intentionally simple — a list of :class:`RoundRecord` plus a
few summary helpers (best accuracy, attack impact, selection rates) that map
directly onto the quantities reported in the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class RoundRecord:
    """Metrics from a single federated round.

    Selection counts are *cohort-scoped* under partial participation:
    ``benign_total``/``byzantine_total`` count the clients whose gradients
    reached the server this round (so ``byzantine_total`` is the sampled
    Byzantine count), while ``selected_clients`` and ``cohort_clients``
    hold *global* client ids.  ``cohort_clients`` is empty when the cohort
    is the whole population (the ids would be ``range(cohort_size)``).
    """

    round_index: int
    train_loss: float
    test_accuracy: Optional[float] = None
    test_loss: Optional[float] = None
    selected_clients: Sequence[int] = field(default_factory=tuple)
    benign_selected: int = 0
    benign_total: int = 0
    byzantine_selected: int = 0
    byzantine_total: int = 0
    attack_name: str = ""
    cohort_size: int = 0
    num_dropped: int = 0
    num_stragglers: int = 0
    cohort_clients: Sequence[int] = field(default_factory=tuple)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_reporting(self) -> int:
        """Clients whose gradients reached the server in time this round."""
        return self.benign_total + self.byzantine_total

    @property
    def benign_selection_rate(self) -> float:
        """Fraction of benign gradients kept by the defense this round."""
        if self.benign_total == 0:
            return float("nan")
        return self.benign_selected / self.benign_total

    @property
    def byzantine_selection_rate(self) -> float:
        """Fraction of malicious gradients kept by the defense this round."""
        if self.byzantine_total == 0:
            return float("nan")
        return self.byzantine_selected / self.byzantine_total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round_index": self.round_index,
            "train_loss": self.train_loss,
            "test_accuracy": self.test_accuracy,
            "test_loss": self.test_loss,
            "selected_clients": list(self.selected_clients),
            "benign_selected": self.benign_selected,
            "benign_total": self.benign_total,
            "byzantine_selected": self.byzantine_selected,
            "byzantine_total": self.byzantine_total,
            "attack_name": self.attack_name,
            "cohort_size": self.cohort_size,
            "num_dropped": self.num_dropped,
            "num_stragglers": self.num_stragglers,
            "cohort_clients": list(self.cohort_clients),
            "extra": dict(self.extra),
        }


class RunRecorder:
    """Accumulates :class:`RoundRecord` objects for one experiment run."""

    def __init__(self, description: str = ""):
        self.description = description
        self.rounds: List[RoundRecord] = []
        self.metadata: Dict[str, Any] = {}

    def add(self, record: RoundRecord) -> None:
        """Append a round record."""
        self.rounds.append(record)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    @property
    def accuracies(self) -> List[float]:
        """Test accuracies for every evaluated round, in order."""
        return [r.test_accuracy for r in self.rounds if r.test_accuracy is not None]

    @property
    def losses(self) -> List[float]:
        """Training losses for every round, in order."""
        return [r.train_loss for r in self.rounds]

    def best_accuracy(self) -> float:
        """Best test accuracy achieved during the run (the paper's Table I metric)."""
        accs = self.accuracies
        if not accs:
            return float("nan")
        return float(max(accs))

    def final_accuracy(self) -> float:
        """Test accuracy at the final evaluated round."""
        accs = self.accuracies
        if not accs:
            return float("nan")
        return float(accs[-1])

    def mean_benign_selection_rate(self) -> float:
        """Average fraction of honest gradients kept (Table II "H" column)."""
        rates = [r.benign_selection_rate for r in self.rounds if r.benign_total > 0]
        if not rates:
            return float("nan")
        return float(np.mean(rates))

    def mean_byzantine_selection_rate(self) -> float:
        """Average fraction of malicious gradients kept (Table II "M" column)."""
        rates = [
            r.byzantine_selection_rate for r in self.rounds if r.byzantine_total > 0
        ]
        if not rates:
            return float("nan")
        return float(np.mean(rates))

    def mean_cohort_size(self) -> float:
        """Average sampled cohort size per round (partial-participation runs)."""
        sizes = [r.cohort_size for r in self.rounds if r.cohort_size > 0]
        if not sizes:
            return float("nan")
        return float(np.mean(sizes))

    def total_dropouts(self) -> int:
        """Total simulated client dropouts across the run."""
        return int(sum(r.num_dropped for r in self.rounds))

    def total_stragglers(self) -> int:
        """Total simulated stragglers (computed but missed deadline)."""
        return int(sum(r.num_stragglers for r in self.rounds))

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the whole run (for EXPERIMENTS.md bookkeeping)."""
        return {
            "description": self.description,
            "metadata": dict(self.metadata),
            "rounds": [r.to_dict() for r in self.rounds],
            "best_accuracy": self.best_accuracy(),
            "final_accuracy": self.final_accuracy(),
        }

    def summary(self) -> str:
        """One-line summary used by example scripts and bench output."""
        return (
            f"{self.description}: rounds={len(self.rounds)} "
            f"best_acc={self.best_accuracy():.4f} final_acc={self.final_accuracy():.4f}"
        )
