"""Run recording: per-round metrics collected during a federated simulation.

The recorder is intentionally simple — a list of :class:`RoundRecord` plus a
few summary helpers (best accuracy, attack impact, selection rates) that map
directly onto the quantities reported in the paper's tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class RoundRecord:
    """Metrics from a single federated round.

    Selection counts are *cohort-scoped* under partial participation:
    ``benign_total``/``byzantine_total`` count the clients whose gradients
    reached the server this round (so ``byzantine_total`` is the sampled
    Byzantine count), while ``selected_clients`` and ``cohort_clients``
    hold *global* client ids.  ``cohort_clients`` is empty when the cohort
    is the whole population (the ids would be ``range(cohort_size)``).
    """

    round_index: int
    train_loss: float
    test_accuracy: Optional[float] = None
    test_loss: Optional[float] = None
    selected_clients: Sequence[int] = field(default_factory=tuple)
    benign_selected: int = 0
    benign_total: int = 0
    byzantine_selected: int = 0
    byzantine_total: int = 0
    attack_name: str = ""
    cohort_size: int = 0
    num_dropped: int = 0
    num_stragglers: int = 0
    cohort_clients: Sequence[int] = field(default_factory=tuple)
    #: Clients whose shard was recomputed on surviving workers after their
    #: own worker failed mid-round (distributed collect re-dispatch).
    num_redispatched: int = 0
    #: Successful worker reconnects during this round's collect.
    num_reconnects: int = 0
    #: Whole-round retries taken under ``on_quorum_loss="retry"``.
    num_retries: int = 0
    #: False when the round finished below ``min_cohort_fraction`` and the
    #: ``accept`` policy recorded it anyway.
    quorum_met: bool = True
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_reporting(self) -> int:
        """Clients whose gradients reached the server in time this round."""
        return self.benign_total + self.byzantine_total

    @property
    def benign_selection_rate(self) -> float:
        """Fraction of benign gradients kept by the defense this round."""
        if self.benign_total == 0:
            return float("nan")
        return self.benign_selected / self.benign_total

    @property
    def byzantine_selection_rate(self) -> float:
        """Fraction of malicious gradients kept by the defense this round."""
        if self.byzantine_total == 0:
            return float("nan")
        return self.byzantine_selected / self.byzantine_total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "round_index": self.round_index,
            "train_loss": self.train_loss,
            "test_accuracy": self.test_accuracy,
            "test_loss": self.test_loss,
            "selected_clients": list(self.selected_clients),
            "benign_selected": self.benign_selected,
            "benign_total": self.benign_total,
            "byzantine_selected": self.byzantine_selected,
            "byzantine_total": self.byzantine_total,
            "attack_name": self.attack_name,
            "cohort_size": self.cohort_size,
            "num_dropped": self.num_dropped,
            "num_stragglers": self.num_stragglers,
            "cohort_clients": list(self.cohort_clients),
            "num_redispatched": self.num_redispatched,
            "num_reconnects": self.num_reconnects,
            "num_retries": self.num_retries,
            "quorum_met": self.quorum_met,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RoundRecord":
        """Reconstruct a record from :meth:`to_dict` output.

        Tolerates payloads from older records (missing keys get their
        defaults) — checkpoint files must stay readable across versions
        that only *add* fields.
        """
        record = cls(
            round_index=int(payload["round_index"]),
            train_loss=float(payload["train_loss"]),
        )
        for key in (
            "test_accuracy",
            "test_loss",
            "benign_selected",
            "benign_total",
            "byzantine_selected",
            "byzantine_total",
            "attack_name",
            "cohort_size",
            "num_dropped",
            "num_stragglers",
            "num_redispatched",
            "num_reconnects",
            "num_retries",
            "quorum_met",
        ):
            if key in payload:
                setattr(record, key, payload[key])
        record.selected_clients = tuple(payload.get("selected_clients", ()))
        record.cohort_clients = tuple(payload.get("cohort_clients", ()))
        record.extra = dict(payload.get("extra", {}))
        return record


class RunRecorder:
    """Accumulates :class:`RoundRecord` objects for one experiment run."""

    def __init__(self, description: str = ""):
        self.description = description
        self.rounds: List[RoundRecord] = []
        self.metadata: Dict[str, Any] = {}

    def add(self, record: RoundRecord) -> None:
        """Append a round record."""
        self.rounds.append(record)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    @property
    def accuracies(self) -> List[float]:
        """Test accuracies for every evaluated round, in order."""
        return [r.test_accuracy for r in self.rounds if r.test_accuracy is not None]

    @property
    def losses(self) -> List[float]:
        """Training losses for every round, in order."""
        return [r.train_loss for r in self.rounds]

    def best_accuracy(self) -> float:
        """Best test accuracy achieved during the run (the paper's Table I metric)."""
        accs = self.accuracies
        if not accs:
            return float("nan")
        return float(max(accs))

    def final_accuracy(self) -> float:
        """Test accuracy at the final evaluated round."""
        accs = self.accuracies
        if not accs:
            return float("nan")
        return float(accs[-1])

    def mean_benign_selection_rate(self) -> float:
        """Average fraction of honest gradients kept (Table II "H" column)."""
        rates = [r.benign_selection_rate for r in self.rounds if r.benign_total > 0]
        if not rates:
            return float("nan")
        return float(np.mean(rates))

    def mean_byzantine_selection_rate(self) -> float:
        """Average fraction of malicious gradients kept (Table II "M" column)."""
        rates = [
            r.byzantine_selection_rate for r in self.rounds if r.byzantine_total > 0
        ]
        if not rates:
            return float("nan")
        return float(np.mean(rates))

    def mean_cohort_size(self) -> float:
        """Average sampled cohort size per round (partial-participation runs)."""
        sizes = [r.cohort_size for r in self.rounds if r.cohort_size > 0]
        if not sizes:
            return float("nan")
        return float(np.mean(sizes))

    def total_dropouts(self) -> int:
        """Total simulated client dropouts across the run."""
        return int(sum(r.num_dropped for r in self.rounds))

    def total_stragglers(self) -> int:
        """Total simulated stragglers (computed but missed deadline)."""
        return int(sum(r.num_stragglers for r in self.rounds))

    def total_redispatched(self) -> int:
        """Total client shards recovered by re-dispatch across the run."""
        return int(sum(r.num_redispatched for r in self.rounds))

    def total_reconnects(self) -> int:
        """Total successful worker reconnects across the run."""
        return int(sum(r.num_reconnects for r in self.rounds))

    def total_retries(self) -> int:
        """Total quorum-policy round retries across the run."""
        return int(sum(r.num_retries for r in self.rounds))

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the whole run (for EXPERIMENTS.md bookkeeping)."""
        return {
            "description": self.description,
            "metadata": dict(self.metadata),
            "rounds": [r.to_dict() for r in self.rounds],
            "best_accuracy": self.best_accuracy(),
            "final_accuracy": self.final_accuracy(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecorder":
        """Reconstruct a recorder from :meth:`to_dict` output.

        This is how checkpoint resume rebuilds the run history; the
        derived summary fields in the payload are recomputed, not trusted.
        """
        recorder = cls(description=payload.get("description", ""))
        recorder.metadata = dict(payload.get("metadata", {}))
        recorder.rounds = [
            RoundRecord.from_dict(entry) for entry in payload.get("rounds", [])
        ]
        return recorder

    def summary(self) -> str:
        """One-line summary used by example scripts and bench output."""
        return (
            f"{self.description}: rounds={len(self.rounds)} "
            f"best_acc={self.best_accuracy():.4f} final_acc={self.final_accuracy():.4f}"
        )
