"""Shared utilities: RNG management, registries, configuration, recording.

The utilities in this package are deliberately small and dependency-free so
that every other subsystem (clustering, neural networks, federated
simulation) can build on them without import cycles.
"""

from repro.utils.batch import (
    MAX_DENSE_PAIRWISE,
    GradientBatch,
    PairwiseMemoryError,
    as_batch,
    resolve_batch,
)
from repro.utils.config import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
)
from repro.utils.registry import Registry
from repro.utils.rng import RngFactory, as_rng, spawn_rngs
from repro.utils.recording import RoundRecord, RunRecorder
from repro.utils.serialization import load_json, save_json
from repro.utils.validation import (
    check_fraction,
    check_gradient_matrix,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "MAX_DENSE_PAIRWISE",
    "GradientBatch",
    "PairwiseMemoryError",
    "as_batch",
    "resolve_batch",
    "AttackConfig",
    "DataConfig",
    "DefenseConfig",
    "ExperimentConfig",
    "TrainingConfig",
    "Registry",
    "RngFactory",
    "as_rng",
    "spawn_rngs",
    "RoundRecord",
    "RunRecorder",
    "load_json",
    "save_json",
    "check_fraction",
    "check_gradient_matrix",
    "check_positive",
    "check_probability_vector",
]
