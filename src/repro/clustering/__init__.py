"""From-scratch clustering algorithms used by SignGuard's filtering stage.

The paper uses Mean-Shift (with an adaptive number of clusters) over
low-dimensional gradient features, falling back to K-Means with two clusters
when all malicious clients send identical vectors.  scikit-learn is not
available in this environment, so the algorithms are implemented here on top
of numpy.  They are deliberately written for small inputs (tens of points,
a handful of dimensions) — exactly the regime of the server-side filter.
"""

from repro.clustering.kmeans import KMeans, kmeans_plus_plus_init
from repro.clustering.meanshift import (
    GridNeighborhood,
    MeanShift,
    estimate_bandwidth,
    get_bin_seeds,
)
from repro.clustering.dbscan import DBSCAN
from repro.clustering.agglomerative import AgglomerativeClustering
from repro.clustering.metrics import (
    davies_bouldin_score,
    pairwise_distances,
    silhouette_score,
)

__all__ = [
    "KMeans",
    "kmeans_plus_plus_init",
    "MeanShift",
    "GridNeighborhood",
    "estimate_bandwidth",
    "get_bin_seeds",
    "DBSCAN",
    "AgglomerativeClustering",
    "silhouette_score",
    "davies_bouldin_score",
    "pairwise_distances",
]
