"""Bottom-up agglomerative clustering (single / complete / average linkage).

Used in tests as an independent reference clustering and available as an
alternative backend for the sign-based filter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.metrics import pairwise_distances

_LINKAGES = ("single", "complete", "average")


class AgglomerativeClustering:
    """Hierarchical clustering cut at ``n_clusters`` clusters.

    Attributes set by :meth:`fit`:
        labels_: cluster index per sample (relabelled to 0..k-1).
    """

    def __init__(self, n_clusters: int = 2, *, linkage: str = "average"):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.labels_: Optional[np.ndarray] = None

    def _merge_distance(
        self, d_ab: float, d_cb: float, size_a: int, size_c: int
    ) -> float:
        if self.linkage == "single":
            return min(d_ab, d_cb)
        if self.linkage == "complete":
            return max(d_ab, d_cb)
        return (size_a * d_ab + size_c * d_cb) / (size_a + size_c)

    def fit(self, x: np.ndarray) -> "AgglomerativeClustering":
        """Cluster the rows of ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        n_samples = len(x)
        if n_samples < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} samples, got {n_samples}"
            )
        distances = pairwise_distances(x)
        np.fill_diagonal(distances, np.inf)
        active = list(range(n_samples))
        members = {i: [i] for i in range(n_samples)}
        dist = distances.copy()
        while len(active) > self.n_clusters:
            # Find the closest pair among active clusters.
            best_pair = None
            best_distance = np.inf
            for ia, a in enumerate(active):
                for b in active[ia + 1 :]:
                    if dist[a, b] < best_distance:
                        best_distance = dist[a, b]
                        best_pair = (a, b)
            a, b = best_pair
            # Merge b into a using the configured linkage.
            for c in active:
                if c in (a, b):
                    continue
                merged = self._merge_distance(
                    dist[a, c], dist[b, c], len(members[a]), len(members[b])
                )
                dist[a, c] = dist[c, a] = merged
            members[a].extend(members[b])
            del members[b]
            active.remove(b)
        labels = np.empty(n_samples, dtype=int)
        for new_label, cluster in enumerate(sorted(members)):
            labels[members[cluster]] = new_label
        self.labels_ = labels
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit and return the cluster label of every sample."""
        return self.fit(x).labels_
