"""K-Means clustering with k-means++ initialization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, as_rng


def kmeans_plus_plus_init(
    x: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Pick ``n_clusters`` initial centroids with the k-means++ heuristic."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n_samples = len(x)
    if n_clusters > n_samples:
        raise ValueError(
            f"n_clusters={n_clusters} exceeds the number of samples {n_samples}"
        )
    centroids = np.empty((n_clusters, x.shape[1]), dtype=np.float64)
    first = int(rng.integers(n_samples))
    centroids[0] = x[first]
    closest_sq = np.sum((x - centroids[0]) ** 2, axis=1)
    for k in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            centroids[k:] = x[int(rng.integers(n_samples))]
            break
        probabilities = closest_sq / total
        chosen = int(rng.choice(n_samples, p=probabilities))
        centroids[k] = x[chosen]
        new_sq = np.sum((x - centroids[k]) ** 2, axis=1)
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centroids


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and multiple restarts.

    Attributes set by :meth:`fit`:
        cluster_centers_: array of shape ``(n_clusters, dim)``.
        labels_: cluster index per sample.
        inertia_: within-cluster sum of squared distances.
        n_iter_: iterations run by the best restart.
    """

    def __init__(
        self,
        n_clusters: int = 2,
        *,
        n_init: int = 5,
        max_iter: int = 100,
        tol: float = 1e-6,
        rng: RngLike = None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self._rng = as_rng(rng)
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0

    def _single_run(self, x: np.ndarray) -> tuple:
        centroids = kmeans_plus_plus_init(x, self.n_clusters, self._rng)
        labels = np.zeros(len(x), dtype=int)
        inertia = np.inf
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            distances = np.linalg.norm(x[:, None, :] - centroids[None, :, :], axis=2)
            labels = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            for k in range(self.n_clusters):
                members = x[labels == k]
                if len(members) > 0:
                    new_centroids[k] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centroids - centroids))
            centroids = new_centroids
            inertia = float(np.sum((x - centroids[labels]) ** 2))
            if shift <= self.tol:
                break
        return centroids, labels, inertia, iteration

    def fit(self, x: np.ndarray) -> "KMeans":
        """Cluster the rows of ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if len(x) < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} samples, got {len(x)}"
            )
        best = None
        for _ in range(self.n_init):
            centroids, labels, inertia, n_iter = self._single_run(x)
            if best is None or inertia < best[2]:
                best = (centroids, labels, inertia, n_iter)
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit and return the cluster label of every sample."""
        return self.fit(x).labels_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign each row of ``x`` to its nearest learned centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans must be fitted before calling predict")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        distances = np.linalg.norm(
            x[:, None, :] - self.cluster_centers_[None, :, :], axis=2
        )
        return np.argmin(distances, axis=1)
