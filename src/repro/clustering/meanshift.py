"""Mean-Shift clustering with a flat (uniform) kernel.

This is the clustering model used by SignGuard's sign-based filter: it does
not require the number of clusters in advance, which matches the defender's
ignorance of the exact number of malicious clients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clustering.metrics import pairwise_distances
from repro.utils.batch import MAX_DENSE_PAIRWISE
from repro.utils.rng import RngFactory, RngLike, as_rng

#: Default sampled-pair budget once the subsampling estimator engages:
#: 500k pairs keep the quantile estimate within ~1% of the dense one on
#: SignGuard feature distributions while costing O(max_pairs · d) instead
#: of O(n² · d).
BANDWIDTH_MAX_PAIRS = 500_000

#: Seed of the default deterministic subsampling stream.  The default rng
#: is a named :class:`~repro.utils.rng.RngFactory` stream re-created per
#: call, so two estimates over the same data always agree — determinism
#: does not depend on the caller threading an rng through.
_BANDWIDTH_SEED = 0x51B5


def estimate_bandwidth(
    x: np.ndarray,
    *,
    quantile: float = 0.3,
    distances: Optional[np.ndarray] = None,
    max_pairs: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Estimate a kernel bandwidth from the pairwise-distance distribution.

    The bandwidth is the ``quantile``-th quantile of all pairwise distances,
    the standard heuristic for Mean-Shift on small feature sets.  A strictly
    positive floor avoids a degenerate zero bandwidth when many points
    coincide (e.g. identical malicious feature vectors).

    **Large cohorts.** The exact quantile is O(n²) time *and* memory.  When
    the pair count exceeds ``max_pairs`` the estimator switches to the
    quantile over the pairwise distances of a uniformly sampled row subset
    sized so at most ``max_pairs`` distances are evaluated — subquadratic
    and deterministic: the default ``rng`` is a fixed named
    :class:`~repro.utils.rng.RngFactory` stream, so repeated estimates
    over the same data are bit-identical.  With
    ``max_pairs=None`` the sampler auto-engages above
    :data:`~repro.utils.batch.MAX_DENSE_PAIRWISE` rows (with the
    :data:`BANDWIDTH_MAX_PAIRS` budget); at or below the threshold the
    historical dense path runs unchanged.

    Args:
        distances: optional precomputed pairwise distance matrix of ``x``
            (:meth:`MeanShift.fit` passes the matrix it needs anyway, so the
            distances are computed exactly once per fit).  Disables
            subsampling — the O(n²) cost is already paid.
        max_pairs: cap on evaluated pairs before the sampler engages.
            ``None`` = auto (dense up to ``MAX_DENSE_PAIRWISE`` rows).
        rng: randomness for the pair sampling; ``None`` = the deterministic
            default stream.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    if max_pairs is not None and max_pairs < 1:
        raise ValueError(f"max_pairs must be >= 1, got {max_pairs}")
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n = len(x)
    if n < 2:
        return 1.0
    all_pairs = n * (n - 1) // 2
    if distances is None:
        budget = max_pairs
        if budget is None and n > MAX_DENSE_PAIRWISE:
            budget = BANDWIDTH_MAX_PAIRS
        if budget is not None and all_pairs > budget:
            return _subsampled_bandwidth(x, quantile, budget, rng)
        distances = pairwise_distances(x)
    upper = distances[np.triu_indices(n, k=1)]
    bandwidth = float(np.quantile(upper, quantile))
    if bandwidth <= 0.0:
        positive = upper[upper > 0]
        bandwidth = float(positive.min()) if len(positive) else 1e-3
    return bandwidth


def _subsampled_bandwidth(
    x: np.ndarray, quantile: float, max_pairs: int, rng: RngLike
) -> float:
    """Quantile over the pairwise distances of a sampled row subset.

    The subset is the largest ``m`` rows with ``m * (m - 1) / 2 <=
    max_pairs`` (at least two), so at most ``max_pairs`` distances are
    evaluated — through the same BLAS pairwise kernel as the dense path.
    Sampling *rows* instead of index pairs is what keeps the estimator
    ahead of dense at realistic dimensionalities: per-pair gather loops
    are memory-bound and lose to a single matmul as ``d`` grows, while
    every pair inside a uniform subset is still a uniformly distributed
    distinct pair.
    """
    if rng is None:
        rng = RngFactory(_BANDWIDTH_SEED).make("bandwidth-subsample")
    else:
        rng = as_rng(rng)
    n = len(x)
    m = max(int((1.0 + np.sqrt(1.0 + 8.0 * max_pairs)) / 2.0), 2)
    m = min(m, n)
    rows = np.sort(rng.choice(n, size=m, replace=False))
    distances = pairwise_distances(x[rows])
    sampled = distances[np.triu_indices(m, k=1)]
    bandwidth = float(np.quantile(sampled, quantile))
    if bandwidth <= 0.0:
        positive = sampled[sampled > 0]
        bandwidth = float(positive.min()) if len(positive) else 1e-3
    return bandwidth


#: Above this feature dimensionality the grid neighborhood degenerates
#: (3**d neighbor cells) and :class:`MeanShift` falls back to dense
#: distance computations.
GRID_MAX_DIM = 8


class GridNeighborhood:
    """Floor-grid spatial index for fixed-radius range queries.

    Samples are hashed into axis-aligned cells of ``cell_size``.  Every
    point within ``cell_size`` of a query point lies in one of the
    ``3**d`` cells adjacent to (or equal to) the query's cell, so a range
    query of radius ``cell_size`` only has to consider those cells'
    members — the same grid idea :func:`get_bin_seeds` uses for seeding,
    applied to the per-iteration neighbourhood searches.  With Mean-Shift
    the radius is the bandwidth and occupied cells are few, so the
    per-iteration cost drops from ``O(n)`` distance evaluations per seed
    to the candidate count of its neighbourhood.

    Pruning is exact: candidates form a superset of the true in-radius
    neighbours, and the caller re-checks real distances, so grid and
    dense fits see identical neighbour sets (floating-point summation
    order may differ — results are partition-equivalent, not bit-equal).
    """

    def __init__(self, x: np.ndarray, cell_size: float):
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        self.x = x
        self.cell_size = float(cell_size)
        cells = self.cell_of(x)
        unique_cells, inverse = np.unique(cells, axis=0, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=len(unique_cells))
        self._members = np.split(order, np.cumsum(counts)[:-1])
        self._lookup = {
            tuple(int(c) for c in cell): index
            for index, cell in enumerate(unique_cells)
        }
        dims = x.shape[1]
        self._offsets = np.stack(
            np.meshgrid(*([[-1, 0, 1]] * dims), indexing="ij"), axis=-1
        ).reshape(-1, dims)

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates of each row of ``points``."""
        return np.floor(points / self.cell_size).astype(np.int64)

    def candidates(self, cell: np.ndarray) -> np.ndarray:
        """Sorted sample indices in the 3**d cells around ``cell``."""
        groups = []
        base = tuple(int(c) for c in cell)
        for offset in self._offsets:
            index = self._lookup.get(tuple(b + int(o) for b, o in zip(base, offset)))
            if index is not None:
                groups.append(self._members[index])
        if not groups:
            return np.empty(0, dtype=int)
        return np.sort(np.concatenate(groups))


def get_bin_seeds(
    x: np.ndarray, bin_size: float, min_bin_freq: int = 1
) -> np.ndarray:
    """Seed points for binned Mean-Shift: occupied grid cells of ``bin_size``.

    Every sample is snapped to the nearest vertex of a regular grid with
    spacing ``bin_size``; vertices holding at least ``min_bin_freq``
    samples become seeds (sklearn's ``bin_seeding`` heuristic).  Returns
    the original samples when binning would not reduce the seed count, so
    callers never lose coverage on spread-out data.
    """
    if bin_size <= 0:
        raise ValueError(f"bin_size must be positive, got {bin_size}")
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    binned = np.round(x / bin_size)
    # np.unique sorts lexicographically, making the seed order (and thus
    # every downstream tie-break) platform-deterministic.
    cells, counts = np.unique(binned, axis=0, return_counts=True)
    seeds = cells[counts >= min_bin_freq] * bin_size
    if len(seeds) == 0 or len(seeds) == len(x):
        return x.copy()
    return seeds


class MeanShift:
    """Flat-kernel Mean-Shift.

    Every sample is shifted to the mean of its neighbours within
    ``bandwidth`` until convergence; converged modes closer than the
    bandwidth are merged into a single cluster.

    Points that reach an exact fixed point (their shift moves them by
    exactly zero — with a flat kernel this happens as soon as a point sits
    at the mean of its stable neighbourhood) are frozen and excluded from
    further distance computations, so late iterations only pay for the few
    still-moving points.

    With ``bin_seeding=True`` the shift iterations start from the occupied
    cells of a ``bandwidth``-spaced grid (:func:`get_bin_seeds`) instead of
    from every sample — the sklearn accelerator.  The per-iteration cost
    drops from ``O(n²·d)`` to ``O(s·n·d)`` for ``s`` occupied cells, which
    is what makes the clustering stage scale past hundreds of clients: on
    SignGuard's low-dimensional, tightly-clustered sign-statistics
    features, ``s`` is a small constant.  Labels are then assigned by the
    nearest converged mode.  The discovered partition is equivalence-tested
    against the unbinned path on SignGuard feature distributions; exact
    cluster *numbering* may differ.

    With ``neighborhood="grid"`` the per-iteration range queries are pruned
    through a :class:`GridNeighborhood` over the samples (cell size = the
    bandwidth): each still-moving seed only measures distances to samples
    in its 3**d surrounding cells instead of to all ``n``.  The pruning is
    exact — the same neighbour sets are found — so the discovered partition
    matches the dense fit up to floating-point summation order
    (equivalence-tested on SignGuard feature distributions); this is the
    axis that scales the clustering stage past ~1k clients.  Features with
    more than :data:`GRID_MAX_DIM` dimensions silently fall back to dense
    computation (the neighbour-cell count grows as ``3**d``).  Orthogonal
    to ``bin_seeding`` — combine both for large cohorts.

    ``bandwidth_max_pairs`` caps the pairs the bandwidth heuristic
    evaluates (see :func:`estimate_bandwidth`); ``None`` keeps the exact
    dense quantile up to ``MAX_DENSE_PAIRWISE`` samples and deterministic
    seeded subsampling beyond, so the binned/grid configurations stay
    subquadratic end to end at 10k+ cohorts.

    Attributes set by :meth:`fit`:
        cluster_centers_: one row per discovered mode.
        labels_: cluster index per sample.
        n_clusters_: number of discovered clusters.
    """

    def __init__(
        self,
        bandwidth: Optional[float] = None,
        *,
        max_iter: int = 200,
        tol: float = 1e-5,
        quantile: float = 0.3,
        bin_seeding: bool = False,
        min_bin_freq: int = 1,
        neighborhood: str = "dense",
        bandwidth_max_pairs: Optional[int] = None,
    ):
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if min_bin_freq < 1:
            raise ValueError(f"min_bin_freq must be >= 1, got {min_bin_freq}")
        if neighborhood not in {"dense", "grid"}:
            raise ValueError(
                f"neighborhood must be 'dense' or 'grid', got {neighborhood!r}"
            )
        if bandwidth_max_pairs is not None and bandwidth_max_pairs < 1:
            raise ValueError(
                f"bandwidth_max_pairs must be >= 1, got {bandwidth_max_pairs}"
            )
        self.bandwidth = bandwidth
        self.max_iter = max_iter
        self.tol = tol
        self.quantile = quantile
        self.bin_seeding = bin_seeding
        self.min_bin_freq = min_bin_freq
        self.neighborhood = neighborhood
        self.bandwidth_max_pairs = bandwidth_max_pairs
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: int = 0

    def _grid_shift_once(
        self,
        points: np.ndarray,
        x: np.ndarray,
        bandwidth: float,
        grid: GridNeighborhood,
    ) -> np.ndarray:
        """One shift step for every row of ``points``, grid-pruned.

        Query points sharing a grid cell share their candidate set, so the
        distance computations are batched per occupied query cell.
        """
        shifted = points.copy()
        cells = grid.cell_of(points)
        unique_cells, inverse = np.unique(cells, axis=0, return_inverse=True)
        for index in range(len(unique_cells)):
            queries = np.flatnonzero(inverse == index)
            candidates = grid.candidates(unique_cells[index])
            if not len(candidates):
                continue  # empty neighbourhood: the seed stays in place
            distances = pairwise_distances(points[queries], x[candidates])
            weights = (distances <= bandwidth).astype(np.float64)
            counts = weights.sum(axis=1, keepdims=True)
            populated = counts[:, 0] > 0
            if populated.any():
                means = (weights @ x[candidates]) / np.maximum(counts, 1.0)
                shifted[queries[populated]] = means[populated]
        return shifted

    def _shift(
        self,
        seeds: np.ndarray,
        x: np.ndarray,
        bandwidth: float,
        first_distances: Optional[np.ndarray] = None,
        grid: Optional[GridNeighborhood] = None,
    ) -> np.ndarray:
        """Run the shift iterations from ``seeds`` over the samples ``x``.

        Returns the converged seed positions.  ``first_distances`` lets the
        caller reuse a seed-to-sample distance matrix it computed anyway
        (the bandwidth heuristic's).  Seeds whose neighbourhood is empty
        (possible for grid seeds in high dimensions) are left in place;
        they are discarded later because no sample labels to them before a
        populated mode does.  With ``grid`` given, every iteration's range
        queries go through the grid index instead of a dense
        seed-to-sample distance matrix.
        """
        points = seeds.copy()
        active = np.arange(len(points))
        for iteration in range(self.max_iter):
            if grid is not None:
                shifted = self._grid_shift_once(points[active], x, bandwidth, grid)
            else:
                if iteration == 0 and first_distances is not None:
                    distances = first_distances
                else:
                    distances = pairwise_distances(points[active], x)
                within = distances <= bandwidth
                weights = within.astype(np.float64)
                counts = weights.sum(axis=1, keepdims=True)
                populated = counts[:, 0] > 0
                shifted = np.where(
                    populated[:, None],
                    (weights @ x) / np.maximum(counts, 1.0),
                    points[active],
                )
            step = np.linalg.norm(shifted - points[active], axis=1)
            movement = float(step.max()) if len(step) else 0.0
            points[active] = shifted
            # A flat-kernel point whose shift is exactly zero sits at the
            # mean of a neighbourhood that can no longer change: freeze it.
            still_moving = step > 0.0
            if not still_moving.all():
                active = active[still_moving]
            if movement <= self.tol or len(active) == 0:
                break
        return points

    def fit(self, x: np.ndarray) -> "MeanShift":
        """Cluster the rows of ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        n_samples = len(x)
        if n_samples == 0:
            raise ValueError("cannot cluster an empty feature matrix")
        bandwidth = self.bandwidth
        use_grid = self.neighborhood == "grid" and x.shape[1] <= GRID_MAX_DIM
        if self.bin_seeding:
            if bandwidth is None:
                bandwidth = estimate_bandwidth(
                    x, quantile=self.quantile, max_pairs=self.bandwidth_max_pairs
                )
            return self._fit_binned(x, bandwidth, use_grid=use_grid)

        if use_grid:
            # Grid-pruned range queries: the bandwidth heuristic subsamples
            # pairs past its threshold, so no stage here is O(n²).
            if bandwidth is None:
                bandwidth = estimate_bandwidth(
                    x, quantile=self.quantile, max_pairs=self.bandwidth_max_pairs
                )
            grid = GridNeighborhood(x, bandwidth)
            points = self._shift(x, x, bandwidth, grid=grid)
            return self._merge_modes(x, points, bandwidth)

        # The seed matrix's self-distances serve both the bandwidth heuristic
        # and the first shift iteration — compute them once.
        seed_distances = pairwise_distances(x)
        if bandwidth is None:
            bandwidth = estimate_bandwidth(
                x, quantile=self.quantile, distances=seed_distances
            )

        # Shift every point towards the local mean until convergence.  Only
        # points that still move participate in the distance computation.
        # (Every point is within the bandwidth of itself, so neighbourhoods
        # are never empty on this path.)
        points = self._shift(x, x, bandwidth, first_distances=seed_distances)
        return self._merge_modes(x, points, bandwidth)

    def _merge_modes(
        self, x: np.ndarray, points: np.ndarray, bandwidth: float
    ) -> "MeanShift":
        """Merge converged per-sample points into clusters (shared tail)."""
        n_samples = len(x)

        # Merge modes that landed within one bandwidth of each other.  Each
        # point joins the earliest-created center within the bandwidth; a
        # point with no such center founds a new one.  The pairwise distances
        # between converged points are computed in one vectorized pass; the
        # sequential scan over rows only indexes into that matrix.
        mode_distances = pairwise_distances(points)
        labels = np.full(n_samples, -1, dtype=int)
        center_indices: list = []
        for i in range(n_samples):
            if center_indices:
                within_centers = np.flatnonzero(
                    mode_distances[i, center_indices] <= bandwidth
                )
                if len(within_centers):
                    labels[i] = int(within_centers[0])
                    continue
            labels[i] = len(center_indices)
            center_indices.append(i)

        # Refine centers as the mean of their member points (in input space).
        refined = np.vstack(
            [x[labels == k].mean(axis=0) for k in range(len(center_indices))]
        )
        self.cluster_centers_ = refined
        self.labels_ = labels
        self.n_clusters_ = len(center_indices)
        return self

    def _fit_binned(
        self, x: np.ndarray, bandwidth: float, *, use_grid: bool = False
    ) -> "MeanShift":
        """The ``bin_seeding=True`` path: shift grid seeds, label by mode."""
        seeds = get_bin_seeds(x, bandwidth, self.min_bin_freq)
        grid = GridNeighborhood(x, bandwidth) if use_grid else None
        points = self._shift(seeds, x, bandwidth, grid=grid)

        # Rank converged seeds by how many samples they attract so the
        # densest modes found clusters first (sklearn's merge order), then
        # merge seeds within one bandwidth of an earlier-ranked mode.
        intensity = (pairwise_distances(points, x) <= bandwidth).sum(axis=1)
        keep = intensity > 0  # grid seeds that never saw a sample
        points, intensity = points[keep], intensity[keep]
        if len(points) == 0:  # pragma: no cover - binned seeds of samples
            # can't all be empty with min_bin_freq=1; defensive single mode.
            points, intensity = x[:1].copy(), np.array([len(x)])
        order = np.argsort(-intensity, kind="stable")
        points = points[order]
        mode_distances = pairwise_distances(points)
        centers: list = []
        for i in range(len(points)):
            if not centers or not np.any(
                mode_distances[i, centers] <= bandwidth
            ):
                centers.append(i)
        modes = points[centers]

        # Every sample joins its nearest mode (ties -> lowest mode index).
        assignment = np.argmin(pairwise_distances(x, modes), axis=1)
        # Drop modes that attracted no samples and renumber densest-first.
        used, labels = np.unique(assignment, return_inverse=True)
        refined = np.vstack([x[labels == k].mean(axis=0) for k in range(len(used))])
        self.cluster_centers_ = refined
        self.labels_ = labels
        self.n_clusters_ = len(used)
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit and return the cluster label of every sample."""
        return self.fit(x).labels_

    def largest_cluster(self) -> np.ndarray:
        """Indices of samples in the most populated cluster.

        This is the "trusted set" selection rule from the SignGuard paper:
        the majority cluster is assumed to consist of honest gradients.
        Ties are broken towards the lowest cluster index for determinism.
        """
        if self.labels_ is None:
            raise RuntimeError("MeanShift must be fitted before use")
        counts = np.bincount(self.labels_, minlength=self.n_clusters_)
        winner = int(np.argmax(counts))
        return np.flatnonzero(self.labels_ == winner)
