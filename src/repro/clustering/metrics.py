"""Distance utilities and internal cluster-quality metrics."""

from __future__ import annotations

import numpy as np


def pairwise_distances(x: np.ndarray, y: np.ndarray = None) -> np.ndarray:
    """Euclidean distance matrix between rows of ``x`` and rows of ``y``.

    When ``y`` is omitted, computes the symmetric self-distance matrix.
    Uses the expanded quadratic form for efficiency and clamps tiny negative
    values introduced by floating-point cancellation.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = x if y is None else np.atleast_2d(np.asarray(y, dtype=np.float64))
    if x.shape[1] != y.shape[1]:
        raise ValueError(
            f"x and y must have the same dimensionality, got {x.shape} and {y.shape}"
        )
    x_sq = np.sum(x**2, axis=1)[:, None]
    y_sq = np.sum(y**2, axis=1)[None, :]
    squared = x_sq + y_sq - 2.0 * (x @ y.T)
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared)


def _validate_labels(x: np.ndarray, labels: np.ndarray) -> None:
    if len(x) != len(labels):
        raise ValueError(
            f"features and labels must have the same length, "
            f"got {len(x)} and {len(labels)}"
        )


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples.

    Returns 0.0 when there is only one cluster (silhouette is undefined),
    which is the conventional neutral value for the filter's purposes.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    labels = np.asarray(labels)
    _validate_labels(x, labels)
    unique = np.unique(labels)
    if len(unique) < 2 or len(x) < 3:
        return 0.0
    distances = pairwise_distances(x)
    scores = np.zeros(len(x))
    for i in range(len(x)):
        same = labels == labels[i]
        same_count = int(same.sum())
        if same_count <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, same].sum() / (same_count - 1)
        b = np.inf
        for label in unique:
            if label == labels[i]:
                continue
            other = labels == label
            b = min(b, distances[i, other].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(np.mean(scores))


def davies_bouldin_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better).

    Returns 0.0 for a single cluster.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    labels = np.asarray(labels)
    _validate_labels(x, labels)
    unique = np.unique(labels)
    k = len(unique)
    if k < 2:
        return 0.0
    centroids = np.vstack([x[labels == label].mean(axis=0) for label in unique])
    scatters = np.array(
        [
            np.mean(np.linalg.norm(x[labels == label] - centroids[idx], axis=1))
            for idx, label in enumerate(unique)
        ]
    )
    centroid_distances = pairwise_distances(centroids)
    ratios = np.zeros(k)
    for i in range(k):
        worst = 0.0
        for j in range(k):
            if i == j:
                continue
            denom = centroid_distances[i, j]
            if denom == 0:
                continue
            worst = max(worst, (scatters[i] + scatters[j]) / denom)
        ratios[i] = worst
    return float(np.mean(ratios))
