"""DBSCAN density-based clustering.

Provided as an alternative unsupervised filter backend: it naturally flags
isolated malicious feature vectors as noise (label ``-1``).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.clustering.metrics import pairwise_distances

NOISE = -1
UNVISITED = -2


class DBSCAN:
    """Classic DBSCAN on a precomputed Euclidean distance matrix.

    Attributes set by :meth:`fit`:
        labels_: cluster index per sample, ``-1`` marks noise.
        n_clusters_: number of discovered clusters (noise excluded).
        core_sample_indices_: indices of core samples.
    """

    def __init__(self, eps: float = 0.5, min_samples: int = 3):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.eps = eps
        self.min_samples = min_samples
        self.labels_: Optional[np.ndarray] = None
        self.n_clusters_: int = 0
        self.core_sample_indices_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "DBSCAN":
        """Cluster the rows of ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        n_samples = len(x)
        distances = pairwise_distances(x)
        neighbors = [np.flatnonzero(distances[i] <= self.eps) for i in range(n_samples)]
        is_core = np.array(
            [len(neighbors[i]) >= self.min_samples for i in range(n_samples)]
        )
        labels = np.full(n_samples, UNVISITED, dtype=int)
        cluster_index = 0
        for i in range(n_samples):
            if labels[i] != UNVISITED:
                continue
            if not is_core[i]:
                labels[i] = NOISE
                continue
            # Grow a new cluster from this core point via BFS.
            labels[i] = cluster_index
            queue = deque(neighbors[i])
            while queue:
                j = queue.popleft()
                if labels[j] == NOISE:
                    labels[j] = cluster_index
                if labels[j] != UNVISITED:
                    continue
                labels[j] = cluster_index
                if is_core[j]:
                    queue.extend(neighbors[j])
            cluster_index += 1
        self.labels_ = labels
        self.n_clusters_ = cluster_index
        self.core_sample_indices_ = np.flatnonzero(is_core)
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit and return the cluster label of every sample."""
        return self.fit(x).labels_

    def largest_cluster(self) -> np.ndarray:
        """Indices of the most populated non-noise cluster.

        Falls back to all indices when every point is noise, so a defense
        using DBSCAN never discards the entire round.
        """
        if self.labels_ is None:
            raise RuntimeError("DBSCAN must be fitted before use")
        valid = self.labels_[self.labels_ >= 0]
        if len(valid) == 0:
            return np.arange(len(self.labels_))
        counts = np.bincount(valid)
        winner = int(np.argmax(counts))
        return np.flatnonzero(self.labels_ == winner)
