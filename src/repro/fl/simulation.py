"""The federated-learning simulation loop (Algorithm 1 of the paper).

Rounds are *participation-aware*: a pluggable
:class:`~repro.fl.participation.ParticipationSchedule` produces a
:class:`~repro.fl.participation.RoundPlan` each round (sampled cohort,
dropouts, stragglers), the collect stage computes only the participating
clients' gradients into a cohort-sized slice of the preallocated round
buffer, the attack sees the Byzantine positions *within the cohort*, and the
defense aggregates a per-round-sized gradient matrix.  The default schedule
(full participation, no failures) is bit-identical to the original
fixed-population loop.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.data.datasets import ArrayDataset
from repro.fl.checkpoint import Checkpoint, save_checkpoint
from repro.fl.client import BenignClient, ByzantineClient, FederatedClient
from repro.fl.collector import GradientCollector, make_collector
from repro.fl.faults import (
    QUORUM_POLICIES,
    FaultSchedule,
    FleetOutageError,
    QuorumLossError,
)
from repro.fl.metrics import evaluate_model, selection_confusion
from repro.fl.participation import (
    ParticipationSchedule,
    RoundPlan,
    build_participation,
    scaled_byzantine_hint,
)
from repro.fl.server import FederatedServer
from repro.nn.module import Module
from repro.perf.profiler import NULL_PROFILER, RoundProfiler
from repro.utils.recording import RoundRecord, RunRecorder
from repro.utils.rng import RngFactory
from repro.utils.validation import check_byzantine_count


class FederatedSimulation:
    """Synchronous federated training with Byzantine clients and a defense.

    This is the lowest-level runner: it takes already-constructed clients, a
    server (model + defense + optimizer), and an attack, and runs rounds.
    Most callers go through :func:`repro.fl.experiment.run_experiment`, which
    builds all the pieces from an :class:`~repro.utils.config.ExperimentConfig`.

    Args:
        server: the federated server (global model, defense, optimizer).
        clients: the full client population (benign and Byzantine mixed).
        attack: the attack mounted by the Byzantine clients.
        test_dataset: held-out data for accuracy evaluation.
        attack_rng: randomness available to the attacker.  When omitted, a
            deterministic stream is derived from ``seed`` (direct
            ``FederatedSimulation`` users get reproducible runs just like
            ``run_experiment`` users do).
        eval_every: evaluate test accuracy every this many rounds.
        lr_decay: multiplicative learning-rate decay applied per round.
        dtype: dtype of the round gradient buffer (``np.float64`` by
            default; ``np.float32`` halves memory traffic through the whole
            filtering/aggregation path at reduced precision).  The global
            model's own dtype controls the precision clients *compute* in;
            :func:`~repro.fl.experiment.run_experiment` keeps the two in
            sync.
        n_workers: worker count for the collect stage.  1 (the default)
            keeps the seed's sequential loop; larger values fan the clients
            over the configured backend, which is bit-identical to the
            sequential path (see :mod:`repro.fl.collector`).  Ignored when
            ``collector`` is given.
        collect_backend: collect strategy — ``"thread"`` (default),
            ``"process"`` (shared-memory worker processes, for GIL-bound
            compute), ``"distributed"`` (a TCP fleet of ``repro-worker``
            hosts given by ``workers``), or ``"sequential"`` (force the
            seed loop).  Ignored when ``collector`` is given.
        workers: ``host:port`` specs of the ``repro-worker`` fleet for the
            distributed backend (ignored otherwise).  A worker that dies
            or times out mid-round walks the recovery ladder (reconnect →
            re-dispatch to survivors → demote its clients to dropouts in
            the round's plan) instead of crashing the run.
        connect_timeout: distributed backend only — socket timeout for
            worker connect/handshake.
        round_timeout: distributed backend only — deadline for a worker's
            round reply (``None`` waits forever).
        wire_codec: distributed backend only — the gradient wire codec its
            shard frames travel in (``"raw"`` default; see
            :mod:`repro.fl.transport.codec`).  A stateful codec's
            per-client residuals are captured/restored with checkpoints.
        fault_schedule: a :class:`~repro.fl.faults.FaultSchedule` of
            deterministic injected faults, honoured by every backend
            (ignored when ``collector`` is given — configure the collector
            directly).
        redispatch: distributed backend only — when True (default), a dead
            worker's rows are recomputed by surviving workers before any
            dropout demotion.
        min_cohort_fraction: quorum threshold — the round must end with at
            least ``ceil(min_cohort_fraction * cohort_size)`` active
            (aggregating) clients, else ``on_quorum_loss`` applies.  0
            (default) disables the check.
        on_quorum_loss: ``"accept"`` (default) records the round with
            ``quorum_met=False`` and keeps going; ``"retry"`` redraws the
            participation plan and recollects up to ``quorum_retries``
            times before raising; ``"abort"`` raises
            :class:`~repro.fl.faults.QuorumLossError` immediately.  A
            fleet outage (no gradients at all) is retried under
            ``"retry"`` and raised otherwise.
        quorum_retries: extra collect attempts granted by
            ``on_quorum_loss="retry"``.
        collector: an explicit :class:`~repro.fl.collector.GradientCollector`
            strategy, overriding ``n_workers`` and ``collect_backend``.
        participation: which clients train each round — a schedule name
            (``"full"``, ``"uniform"``, ``"fixed_cohort"``) or an explicit
            :class:`~repro.fl.participation.ParticipationSchedule` instance
            (which then owns all sampling knobs).
        participation_fraction: cohort fraction for ``"uniform"`` sampling.
        cohort_size: cohort size for ``"fixed_cohort"`` sampling.
        dropout_rate: per-round probability that a sampled client fails
            before computing (its RNG stream stays untouched).
        straggler_rate: per-round probability that a surviving sampled
            client computes (RNG advances) but misses the deadline and is
            excluded from aggregation.
        participation_rng: the schedule's randomness; defaults to a
            deterministic stream derived from ``seed``.
        seed: seed for the default attacker/participation streams when the
            explicit generators are not given.
        profiler: optional :class:`~repro.perf.profiler.RoundProfiler`; when
            given, every round records "collect_gradients", per-worker
            "collect_worker_<i>", "attack", and "evaluate" stages here (the
            server adds "aggregate" and "model_update" when it shares the
            profiler), and the round totals are annotated with the cohort
            size, sampled Byzantine count, dropouts, and stragglers.
    """

    def __init__(
        self,
        server: FederatedServer,
        clients: Sequence[FederatedClient],
        attack: Attack,
        test_dataset: ArrayDataset,
        *,
        attack_rng=None,
        eval_every: int = 1,
        lr_decay: float = 1.0,
        description: str = "",
        dtype=np.float64,
        n_workers: int = 1,
        collect_backend: str = "thread",
        workers: Optional[Sequence[str]] = None,
        collector: Optional[GradientCollector] = None,
        connect_timeout: float = 10.0,
        round_timeout: Optional[float] = 120.0,
        wire_codec: str = "raw",
        fault_schedule: Optional[FaultSchedule] = None,
        redispatch: bool = True,
        min_cohort_fraction: float = 0.0,
        on_quorum_loss: str = "accept",
        quorum_retries: int = 2,
        participation: Union[str, ParticipationSchedule] = "full",
        participation_fraction: float = 1.0,
        cohort_size: Optional[int] = None,
        dropout_rate: float = 0.0,
        straggler_rate: float = 0.0,
        participation_rng=None,
        seed: int = 0,
        profiler: Optional[RoundProfiler] = None,
    ):
        if not clients:
            raise ValueError("at least one client is required")
        if eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {eval_every}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype}")
        if not 0.0 <= min_cohort_fraction <= 1.0:
            raise ValueError(
                f"min_cohort_fraction must be in [0, 1], got {min_cohort_fraction}"
            )
        if on_quorum_loss not in QUORUM_POLICIES:
            raise ValueError(
                f"on_quorum_loss must be one of {QUORUM_POLICIES}, "
                f"got {on_quorum_loss!r}"
            )
        if quorum_retries < 0:
            raise ValueError(f"quorum_retries must be >= 0, got {quorum_retries}")
        self.min_cohort_fraction = float(min_cohort_fraction)
        self.on_quorum_loss = on_quorum_loss
        self.quorum_retries = int(quorum_retries)
        self.server = server
        self.clients: List[FederatedClient] = list(clients)
        self.attack = attack
        self.test_dataset = test_dataset
        self.eval_every = eval_every
        self.lr_decay = lr_decay
        self.dtype = dtype
        self.collector = (
            collector
            if collector is not None
            else make_collector(
                n_workers=n_workers,
                backend=collect_backend,
                workers=workers,
                connect_timeout=connect_timeout,
                round_timeout=round_timeout,
                wire_codec=wire_codec,
                fault_schedule=fault_schedule,
                redispatch=redispatch,
                retry_seed=seed,
            )
        )
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.recorder = RunRecorder(description=description)
        rng_factory = RngFactory(seed)
        self._attack_rng = (
            attack_rng if attack_rng is not None else rng_factory.make("attack")
        )
        if isinstance(participation, ParticipationSchedule):
            self.schedule = participation
        else:
            self.schedule = build_participation(
                participation,
                participation_fraction=participation_fraction,
                cohort_size=cohort_size,
                dropout_rate=dropout_rate,
                straggler_rate=straggler_rate,
                rng=(
                    participation_rng
                    if participation_rng is not None
                    else rng_factory.make("participation")
                ),
            )
        # Preallocated (n_clients, dim) round buffer, reused across rounds;
        # partial rounds use a cohort-sized leading slice of it.
        self._round_buffer: Optional[np.ndarray] = None
        byzantine = [c.client_id for c in self.clients if c.is_byzantine]
        self.byzantine_indices = np.asarray(sorted(byzantine), dtype=int)
        if len(self.byzantine_indices):
            check_byzantine_count(len(self.byzantine_indices), len(self.clients))

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def model(self) -> Module:
        return self.server.model

    def _collect_honest_gradients(self, plan: RoundPlan) -> tuple:
        """The active clients' honest gradients at the current model.

        Gradients are written into the leading ``(num_active, dim)`` slice
        of the preallocated round buffer (reused across rounds) by the
        configured :class:`~repro.fl.collector.GradientCollector`; row
        ``k`` holds the gradient of client ``plan.active[k]``.
        Non-participating clients are never invoked, so their RNG streams
        stay untouched.  Stragglers are collected afterwards into a scratch
        slice with ``apply_batch_stats=False``: their RNG streams advance
        and their compute time is spent, but neither their gradient nor
        their BatchNorm statistics reach the server — the whole discarded
        submission stays discarded.

        Returns ``(buffer, plan, stats)``.  The returned plan differs from
        the argument only when the collector reported rows it could not
        obtain (a distributed worker died or timed out and re-dispatch
        could not recover the rows): those clients are demoted to
        dropouts, their NaN rows are compacted out of the buffer, and the
        round continues with the survivors.  ``stats`` carries the
        recovery counters (re-dispatched rows, reconnects) for the round
        record.  Raises :class:`~repro.fl.faults.FleetOutageError` when
        *every* row failed — no gradients at all is an outage, not a
        dropout.
        """
        full = self._round_buffer
        if full is None:
            dim = self.model.num_parameters()
            full = np.empty((self.num_clients, dim), dtype=self.dtype)
            self._round_buffer = full
        buffer = full[: plan.num_active]
        rows = None if plan.is_full_round else plan.active
        self.collector.collect(self.clients, self.model, buffer, rows=rows)
        timings = list(self.collector.worker_timings)
        wire = list(self.collector.last_round_bytes)
        failed = tuple(self.collector.failed_rows)
        stats = {
            "num_redispatched": len(self.collector.last_round_redispatched),
            "num_reconnects": int(self.collector.last_round_reconnects),
        }
        if failed:
            if len(failed) == plan.num_active:
                raise FleetOutageError(
                    "every collect worker failed this round; no gradients "
                    "were obtained — treat this as a fleet outage, not a "
                    "dropout"
                )
            # Compact the surviving rows to the front of the round buffer
            # (fancy indexing copies, so the overlapping move is safe), then
            # demote the failed clients in the plan.
            keep = np.flatnonzero(~np.isin(plan.active, failed))
            buffer[: len(keep)] = buffer[keep]
            plan = plan.demote_to_dropped(failed)
            buffer = full[: plan.num_active]
        if plan.num_stragglers:
            scratch = full[plan.num_active : plan.num_active + plan.num_stragglers]
            self.collector.collect(
                self.clients,
                self.model,
                scratch,
                rows=plan.stragglers,
                apply_batch_stats=False,
            )
            # A worker failure during the straggler pass needs no demotion:
            # straggler submissions are discarded either way.
            timings.extend(self.collector.worker_timings)
            wire = [a + b for a, b in zip(wire, self.collector.last_round_bytes)]
        profiler = self.profiler
        if profiler.enabled:
            for worker_index, seconds, _ in timings:
                profiler.record(f"collect_worker_{worker_index}", seconds)
            if any(wire):
                profiler.count("collect_bytes_sent", wire[0])
                profiler.count("collect_bytes_received", wire[1])
                profiler.annotate(
                    collect_bytes_sent=wire[0], collect_bytes_received=wire[1]
                )
            if stats["num_redispatched"]:
                profiler.count("collect_redispatched", stats["num_redispatched"])
                profiler.annotate(collect_redispatched=stats["num_redispatched"])
            if stats["num_reconnects"]:
                profiler.count("collect_reconnects", stats["num_reconnects"])
                profiler.annotate(collect_reconnects=stats["num_reconnects"])
        return buffer, plan, stats

    def _quorum_size(self, plan: RoundPlan) -> int:
        return math.ceil(self.min_cohort_fraction * plan.cohort_size)

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one synchronous federated round and return its record.

        The collect stage runs under the quorum policy: when the round ends
        with fewer active clients than ``min_cohort_fraction`` requires (or
        with none at all — a fleet outage), ``on_quorum_loss`` decides
        whether to accept the degraded round, redraw the plan and retry, or
        raise.
        """
        profiler = self.profiler
        profiler.begin_round(round_index)
        retries = 0
        while True:
            plan = self.schedule.plan(round_index, self.num_clients)
            may_retry = self.on_quorum_loss == "retry" and retries < self.quorum_retries
            try:
                with profiler.stage("collect_gradients"):
                    submitted_honest, plan, collect_stats = (
                        self._collect_honest_gradients(plan)
                    )
            except FleetOutageError:
                if not may_retry:
                    raise
                retries += 1
                continue
            quorum_met = plan.num_active >= self._quorum_size(plan)
            if quorum_met or self.on_quorum_loss == "accept":
                break
            if may_retry:
                retries += 1
                continue
            raise QuorumLossError(
                f"round {round_index} ended with {plan.num_active} active "
                f"clients, below the quorum of {self._quorum_size(plan)} "
                f"({self.min_cohort_fraction:.0%} of the {plan.cohort_size}"
                f"-client cohort) after {retries} retries"
            )
        byzantine_positions = plan.byzantine_positions(self.byzantine_indices)
        context = AttackContext(
            round_index=round_index,
            num_clients=plan.num_active,
            byzantine_indices=byzantine_positions,
            rng=self._attack_rng,
            global_gradient=self.server._previous_gradient,
            population_size=self.num_clients,
            cohort_client_ids=plan.active,
        )
        with profiler.stage("attack"):
            submitted = self.attack.apply(submitted_honest, context)
        result = self.server.aggregate_and_update(
            submitted,
            num_byzantine_hint=scaled_byzantine_hint(
                self.server.num_byzantine_hint, plan.num_active, self.num_clients
            ),
            participation_weights=plan.weights,
        )

        confusion = selection_confusion(
            result.selected_indices, byzantine_positions, plan.num_active
        )
        selected_global = plan.active[np.asarray(result.selected_indices, dtype=int)]
        # Loss is averaged over the *reporting* clients: a straggler's local
        # loss never reached the server, so it cannot enter the round record.
        reporting_clients = [self.clients[i] for i in plan.active]
        benign_losses = [
            client.last_loss for client in reporting_clients if not client.is_byzantine
        ] or [client.last_loss for client in reporting_clients]
        record = RoundRecord(
            round_index=round_index,
            train_loss=float(np.mean(benign_losses)),
            selected_clients=tuple(int(i) for i in selected_global),
            attack_name=getattr(self.attack, "name", "unknown"),
            cohort_size=plan.cohort_size,
            num_dropped=plan.num_dropped,
            num_stragglers=plan.num_stragglers,
            # Only record explicit cohort ids when they carry information: a
            # population-sized cohort is derivable from cohort_size and
            # would bloat every serialized full-participation record.
            cohort_clients=(
                ()
                if plan.cohort_size == self.num_clients
                else tuple(int(i) for i in plan.cohort)
            ),
            num_redispatched=collect_stats["num_redispatched"],
            num_reconnects=collect_stats["num_reconnects"],
            num_retries=retries,
            quorum_met=quorum_met,
            **confusion,
        )
        if (round_index + 1) % self.eval_every == 0:
            with profiler.stage("evaluate"):
                accuracy, test_loss = evaluate_model(self.model, self.test_dataset)
            record.test_accuracy = accuracy
            record.test_loss = test_loss
        if self.lr_decay != 1.0:
            self.server.learning_rate *= self.lr_decay
        if profiler.enabled:
            profiler.annotate(
                cohort_size=plan.cohort_size,
                num_active=plan.num_active,
                num_dropped=plan.num_dropped,
                num_stragglers=plan.num_stragglers,
                byzantine_in_cohort=len(byzantine_positions),
            )
            if retries:
                profiler.annotate(collect_retries=retries)
            if not quorum_met:
                profiler.annotate(quorum_met=False)
        profiler.end_round()
        return record

    def capture_checkpoint(
        self, *, config: Optional[Dict[str, Any]] = None
    ) -> Checkpoint:
        """Snapshot every piece of mutable run state into a checkpoint.

        The snapshot is decoupled from the live run (arrays copied, RNG
        states captured by value), so continuing to train does not mutate
        it.  For backends whose client batch-sampler streams live in
        worker processes, the workers' last reported states override the
        caller's (stale) client objects.

        Args:
            config: an ``ExperimentConfig.to_dict()`` echo stored in the
                checkpoint so a resume under a different config can be
                refused.
        """
        optimizer_state = self.server.optimizer.state_dict()
        schedule_rng = getattr(self.schedule, "_rng", None)
        client_states: Dict[int, Dict[str, Any]] = {
            client.client_id: client.loader.rng_state for client in self.clients
        }
        client_states.update(self.collector.client_rng_states())
        previous = self.server._previous_gradient
        return Checkpoint(
            rounds_completed=len(self.recorder.rounds),
            model_state=self.model.state_dict(),
            velocities=optimizer_state["velocities"],
            learning_rate=optimizer_state["lr"],
            previous_gradient=None if previous is None else previous.copy(),
            server_round_index=int(self.server.round_index),
            server_rng_state=self.server._rng.bit_generator.state,
            attack_rng_state=self._attack_rng.bit_generator.state,
            participation_rng_state=(
                None if schedule_rng is None else schedule_rng.bit_generator.state
            ),
            client_rng_states=client_states,
            attack_state=self.attack.state_dict(),
            recorder_state=self.recorder.to_dict(),
            codec_states=self.collector.codec_states(),
            config=config,
        )

    def restore_checkpoint(self, checkpoint: Checkpoint) -> int:
        """Rewind this simulation to ``checkpoint``; return the next round.

        The simulation must have been built from the same configuration
        that produced the checkpoint (same model architecture, population,
        schedule kind, attack) — only *mutable* state is restored here;
        everything structural is the caller's responsibility
        (:func:`repro.fl.experiment.run_experiment` verifies the config
        echo).  The collector is closed so its workers are rebuilt from
        the restored client states on the next round.
        """
        self.model.load_state_dict(checkpoint.model_state)
        self.server.optimizer.load_state_dict(
            {
                "lr": checkpoint.learning_rate,
                "velocities": checkpoint.velocities,
            }
        )
        previous = checkpoint.previous_gradient
        self.server._previous_gradient = None if previous is None else previous.copy()
        self.server.round_index = int(checkpoint.server_round_index)
        self.server._rng.bit_generator.state = checkpoint.server_rng_state
        self._attack_rng.bit_generator.state = checkpoint.attack_rng_state
        schedule_rng = getattr(self.schedule, "_rng", None)
        if checkpoint.participation_rng_state is not None:
            if schedule_rng is None:
                raise ValueError(
                    "checkpoint carries a participation RNG state but this "
                    "simulation's schedule draws no randomness — was it "
                    "built from a different config?"
                )
            schedule_rng.bit_generator.state = checkpoint.participation_rng_state
        self.attack.load_state_dict(checkpoint.attack_state)
        for client in self.clients:
            state = checkpoint.client_rng_states.get(client.client_id)
            if state is not None:
                client.loader.rng_state = state
        self.recorder = RunRecorder.from_dict(checkpoint.recorder_state or {})
        # Drop worker-held copies of model/client state: the next collect
        # rebuilds the fleet from the restored objects above.  Codec state
        # loads *after* the close (which clears the collector's cache) so
        # the rebuilt fleet resumes a stateful wire codec's residuals.
        self.collector.close()
        if checkpoint.codec_states:
            self.collector.load_codec_states(checkpoint.codec_states)
        return int(checkpoint.rounds_completed)

    def run(
        self,
        rounds: int,
        *,
        start_round: int = 0,
        checkpoint_every: Optional[int] = None,
        checkpoint_path=None,
        checkpoint_config: Optional[Dict[str, Any]] = None,
    ) -> RunRecorder:
        """Run federated rounds ``start_round .. rounds-1``, recording each.

        Args:
            start_round: first round index to execute — nonzero when
                resuming from a checkpoint (the earlier rounds' history
                lives in the restored recorder).
            checkpoint_every: snapshot the run every this many rounds (and
                after the final round).  Requires ``checkpoint_path``.
            checkpoint_path: where the checkpoint file is (atomically)
                written; each save replaces the previous one.
            checkpoint_config: config echo stored in every checkpoint.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if not 0 <= start_round <= rounds:
            raise ValueError(
                f"start_round must be in [0, {rounds}], got {start_round}"
            )
        if (checkpoint_every is None) != (checkpoint_path is None):
            raise ValueError(
                "checkpoint_every and checkpoint_path must be given together"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        for round_index in range(start_round, rounds):
            self.recorder.add(self.run_round(round_index))
            completed = round_index + 1
            if checkpoint_every is not None and (
                completed % checkpoint_every == 0 or completed == rounds
            ):
                save_checkpoint(
                    self.capture_checkpoint(config=checkpoint_config),
                    checkpoint_path,
                )
        return self.recorder

    def close(self) -> None:
        """Release the collector's worker threads (idempotent)."""
        self.collector.close()


def build_clients(
    train_dataset: ArrayDataset,
    partitions: Sequence[np.ndarray],
    byzantine_indices: Sequence[int],
    *,
    batch_size: int = 32,
    local_iterations: int = 1,
    poison_labels: bool = False,
    rng_factory: Optional[RngFactory] = None,
) -> List[FederatedClient]:
    """Instantiate the client population from a dataset partition.

    Args:
        train_dataset: the global training set.
        partitions: per-client index arrays (one per client).
        byzantine_indices: which client ids the attacker controls.
        poison_labels: True when the configured attack is label flipping, in
            which case the Byzantine clients' local labels are flipped.
        rng_factory: source of per-client batch-sampling seeds.
    """
    rng_factory = rng_factory or RngFactory(0)
    byzantine = set(int(i) for i in byzantine_indices)
    clients: List[FederatedClient] = []
    for client_id, indices in enumerate(partitions):
        local = train_dataset.subset(indices)
        client_rng = rng_factory.make(f"client-{client_id}")
        if client_id in byzantine:
            clients.append(
                ByzantineClient(
                    client_id,
                    local,
                    batch_size=batch_size,
                    local_iterations=local_iterations,
                    poison_labels=poison_labels,
                    rng=client_rng,
                )
            )
        else:
            clients.append(
                BenignClient(
                    client_id,
                    local,
                    batch_size=batch_size,
                    local_iterations=local_iterations,
                    rng=client_rng,
                )
            )
    return clients
