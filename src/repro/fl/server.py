"""The parameter server: aggregates gradients and updates the global model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.perf.profiler import NULL_PROFILER, RoundProfiler
from repro.utils.rng import RngLike, as_rng


class FederatedServer:
    """Holds the global model, the defense (aggregation rule), and the optimizer.

    Args:
        model: the global model.
        aggregator: the gradient aggregation rule (defense).
        learning_rate, momentum, weight_decay: server-side SGD parameters
            (the paper applies momentum/weight decay at the model update).
        num_byzantine_hint: Byzantine count passed to rules that require it
            (Krum, Bulyan, trimmed mean...).  SignGuard ignores it.
        rng: server-side randomness (SignGuard's coordinate sampling, DnC's
            coordinate subsampling).
        profiler: optional :class:`~repro.perf.profiler.RoundProfiler`; when
            given, the defense ("aggregate") and the model update
            ("model_update") are timed as separate stages every round.
    """

    def __init__(
        self,
        model: Module,
        aggregator: Aggregator,
        *,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        num_byzantine_hint: Optional[int] = None,
        rng: RngLike = None,
        profiler: Optional[RoundProfiler] = None,
    ):
        self.model = model
        self.aggregator = aggregator
        self.optimizer = SGD(
            model.parameters(),
            lr=learning_rate,
            momentum=momentum,
            weight_decay=weight_decay,
        )
        self.num_byzantine_hint = num_byzantine_hint
        self._rng = as_rng(rng)
        self._previous_gradient: Optional[np.ndarray] = None
        self.round_index = 0
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @property
    def learning_rate(self) -> float:
        return self.optimizer.lr

    @learning_rate.setter
    def learning_rate(self, value: float) -> None:
        self.optimizer.lr = value

    def make_context(
        self, *, num_byzantine_hint: Optional[int] = None
    ) -> ServerContext:
        """Build the per-round context handed to the aggregation rule.

        Args:
            num_byzantine_hint: per-round override of the configured hint —
                under partial participation the simulation scales the
                population-level belief to the sampled cohort.  ``None``
                keeps the configured value.
        """
        return ServerContext(
            round_index=self.round_index,
            rng=self._rng,
            previous_gradient=self._previous_gradient,
            num_byzantine_hint=(
                self.num_byzantine_hint
                if num_byzantine_hint is None
                else int(num_byzantine_hint)
            ),
        )

    def aggregate_and_update(
        self,
        gradients: np.ndarray,
        *,
        num_byzantine_hint: Optional[int] = None,
        participation_weights: Optional[np.ndarray] = None,
    ) -> AggregationResult:
        """Run the defense on the submitted gradients and update the model.

        ``gradients`` has one row per *reporting* client this round — under
        partial participation that is the active cohort, not the population.

        Args:
            num_byzantine_hint: per-round hint override (see
                :meth:`make_context`).
            participation_weights: optional per-row aggregation weights from
                the round plan, exposed to weighted rules via
                ``context.extra["participation_weights"]``.
        """
        context = self.make_context(num_byzantine_hint=num_byzantine_hint)
        if participation_weights is not None:
            context.extra["participation_weights"] = np.asarray(
                participation_weights, dtype=np.float64
            )
        with self.profiler.stage("aggregate"):
            result = self.aggregator(gradients, context)
        with self.profiler.stage("model_update"):
            self.optimizer.apply_gradient_vector(result.gradient)
        # Keep the round buffer's dtype: copying to float64 here would
        # silently double the float32 path's memory traffic for the
        # history-aware features that consume the previous aggregate.
        # repro-lint: disable=dtype-discipline -- deliberately dtype-preserving
        previous = np.asarray(result.gradient)
        if previous.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            previous = previous.astype(np.float64)
        self._previous_gradient = previous.copy()
        self.round_index += 1
        return result
