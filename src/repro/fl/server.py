"""The parameter server: aggregates gradients and updates the global model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import AggregationResult, Aggregator, ServerContext
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.perf.profiler import NULL_PROFILER, RoundProfiler
from repro.utils.rng import RngLike, as_rng


class FederatedServer:
    """Holds the global model, the defense (aggregation rule), and the optimizer.

    Args:
        model: the global model.
        aggregator: the gradient aggregation rule (defense).
        learning_rate, momentum, weight_decay: server-side SGD parameters
            (the paper applies momentum/weight decay at the model update).
        num_byzantine_hint: Byzantine count passed to rules that require it
            (Krum, Bulyan, trimmed mean...).  SignGuard ignores it.
        rng: server-side randomness (SignGuard's coordinate sampling, DnC's
            coordinate subsampling).
        profiler: optional :class:`~repro.perf.profiler.RoundProfiler`; when
            given, the defense ("aggregate") and the model update
            ("model_update") are timed as separate stages every round.
    """

    def __init__(
        self,
        model: Module,
        aggregator: Aggregator,
        *,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        num_byzantine_hint: Optional[int] = None,
        rng: RngLike = None,
        profiler: Optional[RoundProfiler] = None,
    ):
        self.model = model
        self.aggregator = aggregator
        self.optimizer = SGD(
            model.parameters(),
            lr=learning_rate,
            momentum=momentum,
            weight_decay=weight_decay,
        )
        self.num_byzantine_hint = num_byzantine_hint
        self._rng = as_rng(rng)
        self._previous_gradient: Optional[np.ndarray] = None
        self.round_index = 0
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @property
    def learning_rate(self) -> float:
        return self.optimizer.lr

    @learning_rate.setter
    def learning_rate(self, value: float) -> None:
        self.optimizer.lr = value

    def make_context(self) -> ServerContext:
        """Build the per-round context handed to the aggregation rule."""
        return ServerContext(
            round_index=self.round_index,
            rng=self._rng,
            previous_gradient=self._previous_gradient,
            num_byzantine_hint=self.num_byzantine_hint,
        )

    def aggregate_and_update(self, gradients: np.ndarray) -> AggregationResult:
        """Run the defense on the submitted gradients and update the model."""
        context = self.make_context()
        with self.profiler.stage("aggregate"):
            result = self.aggregator(gradients, context)
        with self.profiler.stage("model_update"):
            self.optimizer.apply_gradient_vector(result.gradient)
        self._previous_gradient = np.asarray(result.gradient, dtype=np.float64).copy()
        self.round_index += 1
        return result
