"""Participation-aware round planning: sampling, dropouts, and stragglers.

The seed simulation hard-coded the paper's cross-silo corner of federated
learning: every one of the ``n`` clients computes and submits a gradient
every round.  Cross-device federations behave differently — the server
samples a small cohort per round (FedAvg-style ``C·n`` sampling), sampled
clients drop out before computing, and slow clients ("stragglers") compute
but miss the synchronous deadline.  This module describes one round's
participation as data (:class:`RoundPlan`) produced by a pluggable policy
(:class:`ParticipationSchedule`), which the simulation threads through the
collect, attack, defense, and recording layers.

Terminology used by the whole stack:

* **cohort** — the clients sampled for the round (sorted global ids).
* **dropped** — sampled clients that fail *before* computing: they never run
  a local step, so their batch-sampling RNG streams stay untouched.
* **stragglers** — sampled clients that compute a gradient (their RNG
  streams advance, exactly as if they had participated) but miss the
  synchronous deadline; the server discards their update.
* **active** — cohort minus dropped minus stragglers: the rows of the round
  gradient matrix the server actually aggregates.
* **computing** — active plus stragglers: every client whose
  ``compute_gradient`` runs this round (the collect stage's work list).

Reproducibility contract: schedules draw from their own RNG stream only — a
sampled client's batch RNG advances exactly when it computes, and
non-sampled clients' streams are never touched — so any schedule is
bit-reproducible under every collect backend, and :class:`FullParticipation`
with no failure knobs consumes no randomness at all (it stays bit-identical
to the pre-participation engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_fraction, check_integer_in_range


def _as_sorted_ids(values, name: str, population_size: int) -> np.ndarray:
    """Coerce ``values`` to a sorted, unique, in-range int id array."""
    ids = np.asarray(values, dtype=int).ravel()
    if len(ids) and (ids.min() < 0 or ids.max() >= population_size):
        raise ValueError(
            f"{name} contains ids outside [0, {population_size}): {ids}"
        )
    if len(np.unique(ids)) != len(ids):
        raise ValueError(f"{name} contains duplicate ids: {ids}")
    return np.sort(ids)


@dataclass(eq=False)
class RoundPlan:
    """One round's participation, fully resolved to client ids.

    All id arrays are sorted ascending, which fixes the round buffer's row
    order (and therefore the BatchNorm statistics replay order) identically
    across every collect backend.

    Attributes:
        round_index: the federated round this plan is for.
        population_size: total number of clients ``n`` in the federation.
        cohort: sampled client ids.
        active: cohort members whose gradients reach the server in time.
        dropped: cohort members that failed before computing.
        stragglers: cohort members that computed but missed the deadline.
        weights: per-active-client aggregation weights (sum to 1).  The
            default schedules emit uniform weights; the plan carries them so
            weighted aggregation rules can consume them via
            ``ServerContext.extra["participation_weights"]``.
    """

    round_index: int
    population_size: int
    cohort: np.ndarray
    active: np.ndarray
    dropped: np.ndarray
    stragglers: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        n = int(self.population_size)
        if n < 1:
            raise ValueError(f"population_size must be >= 1, got {n}")
        self.cohort = _as_sorted_ids(self.cohort, "cohort", n)
        # weights[k] belongs to active[k] *as given*: permute them together,
        # or sorting active would silently hand weights to the wrong client.
        active_raw = np.asarray(self.active, dtype=int).ravel()
        weights_raw = np.asarray(self.weights, dtype=np.float64).ravel()
        if weights_raw.shape == active_raw.shape and len(active_raw):
            self.weights = weights_raw[np.argsort(active_raw, kind="stable")]
        else:
            self.weights = weights_raw
        self.active = _as_sorted_ids(self.active, "active", n)
        self.dropped = _as_sorted_ids(self.dropped, "dropped", n)
        self.stragglers = _as_sorted_ids(self.stragglers, "stragglers", n)
        if len(self.cohort) == 0:
            raise ValueError("a round plan must sample at least one client")
        if len(self.active) == 0:
            raise ValueError("a round plan must keep at least one active client")
        parts = np.concatenate([self.active, self.dropped, self.stragglers])
        if len(np.unique(parts)) != len(parts):
            raise ValueError("active/dropped/stragglers must be disjoint")
        if not np.array_equal(np.sort(parts), self.cohort):
            raise ValueError("active + dropped + stragglers must partition cohort")
        if self.weights.shape != self.active.shape:
            raise ValueError(
                f"weights must have one entry per active client "
                f"({len(self.active)}), got {len(self.weights)}"
            )
        if np.any(self.weights < 0) or not np.isclose(self.weights.sum(), 1.0):
            raise ValueError("weights must be non-negative and sum to 1")

    @property
    def cohort_size(self) -> int:
        return len(self.cohort)

    @property
    def num_active(self) -> int:
        return len(self.active)

    @property
    def num_dropped(self) -> int:
        return len(self.dropped)

    @property
    def num_stragglers(self) -> int:
        return len(self.stragglers)

    @property
    def is_full_round(self) -> bool:
        """True when every client in the population submits in time."""
        return self.num_active == self.population_size

    @property
    def computing(self) -> np.ndarray:
        """Sorted ids of every client that runs ``compute_gradient``.

        The simulation collects active clients and stragglers in two
        separate passes (straggler BatchNorm statistics must be discarded),
        so this union is a derived view for schedule consumers and tests,
        not the collect work list itself.
        """
        if len(self.stragglers) == 0:
            return self.active
        return np.union1d(self.active, self.stragglers)

    def demote_to_dropped(self, client_ids) -> "RoundPlan":
        """A copy of this plan with ``client_ids`` moved from active to dropped.

        This is the failure path of the *distributed* collect backend: a
        worker that dies or times out mid-round takes its active clients
        with it, and the round continues with the survivors — exactly the
        semantics of clients that failed before computing.  (A client whose
        worker died after computing did advance its RNG stream in the dead
        worker's memory, but that state died with the process; the
        collector resumes the client from its last *completed* round, which
        is what "dropped" means everywhere else in this module.)

        The surviving clients' aggregation weights are renormalized to sum
        to 1.  Demoting every active client raises ``ValueError`` — a
        synchronous round cannot complete with zero reports, so the caller
        must treat that as a run-level failure, not a round-level one.
        """
        ids = _as_sorted_ids(client_ids, "demoted ids", self.population_size)
        if not len(ids):
            return self
        unknown = np.setdiff1d(ids, self.active)
        if len(unknown):
            raise ValueError(
                f"cannot demote clients that are not active this round: {unknown}"
            )
        keep = ~np.isin(self.active, ids)
        if not keep.any():
            raise ValueError(
                "cannot demote every active client: a synchronous round "
                "needs at least one report"
            )
        weights = self.weights[keep]
        total = weights.sum()
        if total > 0:
            weights = weights / total
        else:
            weights = np.full(
                int(keep.sum()), 1.0 / int(keep.sum()), dtype=np.float64
            )
        return RoundPlan(
            round_index=self.round_index,
            population_size=self.population_size,
            cohort=self.cohort,
            active=self.active[keep],
            dropped=np.union1d(self.dropped, ids),
            stragglers=self.stragglers,
            weights=weights,
        )

    def byzantine_positions(self, byzantine_ids) -> np.ndarray:
        """Row positions of Byzantine clients within the *submitted* matrix.

        The attacker only controls the Byzantine clients that were sampled
        and reported in time; the returned positions index rows of the
        ``(num_active, dim)`` gradient matrix the server sees.
        """
        mask = np.isin(self.active, np.asarray(byzantine_ids, dtype=int))
        return np.flatnonzero(mask)


class ParticipationSchedule:
    """Policy interface: produce a :class:`RoundPlan` for each round."""

    name: str = "schedule"

    def plan(self, round_index: int, population_size: int) -> RoundPlan:
        """Build the participation plan for ``round_index``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class _RandomizedSchedule(ParticipationSchedule):
    """Shared sampling machinery: cohort selection + dropout/straggler knobs.

    Args:
        dropout_rate: per-sampled-client probability of failing before
            computing.
        straggler_rate: per-surviving-client probability of computing but
            missing the deadline.
        rng: the schedule's private randomness.  Draws happen once per
            :meth:`plan` call (cohort, then dropouts, then stragglers — each
            only when its knob is non-zero), so a seeded generator makes the
            whole participation trace reproducible.
    """

    def __init__(
        self,
        *,
        dropout_rate: float = 0.0,
        straggler_rate: float = 0.0,
        rng: RngLike = None,
    ):
        check_fraction(dropout_rate, "dropout_rate")
        check_fraction(straggler_rate, "straggler_rate")
        if dropout_rate >= 1.0 or straggler_rate >= 1.0:
            raise ValueError("dropout_rate and straggler_rate must be < 1")
        self.dropout_rate = float(dropout_rate)
        self.straggler_rate = float(straggler_rate)
        self._rng = as_rng(rng)

    def _sample_cohort(self, round_index: int, population_size: int) -> np.ndarray:
        raise NotImplementedError

    def _apply_failures(
        self, cohort: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split ``cohort`` into (active, dropped, stragglers)."""
        surviving = cohort
        dropped = np.array([], dtype=int)
        stragglers = np.array([], dtype=int)
        if self.dropout_rate > 0.0:
            mask = self._rng.random(len(cohort)) < self.dropout_rate
            dropped = cohort[mask]
            surviving = cohort[~mask]
        if self.straggler_rate > 0.0 and len(surviving):
            mask = self._rng.random(len(surviving)) < self.straggler_rate
            stragglers = surviving[mask]
            surviving = surviving[~mask]
        if len(surviving) == 0:
            # A synchronous round needs at least one report.  Resurrect the
            # lowest-id straggler (it computed anyway — it just makes the
            # deadline), else the lowest-id dropped client.
            if len(stragglers):
                surviving = stragglers[:1]
                stragglers = stragglers[1:]
            else:
                surviving = dropped[:1]
                dropped = dropped[1:]
        return surviving, dropped, stragglers

    def plan(self, round_index: int, population_size: int) -> RoundPlan:
        check_integer_in_range(population_size, "population_size", minimum=1)
        cohort = self._sample_cohort(round_index, population_size)
        active, dropped, stragglers = self._apply_failures(cohort)
        weights = np.full(len(active), 1.0 / len(active), dtype=np.float64)
        return RoundPlan(
            round_index=round_index,
            population_size=population_size,
            cohort=cohort,
            active=active,
            dropped=dropped,
            stragglers=stragglers,
            weights=weights,
        )


class FullParticipation(_RandomizedSchedule):
    """Every client participates every round (the seed behaviour).

    With both failure knobs at zero this schedule consumes no randomness and
    the engine is bit-identical to the pre-participation round loop; the
    knobs still apply, which models a cross-silo federation with flaky silos.
    """

    name = "full"

    def _sample_cohort(self, round_index: int, population_size: int) -> np.ndarray:
        return np.arange(population_size)


class UniformParticipation(_RandomizedSchedule):
    """FedAvg-style sampling: a ``fraction`` of clients uniformly per round."""

    name = "uniform"

    def __init__(
        self,
        fraction: float,
        *,
        dropout_rate: float = 0.0,
        straggler_rate: float = 0.0,
        rng: RngLike = None,
    ):
        super().__init__(
            dropout_rate=dropout_rate, straggler_rate=straggler_rate, rng=rng
        )
        check_fraction(fraction, "participation_fraction")
        if fraction <= 0.0:
            raise ValueError(
                f"participation_fraction must be in (0, 1], got {fraction}"
            )
        self.fraction = float(fraction)

    def _sample_cohort(self, round_index: int, population_size: int) -> np.ndarray:
        size = max(1, int(round(self.fraction * population_size)))
        return np.sort(
            self._rng.choice(population_size, size=size, replace=False)
        )


class FixedCohortParticipation(_RandomizedSchedule):
    """Sample exactly ``cohort_size`` clients uniformly per round."""

    name = "fixed_cohort"

    def __init__(
        self,
        cohort_size: int,
        *,
        dropout_rate: float = 0.0,
        straggler_rate: float = 0.0,
        rng: RngLike = None,
    ):
        super().__init__(
            dropout_rate=dropout_rate, straggler_rate=straggler_rate, rng=rng
        )
        check_integer_in_range(cohort_size, "cohort_size", minimum=1)
        self.cohort_size = int(cohort_size)

    def _sample_cohort(self, round_index: int, population_size: int) -> np.ndarray:
        if self.cohort_size > population_size:
            raise ValueError(
                f"cohort_size={self.cohort_size} exceeds the population "
                f"({population_size} clients)"
            )
        return np.sort(
            self._rng.choice(population_size, size=self.cohort_size, replace=False)
        )


#: Schedule names accepted by :func:`build_participation` and
#: :class:`~repro.utils.config.TrainingConfig`.
PARTICIPATION_SCHEDULES = ("full", "uniform", "fixed_cohort")


def build_participation(
    name: str,
    *,
    participation_fraction: float = 1.0,
    cohort_size: Optional[int] = None,
    dropout_rate: float = 0.0,
    straggler_rate: float = 0.0,
    rng: RngLike = None,
) -> ParticipationSchedule:
    """Build the participation schedule named ``name``."""
    knobs = dict(dropout_rate=dropout_rate, straggler_rate=straggler_rate, rng=rng)
    if name == "full":
        return FullParticipation(**knobs)
    if name == "uniform":
        return UniformParticipation(participation_fraction, **knobs)
    if name == "fixed_cohort":
        if cohort_size is None:
            raise ValueError("fixed_cohort participation requires cohort_size")
        return FixedCohortParticipation(cohort_size, **knobs)
    raise ValueError(
        f"participation must be one of {PARTICIPATION_SCHEDULES}, got {name!r}"
    )


def scaled_byzantine_hint(
    hint: Optional[int], num_active: int, population_size: int
) -> Optional[int]:
    """Scale a population-level Byzantine-count belief to a sampled round.

    The operator's hint describes the whole federation; under sampling the
    defense only sees ``num_active`` gradients, so baselines that consume
    the hint (Krum, Bulyan, trimmed mean) should be told the *expected*
    number of Byzantine rows in the cohort.  A full round returns the hint
    unchanged (bit-compatible with the pre-participation engine).
    """
    if hint is None or num_active == population_size:
        return hint
    return int(round(int(hint) * num_active / population_size))
