"""Evaluation metrics for federated experiments."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module


def evaluate_model(
    model: Module, dataset: ArrayDataset, *, batch_size: int = 256
) -> Tuple[float, float]:
    """Return (accuracy, mean loss) of ``model`` on ``dataset``.

    Evaluation is batched so large test sets do not blow up memory; the model
    is switched to eval mode (and back to train mode) around the pass.
    """
    loss_fn = CrossEntropyLoss()
    model.eval()
    correct = 0
    total_loss = 0.0
    total = len(dataset)
    for start in range(0, total, batch_size):
        inputs, labels = dataset[np.arange(start, min(start + batch_size, total))]
        logits = model(inputs)
        total_loss += loss_fn(logits, labels) * len(labels)
        correct += int(np.sum(np.argmax(logits, axis=1) == labels))
    model.train()
    return correct / total, total_loss / total


def attack_impact(baseline_accuracy: float, attacked_accuracy: float) -> float:
    """The paper's attack-impact metric (Definition 3): accuracy drop vs baseline.

    Clamped below at 0 so a defense that happens to beat the undefended
    baseline reports zero impact rather than a negative one.
    """
    return max(float(baseline_accuracy) - float(attacked_accuracy), 0.0)


def selection_confusion(
    selected_indices: np.ndarray, byzantine_indices: np.ndarray, num_clients: int
) -> dict:
    """Benign/Byzantine selection counts for one round (Table II bookkeeping).

    All arguments are scoped to the round's gradient matrix: under partial
    participation ``num_clients`` is the number of *reporting* clients (the
    active cohort) and both index arrays are row positions within it, so
    the totals count the sampled benign/Byzantine clients of this round.

    Returns a dict with the number of benign and Byzantine clients selected
    and their totals.
    """
    selected_rows = np.asarray(selected_indices, dtype=np.int64).ravel()
    byzantine_rows = np.asarray(byzantine_indices, dtype=np.int64).ravel()
    selected = set(int(i) for i in selected_rows)
    byzantine = set(int(i) for i in byzantine_rows)
    benign = set(range(num_clients)) - byzantine
    return {
        "benign_selected": len(selected & benign),
        "benign_total": len(benign),
        "byzantine_selected": len(selected & byzantine),
        "byzantine_total": len(byzantine),
    }
