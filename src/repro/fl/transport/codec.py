"""Message codec for the distributed-collect transport.

Every frame payload is one *message*: a 1-byte type tag, a 4-byte
big-endian JSON-header length, the UTF-8 JSON header, and an opaque binary
body.  The header carries small structured fields (row ids, dtypes,
counters); the body carries bulk data — a :func:`encoded state dict
<encode_state_dict>` on the way out, nothing on most control messages.

State dicts travel as :func:`repro.utils.serialization.arrays_to_blob`
blobs (a JSON manifest plus raw C-order array bytes): decoding is
pickle-free, so a worker can parse a broadcast from an untrusted caller,
and the per-round cost is a straight memcpy per parameter.

Gradient shards travel as raw frames encoded by a **gradient wire
codec** — a :class:`GradientCodec` negotiated in the handshake (the
HELLO header's ``wire_codec`` field) and applied symmetrically: the
worker encodes its ``(rows, dim)`` shard, the caller decodes the frame
into its round buffer.  The registered codecs:

``raw``
    Today's behaviour and the default: the shard's bytes verbatim, one
    memcpy on each side, bit-exact for any payload (NaN/inf included).
    The caller still receives the frame straight into its round-buffer
    slice (:func:`~repro.fl.transport.framing.recv_frame_into`) — zero
    copies, byte-identical wire traffic to the pre-codec protocol.
``sign1bit``
    One packed sign bit per element plus one float32 scale per row
    (``mean(|g|)``), the natural wire format for the paper's
    sign-statistics defense — ~64x smaller than raw float64.
``int8`` / ``fp16``
    Linear 8-bit quantization (per-row scale ``max(|g|)/127``) and a
    float16 downcast — 8x / 4x smaller than raw float64.
``topk``
    Deterministic per-row top-k sparsification (largest ``|value|``
    entries, stable index tie-break) with per-client error-feedback
    residuals: what a round leaves out is added back into the client's
    next round, so the compression error telescopes instead of
    accumulating.  The residuals are worker-side state, fetched for
    checkpoints and re-shipped at setup like client RNG states.

Lossy codecs refuse non-finite payloads with :class:`CodecError` rather
than silently corrupting them (``raw`` round-trips them bit-exactly);
every codec round-trips empty and zero-row shards and accepts
non-C-contiguous or read-only input.

Protocol-version bump rules
---------------------------

``repro.fl.transport.protocol.PROTOCOL_VERSION`` must be bumped whenever
an already-released peer would *mis-parse* the conversation — not for
purely additive fields a peer can ignore.  Concretely:

* bump when a message's envelope, framing, or body layout changes, when
  a codec's wire payload layout changes, or when the meaning of an
  existing header field changes;
* bump when the handshake itself changes shape (v1 → v2 added the
  ``wire_codec`` negotiation: a v1 worker would silently serve raw
  frames to a caller expecting sign1bit payloads);
* do **not** bump for a *new* codec name — negotiation already refuses
  names a worker does not support, with a clear error naming both sides'
  expectations.

:func:`model_signature` digests a model's architecture — the sorted
``(name, dtype, shape)`` table of its parameters and buffers — into a
short hex string.  The handshake compares signatures so a caller can
never broadcast state dicts into a worker holding a differently-shaped
model (or a model left over from another experiment).
"""

from __future__ import annotations

import hashlib
import json
import math
import struct
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.nn.module import Module
from repro.utils.registry import Registry
from repro.utils.serialization import arrays_to_blob, blob_to_arrays

#: Array type used across the transport signatures.  The element dtype is
#: whatever the caller's round buffer carries (float32 or float64), so the
#: alias is deliberately dtype-generic.
Array = npt.NDArray[Any]

# -- message type tags -------------------------------------------------------

MSG_HELLO = 1  #: caller → worker: protocol version + model signature.
MSG_WELCOME = 2  #: worker → caller: handshake accepted (+ shard status).
MSG_ERROR = 3  #: either side: refusal with a human-readable reason.
MSG_SETUP = 4  #: caller → worker: pickled population shard + model replica.
MSG_READY = 5  #: worker → caller: shard installed and signature-verified.
MSG_ROUND = 6  #: caller → worker: per-round state dict + row slice.
MSG_SHARD = 7  #: worker → caller: gradient-shard announcement (raw frame next).
MSG_TRAILER = 8  #: worker → caller: losses, batch stats, RNG states, timing.
MSG_PING = 9  #: caller → worker: heartbeat probe.
MSG_PONG = 10  #: worker → caller: heartbeat reply.
MSG_BYE = 11  #: caller → worker: clean disconnect (worker keeps its shard).
MSG_RESET = 12  #: caller → worker: discard the held shard (re-setup follows).
MSG_STATE = 13  #: both ways: fetch / report stateful-codec state (topk residuals).

MESSAGE_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_WELCOME: "WELCOME",
    MSG_ERROR: "ERROR",
    MSG_SETUP: "SETUP",
    MSG_READY: "READY",
    MSG_ROUND: "ROUND",
    MSG_SHARD: "SHARD",
    MSG_TRAILER: "TRAILER",
    MSG_PING: "PING",
    MSG_PONG: "PONG",
    MSG_BYE: "BYE",
    MSG_RESET: "RESET",
    MSG_STATE: "STATE",
}

_ENVELOPE = struct.Struct("!BI")


class CodecError(ValueError):
    """A message payload does not parse under the envelope format."""


def pack_message(
    msg_type: int, header: Optional[Dict[str, Any]] = None, body: bytes = b""
) -> bytes:
    """Assemble one message payload (ready to be sent as a frame)."""
    header_bytes = json.dumps(header or {}).encode("utf-8")
    return b"".join([_ENVELOPE.pack(msg_type, len(header_bytes)), header_bytes, body])


def unpack_message(payload: bytes) -> Tuple[int, Dict[str, Any], bytes]:
    """Split a frame payload into ``(msg_type, header, body)``."""
    if len(payload) < _ENVELOPE.size:
        raise CodecError("message shorter than its envelope")
    msg_type, header_len = _ENVELOPE.unpack_from(payload)
    offset = _ENVELOPE.size
    if len(payload) < offset + header_len:
        raise CodecError("message truncated inside its header")
    try:
        header = json.loads(payload[offset : offset + header_len])
    except json.JSONDecodeError as exc:
        raise CodecError(f"message header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise CodecError("message header must be a JSON object")
    return msg_type, header, payload[offset + header_len :]


# -- state-dict broadcast ----------------------------------------------------


def encode_state_dict(state: Dict[str, Array]) -> bytes:
    """Binary-encode a ``Module.state_dict()`` for broadcast (no pickle)."""
    return arrays_to_blob(state)


def decode_state_dict(blob: bytes) -> Dict[str, Array]:
    """Decode a broadcast back into a ``{name: array}`` state dict.

    The arrays are read-only views into ``blob``;
    ``Module.load_state_dict`` copies them into the live parameters, so no
    extra copy is needed here.
    """
    return blob_to_arrays(blob)


# -- model signature ---------------------------------------------------------


def model_signature(model: Module) -> str:
    """Short architecture digest of ``model`` for the transport handshake.

    Two models share a signature exactly when their named parameters and
    buffers agree on name, dtype, and shape — the condition under which a
    state-dict broadcast from one loads into the other.  Parameter
    *values* are deliberately excluded: they change every round.
    """
    table = sorted(
        (name, param.data.dtype.str, param.data.shape)
        for name, param in model.named_parameters()
    ) + sorted(
        (name, buffer.dtype.str, buffer.shape)
        for name, buffer in model.named_buffers()
    )
    digest = hashlib.sha256(repr(table).encode("utf-8"))
    return digest.hexdigest()[:16]


# -- gradient wire codecs ----------------------------------------------------

#: Registered gradient wire codecs (``TrainingConfig(wire_codec=...)``).
GRADIENT_CODECS = Registry("wire codec")


def wire_codec_names() -> Tuple[str, ...]:
    """All registered wire-codec names, sorted (for errors and validation)."""
    return tuple(GRADIENT_CODECS.names())


def build_codec(name: str, **kwargs: Any) -> "GradientCodec":
    """Instantiate the wire codec registered under ``name``.

    Raises ``ValueError`` (not ``KeyError``) on an unknown name so config
    validation surfaces it uniformly with the other registry checks.
    """
    try:
        codec = GRADIENT_CODECS.create(name, **kwargs)
    except KeyError:
        raise ValueError(
            f"unknown wire codec {name!r}; registered: "
            f"{', '.join(wire_codec_names())}"
        ) from None
    if not isinstance(codec, GradientCodec):
        raise TypeError(
            f"wire codec {name!r} built a {type(codec).__name__}, "
            "not a GradientCodec"
        )
    return codec


def _as_shard(shard: Array) -> Array:
    """Validate and normalize an encoder input to a C-contiguous 2-D array.

    Non-C-contiguous (e.g. transposed or strided views) and read-only
    inputs are accepted — ``np.ascontiguousarray`` copies them; anything
    that is not a 2-D float array is a caller bug and raises
    :class:`CodecError` rather than serializing garbage.
    """
    # repro-lint: disable=dtype-discipline -- deliberately dtype-preserving:
    # the shard keeps the caller's float32/float64 dtype end to end.
    array = np.asarray(shard)
    if array.ndim != 2:
        raise CodecError(
            f"gradient shard must be 2-D (rows, dim), got shape {array.shape}"
        )
    if array.dtype.kind != "f":
        raise CodecError(
            f"gradient shard must be a float array, got dtype {array.dtype}"
        )
    return np.ascontiguousarray(array)


def _require_finite(shard: Array, codec: str) -> None:
    """Lossy codecs refuse NaN/inf instead of silently corrupting them."""
    if shard.size and not np.all(np.isfinite(shard)):
        raise CodecError(
            f"wire codec {codec!r} cannot represent non-finite gradients "
            "(NaN/inf found in the shard); use wire_codec='raw' to ship "
            "them bit-exactly"
        )


def _check_out(out: Array, rows: int, dim: int, codec: str) -> Array:
    # repro-lint: disable=dtype-discipline -- view of the caller's round
    # buffer; decoding must write in whatever dtype that buffer carries.
    out = np.asarray(out)
    if out.ndim != 2 or out.shape != (rows, dim):
        raise CodecError(
            f"wire codec {codec!r} decoded a ({rows}, {dim}) shard but the "
            f"output buffer has shape {out.shape}"
        )
    return out


class GradientCodec:
    """One gradient wire format: ``(rows, dim)`` float shard ↔ bytes.

    The worker calls :meth:`encode` on the shard it computed; the caller
    calls :meth:`decode` on the received frame, writing into its round
    buffer.  ``decode(encode(x))`` is bit-exact for lossless codecs
    (:attr:`lossless`) and a documented, bounded approximation otherwise.

    Stateful codecs (:attr:`stateful` — currently ``topk``'s per-client
    error-feedback residuals) expose :meth:`state_dict` /
    :meth:`load_state_dict` keyed by global client id; the state lives on
    the encoding (worker) side and is fetched by the caller only for
    checkpoints.
    """

    #: Registry name, also the value negotiated in the handshake.
    name: str = ""
    #: True when decode(encode(x)) is bit-exact for every accepted input.
    lossless: bool = False
    #: True when encode() carries per-client state across rounds.
    stateful: bool = False

    def encode(
        self, shard: Array, client_ids: Optional[Sequence[int]] = None
    ) -> bytes:
        """Encode a ``(rows, dim)`` shard; row *r* belongs to
        ``client_ids[r]`` (stateful codecs require the ids)."""
        raise NotImplementedError

    def decode(self, payload: bytes, out: Array) -> None:
        """Decode ``payload`` into the preallocated ``(rows, dim)`` buffer
        ``out``; raises :class:`CodecError` on any shape/size mismatch."""
        raise NotImplementedError

    def state_dict(self) -> Dict[int, Array]:
        """Per-client codec state (``{}`` for stateless codecs)."""
        return {}

    def load_state_dict(self, states: Dict[int, Array]) -> None:
        """Replace the codec's per-client state (no-op when stateless)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


@GRADIENT_CODECS.register("raw")
class RawCodec(GradientCodec):
    """The identity codec: the shard's C-order bytes, verbatim.

    Bit-exact for any payload including NaN/inf, and byte-identical to
    the pre-codec wire format — the transport keeps its zero-copy receive
    path (:meth:`~repro.fl.transport.protocol.Channel.recv_raw_into`
    straight into the round buffer) when this codec is negotiated.
    """

    name = "raw"
    lossless = True

    def encode(
        self, shard: Array, client_ids: Optional[Sequence[int]] = None
    ) -> bytes:
        return _as_shard(shard).tobytes()

    def decode(self, payload: bytes, out: Array) -> None:
        # repro-lint: disable=dtype-discipline -- dtype-preserving view;
        # the raw codec ships whatever dtype the round buffer negotiated.
        out = np.asarray(out)
        rows, dim = out.shape
        expected = rows * dim * out.dtype.itemsize
        if len(payload) != expected:
            raise CodecError(
                f"raw payload is {len(payload)} bytes; buffer expects {expected}"
            )
        out[...] = np.frombuffer(payload, dtype=out.dtype).reshape(rows, dim)


_SIGN1BIT_HEADER = struct.Struct("!II")  # rows, dim


@GRADIENT_CODECS.register("sign1bit")
class Sign1BitCodec(GradientCodec):
    """Packed sign bits plus one float32 scale per row.

    ``encode`` ships ``sign(g)`` as one bit per element (``g >= 0`` maps
    to +1) and reconstructs ``±scale`` where ``scale = mean(|g|)`` per
    row — the magnitude that makes signSGD's update unbiased in
    expectation.  ~64x smaller than raw float64 (~32x vs float32).
    """

    name = "sign1bit"

    def encode(
        self, shard: Array, client_ids: Optional[Sequence[int]] = None
    ) -> bytes:
        shard = _as_shard(shard)
        _require_finite(shard, self.name)
        rows, dim = shard.shape
        scales = (
            np.mean(np.abs(shard), axis=1, dtype=np.float64)
            if dim
            else np.zeros(rows, dtype=np.float64)
        ).astype(np.float32)
        bits = np.packbits(shard >= 0.0)
        return b"".join(
            [_SIGN1BIT_HEADER.pack(rows, dim), scales.tobytes(), bits.tobytes()]
        )

    def decode(self, payload: bytes, out: Array) -> None:
        if len(payload) < _SIGN1BIT_HEADER.size:
            raise CodecError("sign1bit payload shorter than its header")
        rows, dim = _SIGN1BIT_HEADER.unpack_from(payload)
        out = _check_out(out, rows, dim, self.name)
        offset = _SIGN1BIT_HEADER.size
        expected = offset + rows * 4 + -(-rows * dim // 8)
        if len(payload) != expected:
            raise CodecError(
                f"sign1bit payload is {len(payload)} bytes, expected {expected}"
            )
        scales = np.frombuffer(payload, dtype=np.float32, count=rows, offset=offset)
        bits = np.frombuffer(payload, dtype=np.uint8, offset=offset + rows * 4)
        signs = np.unpackbits(bits, count=rows * dim).reshape(rows, dim)
        signs = signs.astype(out.dtype) * 2.0 - 1.0
        out[...] = signs * scales[:, None].astype(out.dtype)


_INT8_HEADER = struct.Struct("!II")  # rows, dim


@GRADIENT_CODECS.register("int8")
class Int8Codec(GradientCodec):
    """Per-row linear quantization to int8 (scale ``max(|g|)/127``).

    Reconstruction error is at most ``max(|g|)/254`` per element — half a
    quantization step.  8x smaller than raw float64 (4x vs float32).
    """

    name = "int8"

    def encode(
        self, shard: Array, client_ids: Optional[Sequence[int]] = None
    ) -> bytes:
        shard = _as_shard(shard)
        _require_finite(shard, self.name)
        rows, dim = shard.shape
        peaks = (
            np.max(np.abs(shard), axis=1)
            if dim
            else np.zeros(rows, dtype=np.float64)
        )
        scales = (peaks / 127.0).astype(np.float32)
        with np.errstate(divide="ignore", invalid="ignore"):
            quantized = np.where(
                scales[:, None] > 0.0,
                shard / scales[:, None].astype(shard.dtype),
                0.0,
            )
        quantized = np.clip(np.round(quantized), -127, 127).astype(np.int8)
        return b"".join(
            [_INT8_HEADER.pack(rows, dim), scales.tobytes(), quantized.tobytes()]
        )

    def decode(self, payload: bytes, out: Array) -> None:
        if len(payload) < _INT8_HEADER.size:
            raise CodecError("int8 payload shorter than its header")
        rows, dim = _INT8_HEADER.unpack_from(payload)
        out = _check_out(out, rows, dim, self.name)
        offset = _INT8_HEADER.size
        expected = offset + rows * 4 + rows * dim
        if len(payload) != expected:
            raise CodecError(
                f"int8 payload is {len(payload)} bytes, expected {expected}"
            )
        scales = np.frombuffer(payload, dtype=np.float32, count=rows, offset=offset)
        quantized = np.frombuffer(
            payload, dtype=np.int8, offset=offset + rows * 4
        ).reshape(rows, dim)
        out[...] = quantized.astype(out.dtype) * scales[:, None].astype(out.dtype)


_FP16_HEADER = struct.Struct("!II")  # rows, dim


@GRADIENT_CODECS.register("fp16")
class Fp16Codec(GradientCodec):
    """Float16 downcast: 4x smaller than raw float64 (2x vs float32).

    Round-trips bit-exactly for values exactly representable in float16
    (including every value a previous fp16 round produced); values whose
    magnitude overflows float16 (> 65504) raise :class:`CodecError`
    instead of silently becoming inf.  Subnormal underflow to zero is
    accepted — it is a rounding, not a corruption.
    """

    name = "fp16"

    def encode(
        self, shard: Array, client_ids: Optional[Sequence[int]] = None
    ) -> bytes:
        shard = _as_shard(shard)
        _require_finite(shard, self.name)
        rows, dim = shard.shape
        with np.errstate(over="ignore"):  # overflow is detected and refused
            half = shard.astype(np.float16)
        if half.size and not np.all(np.isfinite(half)):
            peak = float(np.max(np.abs(shard)))
            raise CodecError(
                f"wire codec 'fp16' overflows on |g| up to {peak:.4g} "
                "(float16 max is 65504); use int8 or raw for this payload"
            )
        return _FP16_HEADER.pack(rows, dim) + half.tobytes()

    def decode(self, payload: bytes, out: Array) -> None:
        if len(payload) < _FP16_HEADER.size:
            raise CodecError("fp16 payload shorter than its header")
        rows, dim = _FP16_HEADER.unpack_from(payload)
        out = _check_out(out, rows, dim, self.name)
        offset = _FP16_HEADER.size
        expected = offset + rows * dim * 2
        if len(payload) != expected:
            raise CodecError(
                f"fp16 payload is {len(payload)} bytes, expected {expected}"
            )
        half = np.frombuffer(payload, dtype=np.float16, offset=offset)
        out[...] = half.reshape(rows, dim).astype(out.dtype)


_TOPK_HEADER = struct.Struct("!IIIB")  # rows, dim, k, value itemsize


@GRADIENT_CODECS.register("topk")
class TopKCodec(GradientCodec):
    """Deterministic top-k sparsification with error-feedback residuals.

    Per row, the ``k = ceil(density * dim)`` largest-magnitude entries of
    ``g + residual`` are shipped (uint32 indices + full-precision
    values); everything left out becomes the client's next-round
    residual, so the compression error telescopes across rounds instead
    of accumulating.  Selection is deterministic: a stable sort on
    magnitude breaks ties by index.

    The residuals are **encoder-side state** keyed by global client id.
    They live in the worker that owns the client; the collector fetches
    them for checkpoints (``MSG_STATE``) and re-ships them at setup, like
    client RNG states.  A residual whose shape or dtype no longer matches
    the shard (a new model or precision) is silently discarded — the
    codec restarts that client from a zero residual.  When a worker dies
    mid-run, its clients' residuals fall back to the collector's
    last-fetched copy (or zero): a bounded, documented perturbation of
    the compression error, never a corruption.
    """

    name = "topk"
    stateful = True

    def __init__(self, density: float = 1.0 / 16.0) -> None:
        if not 0.0 < density <= 1.0:
            raise ValueError(f"topk density must be in (0, 1], got {density}")
        self.density = float(density)
        self.residuals: Dict[int, Array] = {}

    def _k(self, dim: int) -> int:
        return min(dim, max(1, math.ceil(self.density * dim))) if dim else 0

    def encode(
        self, shard: Array, client_ids: Optional[Sequence[int]] = None
    ) -> bytes:
        shard = _as_shard(shard)
        _require_finite(shard, self.name)
        rows, dim = shard.shape
        if client_ids is None:
            raise CodecError(
                "wire codec 'topk' requires the shard's client ids (its "
                "error-feedback residuals are keyed by client)"
            )
        ids = [int(i) for i in client_ids]
        if len(ids) != rows:
            raise CodecError(
                f"topk got {rows} shard rows but {len(ids)} client ids"
            )
        k = self._k(dim)
        pieces = [_TOPK_HEADER.pack(rows, dim, k, shard.dtype.itemsize)]
        for row, client_id in enumerate(ids):
            residual = self.residuals.get(client_id)
            if (
                residual is None
                or residual.shape != (dim,)
                or residual.dtype != shard.dtype
            ):
                residual = np.zeros(dim, dtype=shard.dtype)
            work = shard[row] + residual
            # Stable sort on -|work|: ties resolve to the lowest index on
            # every platform, so worker placement cannot change the wire.
            top = np.argsort(-np.abs(work), kind="stable")[:k]
            indices = np.sort(top).astype(np.uint32)
            values = np.ascontiguousarray(work[indices])
            next_residual = work.copy()
            next_residual[indices] = 0.0
            self.residuals[client_id] = next_residual
            pieces.append(indices.tobytes())
            pieces.append(values.tobytes())
        return b"".join(pieces)

    def decode(self, payload: bytes, out: Array) -> None:
        if len(payload) < _TOPK_HEADER.size:
            raise CodecError("topk payload shorter than its header")
        rows, dim, k, itemsize = _TOPK_HEADER.unpack_from(payload)
        out = _check_out(out, rows, dim, self.name)
        if itemsize != out.dtype.itemsize:
            raise CodecError(
                f"topk payload carries {itemsize}-byte values but the "
                f"buffer dtype is {out.dtype}"
            )
        row_bytes = k * (4 + itemsize)
        expected = _TOPK_HEADER.size + rows * row_bytes
        if len(payload) != expected:
            raise CodecError(
                f"topk payload is {len(payload)} bytes, expected {expected}"
            )
        out[...] = 0.0
        offset = _TOPK_HEADER.size
        for row in range(rows):
            indices = np.frombuffer(payload, dtype=np.uint32, count=k, offset=offset)
            values = np.frombuffer(
                payload, dtype=out.dtype, count=k, offset=offset + k * 4
            )
            if k and (len(indices) != len(np.unique(indices)) or indices[-1] >= dim):
                raise CodecError(
                    f"topk row {row} carries out-of-range or duplicate indices"
                )
            out[row, indices] = values
            offset += row_bytes

    def state_dict(self) -> Dict[int, Array]:
        return {
            client_id: residual.copy()
            for client_id, residual in self.residuals.items()
        }

    def load_state_dict(self, states: Dict[int, Array]) -> None:
        self.residuals = {
            int(client_id): np.array(residual, copy=True)
            for client_id, residual in (states or {}).items()
        }
