"""Message codec for the distributed-collect transport.

Every frame payload is one *message*: a 1-byte type tag, a 4-byte
big-endian JSON-header length, the UTF-8 JSON header, and an opaque binary
body.  The header carries small structured fields (row ids, dtypes,
counters); the body carries bulk data — a :func:`encoded state dict
<encode_state_dict>` on the way out, nothing on most control messages.

State dicts travel as :func:`repro.utils.serialization.arrays_to_blob`
blobs (a JSON manifest plus raw C-order array bytes): decoding is
pickle-free, so a worker can parse a broadcast from an untrusted caller,
and the per-round cost is a straight memcpy per parameter.  Gradient
shards never pass through this codec at all — they are raw frames
received directly into the caller's round buffer
(:func:`~repro.fl.transport.framing.recv_frame_into`).

:func:`model_signature` digests a model's architecture — the sorted
``(name, dtype, shape)`` table of its parameters and buffers — into a
short hex string.  The handshake compares signatures so a caller can
never broadcast state dicts into a worker holding a differently-shaped
model (or a model left over from another experiment).
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Dict, Tuple

import numpy as np

from repro.nn.module import Module
from repro.utils.serialization import arrays_to_blob, blob_to_arrays

# -- message type tags -------------------------------------------------------

MSG_HELLO = 1  #: caller → worker: protocol version + model signature.
MSG_WELCOME = 2  #: worker → caller: handshake accepted (+ shard status).
MSG_ERROR = 3  #: either side: refusal with a human-readable reason.
MSG_SETUP = 4  #: caller → worker: pickled population shard + model replica.
MSG_READY = 5  #: worker → caller: shard installed and signature-verified.
MSG_ROUND = 6  #: caller → worker: per-round state dict + row slice.
MSG_SHARD = 7  #: worker → caller: gradient-shard announcement (raw frame next).
MSG_TRAILER = 8  #: worker → caller: losses, batch stats, RNG states, timing.
MSG_PING = 9  #: caller → worker: heartbeat probe.
MSG_PONG = 10  #: worker → caller: heartbeat reply.
MSG_BYE = 11  #: caller → worker: clean disconnect (worker keeps its shard).
MSG_RESET = 12  #: caller → worker: discard the held shard (re-setup follows).

MESSAGE_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_WELCOME: "WELCOME",
    MSG_ERROR: "ERROR",
    MSG_SETUP: "SETUP",
    MSG_READY: "READY",
    MSG_ROUND: "ROUND",
    MSG_SHARD: "SHARD",
    MSG_TRAILER: "TRAILER",
    MSG_PING: "PING",
    MSG_PONG: "PONG",
    MSG_BYE: "BYE",
    MSG_RESET: "RESET",
}

_ENVELOPE = struct.Struct("!BI")


class CodecError(ValueError):
    """A message payload does not parse under the envelope format."""


def pack_message(
    msg_type: int, header: Dict[str, Any] = None, body: bytes = b""
) -> bytes:
    """Assemble one message payload (ready to be sent as a frame)."""
    header_bytes = json.dumps(header or {}).encode("utf-8")
    return b"".join([_ENVELOPE.pack(msg_type, len(header_bytes)), header_bytes, body])


def unpack_message(payload: bytes) -> Tuple[int, Dict[str, Any], bytes]:
    """Split a frame payload into ``(msg_type, header, body)``."""
    if len(payload) < _ENVELOPE.size:
        raise CodecError("message shorter than its envelope")
    msg_type, header_len = _ENVELOPE.unpack_from(payload)
    offset = _ENVELOPE.size
    if len(payload) < offset + header_len:
        raise CodecError("message truncated inside its header")
    try:
        header = json.loads(payload[offset : offset + header_len])
    except json.JSONDecodeError as exc:
        raise CodecError(f"message header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise CodecError("message header must be a JSON object")
    return msg_type, header, payload[offset + header_len :]


# -- state-dict broadcast ----------------------------------------------------


def encode_state_dict(state: Dict[str, np.ndarray]) -> bytes:
    """Binary-encode a ``Module.state_dict()`` for broadcast (no pickle)."""
    return arrays_to_blob(state)


def decode_state_dict(blob: bytes) -> Dict[str, np.ndarray]:
    """Decode a broadcast back into a ``{name: array}`` state dict.

    The arrays are read-only views into ``blob``;
    ``Module.load_state_dict`` copies them into the live parameters, so no
    extra copy is needed here.
    """
    return blob_to_arrays(blob)


# -- model signature ---------------------------------------------------------


def model_signature(model: Module) -> str:
    """Short architecture digest of ``model`` for the transport handshake.

    Two models share a signature exactly when their named parameters and
    buffers agree on name, dtype, and shape — the condition under which a
    state-dict broadcast from one loads into the other.  Parameter
    *values* are deliberately excluded: they change every round.
    """
    table = sorted(
        (name, param.data.dtype.str, param.data.shape)
        for name, param in model.named_parameters()
    ) + sorted(
        (name, buffer.dtype.str, buffer.shape)
        for name, buffer in model.named_buffers()
    )
    digest = hashlib.sha256(repr(table).encode("utf-8"))
    return digest.hexdigest()[:16]
