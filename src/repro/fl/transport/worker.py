"""The ``repro-worker`` server: serves one client-population shard over TCP.

A worker owns a chunk of the federation's client population (shipped once
at setup, together with a model replica) and then serves rounds: each
``ROUND`` message carries the global model's encoded ``state_dict()`` and
the sorted global client ids to compute this round; the worker loads the
state, runs its clients through the *same sequential collect loop the
in-process backends use* (so per-client RNG streams and BatchNorm
statistics behave identically), and streams the gradient shard back as
one raw frame followed by a trailer with losses, recorded batch
statistics, post-round RNG states, and timing.

The worker process is deliberately dumb and stateless across connections
apart from its shard: a caller that disconnects (cleanly or by crashing)
does not lose the shard — the next connection's handshake sees
``has_shard=True`` and skips setup, resuming the clients' RNG streams
where they stopped.  The flip side is intentional: while a shard is held,
the handshake refuses callers announcing a *different* model signature
(the acceptance contract — a broadcast can never load into a
differently-shaped model), so repurposing a standing fleet for a new
model architecture means restarting the workers.  Same-architecture
callers are admitted and can ``RESET`` + re-``SETUP`` the shard.

Run it from the console script installed with the package::

    repro-worker --port 9000

or, equivalently, ``python -m repro.fl.transport.worker --port 9000``.
With ``--port 0`` the OS picks a free port; the worker always prints a
``repro-worker listening on HOST:PORT`` line (flushed) so fleet tooling
can scrape the address.

Security note: after the handshake, ``SETUP`` bodies are unpickled — the
same trust model as Python's own ``multiprocessing``.  The unpickle path
is therefore **gated**: the ``repro-worker`` CLI refuses ``SETUP`` unless
started with ``--allow-pickle-setup``, because a CLI worker may be bound
to a non-loopback interface where any peer that can complete the
handshake could submit a pickle.  The in-process and local-subprocess
fleet helpers (:func:`~repro.fl.transport.fleet.start_thread_fleet`,
:func:`~repro.fl.transport.fleet.spawn_local_fleet`) enable the gate —
they only ever talk to themselves over loopback.  The handshake's
magic/version/signature checks guard against accidents, not adversaries;
the state-dict broadcasts and gradient shards themselves are
pickle-free.

Fault injection: ``--fault KIND@ROUND[:SECONDS]`` (repeatable) attaches a
:class:`~repro.fl.faults.FaultSchedule` to the worker — the one
fault-injection API shared with the in-process backends.  ``crash``
hard-exits the process upon *receiving* its N-th lifetime ``ROUND``
request (from the caller's side, a worker that died mid-round);
``stall`` sleeps SECONDS through it instead (a worker that times out);
``corrupt_frame`` answers it with a torn gradient frame (a worker whose
reply the framing layer rejects); ``refuse_connect`` silently drops the
N-th *connection attempt* (``HELLO``) — the failure the caller's
connect-retry policy exists to ride out.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fl.client import FederatedClient
from repro.fl.collector import _batch_stat_modules, _collect_client
from repro.fl.faults import FaultSchedule
from repro.fl.transport.codec import (
    MSG_BYE,
    MSG_ERROR,
    MSG_HELLO,
    MSG_PING,
    MSG_PONG,
    MSG_READY,
    MSG_RESET,
    MSG_ROUND,
    MSG_SETUP,
    MSG_SHARD,
    MSG_STATE,
    MSG_TRAILER,
    MSG_WELCOME,
    CodecError,
    GradientCodec,
    RawCodec,
    build_codec,
    decode_state_dict,
    model_signature,
    wire_codec_names,
)
from repro.fl.transport.framing import DEFAULT_MAX_FRAME_BYTES, FrameError
from repro.fl.transport.protocol import PROTOCOL_VERSION, Channel, check_hello
from repro.nn.module import Module
from repro.perf.timers import monotonic
from repro.utils.serialization import arrays_to_blob


class WorkerServer:
    """Serve a client-population shard for a distributed collect fleet.

    Args:
        host: interface to bind (default loopback — a localhost fleet).
        port: TCP port; 0 lets the OS choose (see :attr:`address`).
        max_frame_bytes: per-frame receive ceiling (oversized frames are
            refused before any allocation).
        fault_schedule: deterministic fault injection (see
            :mod:`repro.fl.faults`).  ``crash``/``stall``/``corrupt_frame``
            specs trigger on this worker's N-th lifetime ``ROUND`` request,
            ``refuse_connect`` on its N-th ``HELLO``.  A server is a fleet
            of one, so the schedule must target worker 0
            (:meth:`~repro.fl.faults.FaultSchedule.for_worker`).
        hard_crash: when True, ``crash`` faults ``os._exit`` the whole
            process (the CLI behaviour — real host death); when False (the
            in-process default), they close the listener and drop the
            connection, so a thread-fleet test's interpreter survives but
            callers observe the same dead worker.
        supported_codecs: gradient wire codecs this worker will serve
            (``None`` = every registered codec).  A caller announcing a
            codec outside the set is refused during the handshake with an
            error naming both sides' expectations.
        allow_pickle_setup: whether ``SETUP``/merge bodies (which are
            pickled) are accepted.  Defaults to True for programmatic use
            — in-process and local fleets only talk to themselves — but
            the ``repro-worker`` CLI defaults it to **False** so a worker
            reachable from elsewhere never unpickles an unexpected
            caller's payload unless the operator passed
            ``--allow-pickle-setup``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        fault_schedule: Optional[FaultSchedule] = None,
        hard_crash: bool = False,
        supported_codecs: Optional[Tuple[str, ...]] = None,
        allow_pickle_setup: bool = True,
    ):
        self.max_frame_bytes = int(max_frame_bytes)
        self.allow_pickle_setup = bool(allow_pickle_setup)
        self.supported_codecs = (
            tuple(supported_codecs)
            if supported_codecs is not None
            else wire_codec_names()
        )
        self.fault_schedule = fault_schedule or FaultSchedule()
        indices = self.fault_schedule.worker_indices()
        if indices not in ((), (0,)):
            raise ValueError(
                "a WorkerServer is a single worker; its fault schedule must "
                f"target worker 0, got workers {indices} — call "
                "FaultSchedule.for_worker() first"
            )
        self.hard_crash = bool(hard_crash)
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._closed = False
        # The shard: installed by the first SETUP, kept across connections.
        self._model: Optional[Module] = None
        self._clients: Dict[int, FederatedClient] = {}
        self._signature: Optional[str] = None
        # Wire-codec instances, one per negotiated codec name, kept across
        # connections alongside the shard: a stateful codec's per-client
        # residuals must survive a caller reconnect exactly like the
        # clients' RNG streams do.
        self._codecs: Dict[str, GradientCodec] = {}
        self._rounds_received = 0
        self._hellos_received = 0

    @property
    def address(self) -> str:
        """The ``host:port`` string callers pass as a worker spec."""
        return f"{self.host}:{self.port}"

    @property
    def has_shard(self) -> bool:
        return self._model is not None

    # -- serving -------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections (one at a time) until :meth:`close`."""
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            # Replies are several small writes around one large one; without
            # NODELAY, Nagle + the peer's delayed ACK can stall each reply
            # by tens of ms on non-loopback networks.
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = Channel(conn, max_frame_bytes=self.max_frame_bytes)
            try:
                self._serve_connection(channel)
            except (FrameError, CodecError, ConnectionError, OSError):
                pass  # caller vanished or spoke garbage; await the next one
            except Exception as exc:
                # A worker must outlive any single bad connection; refuse
                # and await the next caller.
                self._refuse(channel, f"worker error: {exc!r}")
            finally:
                channel.close()

    def start_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread (in-process localhost fleets)."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"repro-worker-{self.port}", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass

    # -- connection handling -------------------------------------------------

    def _refuse(self, channel: Channel, reason: str) -> None:
        try:
            channel.send(MSG_ERROR, {"error": reason})
        except OSError:  # pragma: no cover - peer already gone
            pass

    def _serve_connection(self, channel: Channel) -> None:
        msg_type, header, _ = channel.recv()
        if msg_type != MSG_HELLO:
            self._refuse(channel, "handshake must start with HELLO")
            return
        self._hellos_received += 1
        if self.fault_schedule.fires("refuse_connect", self._hellos_received):
            # Fault injection: hang up without a word.  The caller sees a
            # connection closed mid-handshake — the transient failure its
            # connect-retry policy is built for (a real HandshakeError,
            # being an explicit refusal, is deliberately NOT retried).
            return
        refusal = check_hello(header, self.supported_codecs)
        claimed_signature = header.get("model_signature")
        if refusal is None and self.has_shard and claimed_signature != self._signature:
            refusal = (
                f"model signature mismatch: worker holds {self._signature}, "
                f"caller announced {claimed_signature}"
            )
        if refusal is not None:
            self._refuse(channel, refusal)
            return
        wire_codec = header.get("wire_codec", "raw")
        channel.send(
            MSG_WELCOME,
            {
                "protocol": PROTOCOL_VERSION,
                "has_shard": self.has_shard,
                "num_clients": len(self._clients),
                "wire_codec": wire_codec,
                # Additive field (no version bump per the codec-module bump
                # rules): old callers ignore it, new callers can fail fast
                # instead of shipping a SETUP the worker will refuse.
                "accepts_pickle_setup": self.allow_pickle_setup,
            },
        )
        while True:
            msg_type, header, body = channel.recv()
            if msg_type == MSG_BYE:
                return
            if msg_type == MSG_PING:
                channel.send(MSG_PONG, {"has_shard": self.has_shard})
            elif msg_type == MSG_STATE:
                codec = self._codec(wire_codec)
                channel.send(
                    MSG_STATE,
                    {"wire_codec": codec.name, "stateful": codec.stateful},
                    arrays_to_blob(
                        {
                            str(client_id): residual
                            for client_id, residual in codec.state_dict().items()
                        }
                    ),
                )
            elif msg_type == MSG_RESET:
                # The caller disowns whatever shard this worker holds — a new
                # setup (usually with resumed RNG + codec states) follows.
                self._model = None
                self._clients = {}
                self._signature = None
                self._codecs = {}
                channel.send(MSG_READY, {"num_clients": 0})
            elif msg_type == MSG_SETUP:
                if header.get("merge"):
                    if not self._handle_merge(channel, wire_codec, body):
                        return
                elif not self._handle_setup(
                    channel, claimed_signature, wire_codec, body
                ):
                    return
            elif msg_type == MSG_ROUND:
                self._handle_round(channel, header, body, wire_codec)
            else:
                self._refuse(channel, f"unexpected message type {msg_type}")
                return

    def _codec(self, name: str) -> GradientCodec:
        """The (cached) codec instance negotiated under ``name``."""
        codec = self._codecs.get(name)
        if codec is None:
            codec = self._codecs[name] = build_codec(name)
        return codec

    def _refuse_pickle_setup(self, channel: Channel) -> None:
        self._refuse(
            channel,
            "this worker refuses pickled SETUP payloads (started without "
            "--allow-pickle-setup); restart it with the flag if you trust "
            "every caller that can reach it",
        )

    def _handle_setup(
        self, channel: Channel, claimed_signature: str, wire_codec: str, body: bytes
    ) -> bool:
        if not self.allow_pickle_setup:
            self._refuse_pickle_setup(channel)
            return False
        try:
            model, client_ids, clients, rng_states, codec_states = pickle.loads(body)
        except Exception as exc:
            # Most often a caller-local client class this process cannot
            # import; the shard is refused but the worker keeps serving.
            self._refuse(channel, f"SETUP payload failed to unpickle: {exc!r}")
            return False
        signature = model_signature(model)
        if signature != claimed_signature:
            self._refuse(
                channel,
                f"SETUP model signature {signature} does not match the "
                f"HELLO-announced {claimed_signature}",
            )
            return False
        if rng_states:
            # A resumed shard: fast-forward each client's sampling stream to
            # where it stood when this worker's predecessor last reported.
            for client_id, state in rng_states.items():
                clients[client_ids.index(client_id)].loader.rng_state = state
        self._model = model
        self._clients = dict(zip(client_ids, clients))
        self._signature = signature
        if codec_states:
            # A resumed shard also resumes the wire codec's per-client state
            # (topk error-feedback residuals) at the checkpointed values.
            self._codec(wire_codec).load_state_dict(codec_states)
        channel.send(MSG_READY, {"num_clients": len(clients)})
        return True

    def _handle_merge(self, channel: Channel, wire_codec: str, body: bytes) -> bool:
        """Merge re-dispatched clients into the held shard (no model ships)."""
        if not self.allow_pickle_setup:
            self._refuse_pickle_setup(channel)
            return False
        if self._model is None:
            self._refuse(channel, "merge SETUP requires an existing shard")
            return False
        try:
            _, client_ids, clients, rng_states, codec_states = pickle.loads(body)
        except Exception as exc:
            self._refuse(channel, f"SETUP payload failed to unpickle: {exc!r}")
            return False
        if rng_states:
            # Re-dispatched clients resume their sampling streams at their
            # last *completed* round — the dead worker never reported this
            # round's advance, so recomputing here is bit-identical.
            for client_id, state in rng_states.items():
                clients[client_ids.index(client_id)].loader.rng_state = state
        self._clients.update(zip(client_ids, clients))
        if codec_states:
            # Merge (not replace): this worker keeps the residuals of the
            # clients it already held and adopts the re-dispatched ones'
            # last-known residuals from the caller's cache.
            codec = self._codec(wire_codec)
            codec.load_state_dict({**codec.state_dict(), **codec_states})
        channel.send(MSG_READY, {"num_clients": len(self._clients)})
        return True

    def _handle_round(
        self, channel: Channel, header: dict, body: bytes, wire_codec: str
    ) -> None:
        self._rounds_received += 1
        if self.fault_schedule.fires("crash", self._rounds_received):
            if self.hard_crash:
                os._exit(17)  # fault injection: die without replying
            # In-process flavour: stop listening and hang up.  Callers see
            # exactly what a dead process shows them — a connection that
            # drops mid-round and a port that then refuses.
            self.close()
            raise ConnectionAbortedError("fault injection: crash")
        stall = self.fault_schedule.fires("stall", self._rounds_received)
        if stall is not None:
            time.sleep(stall.seconds)  # fault injection: miss the deadline
        if self.fault_schedule.fires("corrupt_frame", self._rounds_received):
            # Fault injection: announce the shard, then tear the gradient
            # frame.  Nothing was computed — client RNG streams are
            # untouched, so a re-dispatched recomputation stays bit-exact.
            rows = [int(row) for row in header["rows"]]
            dtype = np.dtype(header["dtype"])
            nbytes = len(rows) * int(header["dim"]) * dtype.itemsize
            channel.send(MSG_SHARD, {"rows": len(rows), "nbytes": nbytes})
            channel.send_raw(b"\x00" * min(8, max(nbytes - 1, 0)))
            raise ConnectionAbortedError("fault injection: corrupt frame")
        if self._model is None:
            self._refuse(channel, "ROUND before SETUP: worker holds no shard")
            return
        rows = [int(row) for row in header["rows"]]
        dtype = np.dtype(header["dtype"])
        dim = int(header["dim"])
        if dim != self._model.num_parameters():
            self._refuse(
                channel,
                f"round dim {dim} does not match the shard model's "
                f"{self._model.num_parameters()} parameters",
            )
            return
        unknown = [row for row in rows if row not in self._clients]
        if unknown:
            self._refuse(channel, f"rows {unknown} are not in this worker's shard")
            return
        self._model.load_state_dict(decode_state_dict(body))
        shard = np.full((len(rows), dim), np.nan, dtype=dtype)
        stat_modules = _batch_stat_modules(self._model)
        start = monotonic()
        count = 0
        losses: List[Tuple[int, float]] = []
        stats: List[Tuple[int, list]] = []
        error: Optional[BaseException] = None
        for position, row in enumerate(rows):
            client = self._clients[row]
            try:
                client_stats = _collect_client(
                    client, self._model, shard[position], stat_modules
                )
            except BaseException as exc:  # propagate to the caller
                error = exc
                break
            count += 1
            losses.append((row, client.last_loss))
            stats.append((row, client_stats))
        seconds = monotonic() - start
        if error is not None:
            try:
                pickle.dumps(error)
            except Exception:
                error = RuntimeError(
                    f"unpicklable client exception on worker {self.address}: "
                    f"{error!r}"
                )
        rng_states = {row: self._clients[row].loader.rng_state for row, _ in losses}
        codec = self._codec(wire_codec)
        if isinstance(codec, RawCodec):
            # Fast path, byte-identical to the pre-codec protocol: the SHARD
            # header carries no codec key and the frame is the shard's bytes.
            channel.send(MSG_SHARD, {"rows": len(rows), "nbytes": shard.nbytes})
            channel.send_raw(shard.tobytes())
        else:
            if error is not None:
                # Rows past the failing client are still NaN; the caller
                # raises the error without aggregating, but a lossy codec
                # (rightly) refuses non-finite input — neutralise it.
                np.nan_to_num(shard, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
            payload = codec.encode(shard, rows)
            channel.send(
                MSG_SHARD,
                {"rows": len(rows), "nbytes": len(payload), "codec": codec.name},
            )
            channel.send_raw(payload)
        channel.send(
            MSG_TRAILER,
            {},
            pickle.dumps(
                {
                    "losses": losses,
                    "stats": stats,
                    "rng_states": rng_states,
                    "seconds": seconds,
                    "count": count,
                    "error": error,
                }
            ),
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Serve a client-population shard for distributed gradient "
            "collection (TrainingConfig(collect_backend='distributed'))."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = OS-assigned)"
    )
    parser.add_argument(
        "--max-frame-mb",
        type=float,
        default=DEFAULT_MAX_FRAME_BYTES / 2**20,
        help="per-frame receive ceiling in MiB",
    )
    parser.add_argument(
        "--allow-pickle-setup",
        action="store_true",
        help=(
            "accept pickled SETUP payloads (required to serve a fleet; "
            "off by default because unpickling executes caller-chosen "
            "code — enable only where every reachable caller is trusted)"
        ),
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="KIND@ROUND[:SECONDS]",
        help=(
            "fault injection (repeatable): crash@N / stall@N[:SECS] / "
            "corrupt_frame@N trigger on the N-th round request, "
            "refuse_connect@N on the N-th connection attempt"
        ),
    )
    args = parser.parse_args(argv)
    server = WorkerServer(
        args.host,
        args.port,
        max_frame_bytes=int(args.max_frame_mb * 2**20),
        fault_schedule=FaultSchedule.from_args(args.fault),
        hard_crash=True,
        allow_pickle_setup=bool(args.allow_pickle_setup),
    )
    print(f"repro-worker listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
