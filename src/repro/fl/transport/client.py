"""Caller-side connection to one ``repro-worker``.

A :class:`WorkerConnection` owns the socket to a single worker and speaks
the protocol in :mod:`repro.fl.transport.protocol`: handshake at connect
time, an optional one-time population-shard setup, then per-round
broadcast/gather exchanges.  The
:class:`~repro.fl.transport.collector.DistributedCollector` holds one
connection per configured worker.

The round exchange is split into :meth:`begin_round` (send only) and
:meth:`finish_round` (receive) so the collector can broadcast the round
to every worker first and only then start gathering — workers compute
concurrently while the caller drains replies one by one.
"""

from __future__ import annotations

import pickle
import socket
import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.fl.client import FederatedClient
from repro.fl.transport.codec import (
    MSG_BYE,
    MSG_HELLO,
    MSG_PING,
    MSG_PONG,
    MSG_READY,
    MSG_RESET,
    MSG_ROUND,
    MSG_SETUP,
    MSG_SHARD,
    MSG_STATE,
    MSG_TRAILER,
    MSG_WELCOME,
    RawCodec,
    build_codec,
    model_signature,
)
from repro.fl.transport.framing import DEFAULT_MAX_FRAME_BYTES, FrameError
from repro.fl.transport.protocol import (
    Channel,
    HandshakeError,
    RemoteWorkerError,
    TransportError,
    hello_header,
)
from repro.nn.module import Module
from repro.utils.rng import RngLike, as_rng
from repro.utils.serialization import blob_to_arrays


def parse_address(spec: str) -> tuple:
    """Split a ``host:port`` worker spec (IPv6 hosts use ``[...]:port``)."""
    spec = spec.strip()
    host, separator, port = spec.rpartition(":")
    if not separator or not host:
        raise ValueError(f"worker spec must look like host:port, got {spec!r}")
    host = host.strip("[]")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"worker spec has a non-integer port: {spec!r}") from exc


class WorkerConnection:
    """One caller↔worker connection of a distributed collect fleet.

    Args:
        address: the worker's ``host:port`` spec.
        connect_timeout: socket timeout for connect/handshake/setup.
        round_timeout: socket timeout while waiting for a round reply —
            exceeding it is the "straggler worker" failure the collector
            maps onto dropout semantics.  ``None`` waits forever.
        retry_attempts: how many connect attempts
            :meth:`connect_with_retry` makes before giving up (1 = no
            retrying).
        retry_backoff: base delay of the exponential backoff between
            attempts (doubled per attempt, jittered, capped at
            ``retry_backoff_max``).
        retry_backoff_max: ceiling on a single backoff sleep.
        retry_rng: seed or generator for the backoff jitter — seeded by
            the collector so retry timing is as reproducible as the rest
            of the run.
        wire_codec: gradient wire codec negotiated at HELLO time; the
            worker encodes its shard frames with it and this connection
            decodes them into the caller's round buffer.  The default
            ``raw`` keeps the pre-codec wire format byte for byte.
    """

    def __init__(
        self,
        address: str,
        *,
        connect_timeout: float = 10.0,
        round_timeout: Optional[float] = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        retry_attempts: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 2.0,
        retry_rng: RngLike = None,
        wire_codec: str = "raw",
    ):
        if retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, got {retry_attempts}")
        if retry_backoff <= 0 or retry_backoff_max <= 0:
            raise ValueError("retry backoff delays must be > 0")
        self.address = address
        self.host, self.port = parse_address(address)
        self.connect_timeout = float(connect_timeout)
        self.round_timeout = round_timeout
        self.max_frame_bytes = int(max_frame_bytes)
        self.retry_attempts = int(retry_attempts)
        self.retry_backoff = float(retry_backoff)
        self.retry_backoff_max = float(retry_backoff_max)
        self._retry_rng = as_rng(retry_rng)
        self._codec = build_codec(wire_codec)
        self.wire_codec = self._codec.name
        self._channel: Optional[Channel] = None
        self.has_shard = False
        self._drained_sent = 0
        self._drained_received = 0
        #: Successful connects after the first — how often this worker's
        #: link was repaired over the connection's lifetime.
        self.reconnects = 0
        #: Failed connect attempts (each consumed one retry budget slot).
        self.connect_failures = 0
        self._ever_connected = False

    @property
    def connected(self) -> bool:
        return self._channel is not None

    @property
    def bytes_sent(self) -> int:
        """Lifetime bytes sent to this worker, across reconnects."""
        current = self._channel.bytes_sent if self._channel else 0
        return self._drained_sent + current

    @property
    def bytes_received(self) -> int:
        """Lifetime bytes received from this worker, across reconnects."""
        current = self._channel.bytes_received if self._channel else 0
        return self._drained_received + current

    def connect(self, model: Module) -> None:
        """Open the socket and run the handshake for ``model``.

        Raises :class:`~repro.fl.transport.protocol.HandshakeError` (via
        the worker's ERROR reply) when the worker refuses — wrong protocol
        version, a wire codec the worker does not serve, or a shard built
        for a differently-shaped model.
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        channel = Channel(sock, max_frame_bytes=self.max_frame_bytes)
        try:
            channel.send(
                MSG_HELLO,
                hello_header(model_signature(model), wire_codec=self.wire_codec),
            )
            header, _ = channel.expect(MSG_WELCOME)
        except RemoteWorkerError as exc:
            channel.close()
            raise HandshakeError(f"worker {self.address} refused: {exc}") from exc
        except BaseException:
            channel.close()
            raise
        self._channel = channel
        self.has_shard = bool(header.get("has_shard"))
        if self._ever_connected:
            self.reconnects += 1
        self._ever_connected = True

    def connect_with_retry(self, model: Module) -> None:
        """:meth:`connect` under the bounded retry/backoff policy.

        Transient failures — connection refused, reset, timeout, a peer
        that closed mid-handshake — are retried up to ``retry_attempts``
        times with seeded exponential backoff plus jitter.  A
        :class:`~repro.fl.transport.protocol.HandshakeError` is
        *permanent* (wrong protocol version or model signature: the
        worker answered and said no) and is raised immediately — retrying
        a refusal would only re-earn it.
        """
        last_error: Optional[BaseException] = None
        for attempt in range(self.retry_attempts):
            if attempt:
                delay = min(
                    self.retry_backoff_max,
                    self.retry_backoff * (2 ** (attempt - 1)),
                )
                # Full jitter in [delay, 2*delay): desynchronizes a fleet of
                # callers re-connecting to the same recovered worker.
                time.sleep(delay * (1.0 + float(self._retry_rng.random())))
            try:
                self.connect(model)
                return
            except HandshakeError:
                raise
            except (TransportError, FrameError, OSError) as exc:
                self.connect_failures += 1
                last_error = exc
        assert last_error is not None
        raise last_error

    def reset(self) -> None:
        """Tell the worker to discard whatever shard it holds."""
        channel = self._require_channel()
        channel.send(MSG_RESET)
        channel.expect(MSG_READY)
        self.has_shard = False

    def setup(
        self,
        model: Module,
        client_ids: Sequence[int],
        clients: Sequence[FederatedClient],
        rng_states: Optional[Dict[int, dict]] = None,
        codec_states: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        """Ship the worker its population shard (once per worker process).

        This is the protocol's largest transfer (every client carries its
        local dataset), so it runs under ``round_timeout`` — the knob
        sized for bulk payloads — not the handshake's ``connect_timeout``.
        ``codec_states`` resumes a stateful wire codec's per-client state
        (topk error-feedback residuals) alongside the RNG states.
        """
        channel = self._require_channel()
        channel.settimeout(self.round_timeout)
        channel.send(
            MSG_SETUP,
            {},
            pickle.dumps(
                (
                    model,
                    [int(i) for i in client_ids],
                    list(clients),
                    rng_states,
                    codec_states,
                )
            ),
        )
        channel.expect(MSG_READY)
        self.has_shard = True

    def extend(
        self,
        client_ids: Sequence[int],
        clients: Sequence[FederatedClient],
        rng_states: Optional[Dict[int, dict]] = None,
        codec_states: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        """Merge extra clients into the worker's *existing* shard.

        This is the re-dispatch path: when another worker dies mid-round,
        its clients (with their last-known RNG states, and — for a
        stateful wire codec — their last-known residuals) are shipped to
        a survivor, which then recomputes the lost rows.  The worker
        keeps its original clients; the merged ones are replaced if
        already present.  Requires a held shard (the worker refuses
        otherwise — merging into nothing would skip the model transfer).
        """
        channel = self._require_channel()
        channel.settimeout(self.round_timeout)
        channel.send(
            MSG_SETUP,
            {"merge": True},
            pickle.dumps(
                (
                    None,
                    [int(i) for i in client_ids],
                    list(clients),
                    rng_states,
                    codec_states,
                )
            ),
        )
        channel.expect(MSG_READY)

    def begin_round(
        self, state_blob: bytes, rows: Sequence[int], dtype: np.dtype, dim: int
    ) -> None:
        """Send the round's broadcast (state dict + row slice) — no wait."""
        channel = self._require_channel()
        channel.settimeout(self.round_timeout)
        channel.send(
            MSG_ROUND,
            {
                "rows": [int(row) for row in rows],
                "dtype": np.dtype(dtype).str,
                "dim": int(dim),
            },
            state_blob,
        )

    def finish_round(self, out: np.ndarray) -> Dict[str, Any]:
        """Gather the worker's shard into ``out`` and return its trailer.

        ``out`` must be the C-contiguous ``(len(rows), dim)`` slice of the
        caller's round buffer that this worker's rows occupy.  With the
        ``raw`` codec the gradient frame is received straight into it, no
        intermediate copy; other codecs receive the encoded payload and
        decode it into ``out``.
        """
        channel = self._require_channel()
        header, _ = channel.expect(MSG_SHARD)
        announced = header.get("codec", "raw")
        if announced != self.wire_codec:
            raise TransportError(
                f"worker {self.address} answered with codec {announced!r}, "
                f"this connection negotiated {self.wire_codec!r}"
            )
        expected = int(header["nbytes"])
        if isinstance(self._codec, RawCodec):
            view = memoryview(out).cast("B")
            if expected != len(view):
                raise TransportError(
                    f"worker {self.address} announced a {expected}-byte shard "
                    f"for a {len(view)}-byte buffer slice"
                )
            channel.recv_raw_into(view)
        else:
            payload = channel.recv_raw()
            if expected != len(payload):
                raise TransportError(
                    f"worker {self.address} announced a {expected}-byte "
                    f"encoded shard but sent {len(payload)} bytes"
                )
            self._codec.decode(payload, out)
        _, body = channel.expect(MSG_TRAILER)
        return pickle.loads(body)

    def fetch_codec_state(self) -> Dict[int, np.ndarray]:
        """Fetch the worker's per-client wire-codec state (for checkpoints).

        Returns an empty dict for stateless codecs; for ``topk`` it is the
        worker-held error-feedback residual per client id.
        """
        channel = self._require_channel()
        channel.settimeout(self.round_timeout)
        channel.send(MSG_STATE)
        _, body = channel.expect(MSG_STATE)
        return {
            int(client_id): residual.copy()
            for client_id, residual in blob_to_arrays(body).items()
        }

    def ping(self) -> bool:
        """Heartbeat: True when the worker answers PONG in time."""
        if self._channel is None:
            return False
        try:
            self._channel.settimeout(self.connect_timeout)
            self._channel.send(MSG_PING)
            self._channel.expect(MSG_PONG)
            return True
        except (TransportError, OSError):
            self.drop()
            return False

    def drop(self) -> None:
        """Abandon the connection (after an error); the socket is closed."""
        if self._channel is not None:
            self._drained_sent += self._channel.bytes_sent
            self._drained_received += self._channel.bytes_received
            self._channel.close()
            self._channel = None
        self.has_shard = False

    def close(self) -> None:
        """Politely disconnect; the worker keeps its shard for a resume."""
        if self._channel is not None:
            try:
                self._channel.send(MSG_BYE)
            except OSError:
                pass
            self.drop()

    def _require_channel(self) -> Channel:
        if self._channel is None:
            raise TransportError(f"worker {self.address} is not connected")
        return self._channel
