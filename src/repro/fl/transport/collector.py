"""The distributed collect backend: a fleet of ``repro-worker`` servers.

:class:`DistributedCollector` is the fourth
:class:`~repro.fl.collector.GradientCollector` backend
(``TrainingConfig(collect_backend="distributed", workers=[...])``).  It
takes the same contract the in-process backends satisfy — fill a
preallocated round buffer with the selected clients' gradients,
bit-identically to the sequential loop — across TCP:

* the client population is chunked **contiguously** over the workers
  (``np.array_split``), so each worker's rows occupy one contiguous slice
  of the (sorted-row) round buffer and its gradient shard is received
  straight into that slice — one gather, no per-gradient pickling;
* per round, every live worker gets the encoded global ``state_dict()``
  and its slice of the round's rows; workers compute concurrently while
  the caller drains replies;
* client batch-sampling RNG streams live *inside* the owning worker and
  advance exactly once per computed round, so a healthy fleet is
  bit-identical to the sequential backend at any worker count, including
  sampled ``rows=`` cohorts;
* BatchNorm batch statistics come back in the trailers and are replayed
  onto the global model in ascending client order — the plan order every
  backend shares.

Failure semantics — the part that differs from the in-process backends:
a worker that dies, times out, or refuses mid-round does **not** raise.
The collector climbs a recovery ladder instead:

1. **retry** — connects go through
   :meth:`~repro.fl.transport.client.WorkerConnection.connect_with_retry`
   (bounded attempts, seeded exponential backoff + jitter), so transient
   refusals never cost a round;
2. **re-dispatch** — a failed worker's rows are recomputed on the
   surviving workers within the same round: the lost clients are merged
   into survivors' shards together with their last-known post-round RNG
   states (shipped in every trailer), so the recomputation is
   bit-identical to what the dead worker would have produced and the
   round completes with **zero** dropouts;
3. **demote** — rows that no survivor could recover stay NaN-invalidated
   and are reported in :attr:`failed_rows`; the simulation maps them onto
   the existing :class:`~repro.fl.participation.RoundPlan` dropout
   semantics (:meth:`~repro.fl.participation.RoundPlan.demote_to_dropped`),
   so the round completes with the surviving cohort.

On the next round the collector tries to reconnect; because the workers
report each client's post-round RNG state in their trailers, a
replacement worker resumes the lost clients' sampling streams exactly
where their last *completed* round left them — dropped rounds never
advance a client's stream, which keeps the run bit-identical to a
sequential run with the same dropout trace.  Exceptions raised by a
*client* inside a worker still propagate: a bug is a bug, not a dropout.

Only when no worker at all is reachable does :meth:`collect` raise — an
unreachable fleet is a deployment error, not a round-level failure.

A :class:`~repro.fl.faults.FaultSchedule` can be injected on the caller
side too (``fault_schedule=``): a spec targeting worker *w* at occurrence
*r* severs the link to that worker at the collector's *r*-th main collect
pass — the recovery ladder then runs exactly as it would for a real
failure.  (Worker-side injection — the ``repro-worker --fault`` flag —
exercises the same ladder from the other end.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.client import FederatedClient
from repro.fl.collector import (
    GradientCollector,
    _check_deterministic_forward,
    _replay_batch_stats,
    invalidate_buffer,
    resolve_rows,
)
from repro.fl.faults import FaultSchedule
from repro.fl.transport.client import WorkerConnection, parse_address
from repro.fl.transport.codec import CodecError, build_codec, encode_state_dict
from repro.fl.transport.framing import DEFAULT_MAX_FRAME_BYTES, FrameError
from repro.fl.transport.protocol import HandshakeError, TransportError
from repro.nn.module import Module


class DistributedCollector(GradientCollector):
    """Collect the round's gradients from a fleet of TCP workers.

    Args:
        workers: worker specs (``"host:port"`` strings), one per worker.
            The population is split contiguously across them in this
            order.
        connect_timeout: socket timeout for connect/handshake/setup.
        round_timeout: how long to wait for one worker's round reply
            before declaring it failed (its rows enter the recovery
            ladder).  ``None`` waits forever.
        max_frame_bytes: per-frame receive ceiling.
        retry_attempts: connect attempts per worker per repair
            (:meth:`~repro.fl.transport.client.WorkerConnection.\
            connect_with_retry`); 1 disables retrying.
        retry_backoff: base backoff delay between connect attempts
            (exponential, jittered, capped at ``retry_backoff_max``).
        retry_backoff_max: ceiling on one backoff sleep.
        retry_seed: seed for the per-worker backoff-jitter streams (the
            jitter is the only randomness the collector owns).
        redispatch: when True (default), a failed worker's rows are
            recomputed on surviving workers before any demotion; False
            skips straight to dropout semantics (useful to *observe* the
            demote rung of the ladder).
        fault_schedule: deterministic caller-side fault injection — a
            spec for worker ``w`` at occurrence ``r`` severs that link at
            this collector's ``r``-th main collect pass.
        wire_codec: gradient wire codec for the shard frames (see
            :data:`~repro.fl.transport.codec.GRADIENT_CODECS`); the
            default ``raw`` keeps the pre-codec wire format byte for
            byte.  Lossy codecs trade the collect contract's
            bit-exactness for bandwidth — their bounded error is
            characterised in the codec docs and contract tests.
    """

    def __init__(
        self,
        workers: Sequence[str],
        *,
        connect_timeout: float = 10.0,
        round_timeout: Optional[float] = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        retry_attempts: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_max: float = 2.0,
        retry_seed: int = 0,
        redispatch: bool = True,
        fault_schedule: Optional[FaultSchedule] = None,
        wire_codec: str = "raw",
    ):
        super().__init__(fault_schedule=fault_schedule)
        specs = [str(spec) for spec in workers]
        if not specs:
            raise ValueError("distributed collect requires at least one worker")
        for spec in specs:
            parse_address(spec)  # validate early, before any socket work
        if len(set(specs)) != len(specs):
            raise ValueError(f"duplicate worker specs: {specs}")
        self.worker_addresses = specs
        self.n_workers = len(specs)
        self.redispatch = bool(redispatch)
        # One decode-side codec instance validates the name up front; each
        # connection holds its own instance for the actual decoding.
        self._codec = build_codec(wire_codec)
        self.wire_codec = self._codec.name
        self._conns = [
            WorkerConnection(
                spec,
                connect_timeout=connect_timeout,
                round_timeout=round_timeout,
                max_frame_bytes=max_frame_bytes,
                retry_attempts=retry_attempts,
                retry_backoff=retry_backoff,
                retry_backoff_max=retry_backoff_max,
                # Independent jitter stream per worker, derived from one
                # seed, so retry timing is reproducible fleet-wide.
                retry_rng=np.random.default_rng([int(retry_seed), index]),
                wire_codec=self.wire_codec,
            )
            for index, spec in enumerate(specs)
        ]
        # True while the worker needs a (re-)setup before serving rounds:
        # initially, and again after any dropped connection — a worker that
        # stalled past the deadline may have advanced its clients' RNG
        # streams, so its in-memory shard can never be trusted again.
        self._needs_setup = [True] * self.n_workers
        self._chunks: List[np.ndarray] = []
        self._source_clients: Optional[Tuple[FederatedClient, ...]] = None
        self._source_model: Optional[Module] = None
        #: Latest known post-round RNG state per client id, fed into worker
        #: (re-)setups so resumed clients continue their streams bit-exactly.
        self._rng_states: Dict[int, dict] = {}
        #: Last-known per-client wire-codec state (topk error-feedback
        #: residuals), refreshed by :meth:`codec_states` fetches and fed
        #: into worker (re-)setups.  Deliberately NOT cleared when the
        #: fleet is rebuilt: a checkpoint restore loads it *before* the
        #: rebuild, and workers discard mismatched residuals themselves.
        self._codec_states: Dict[int, np.ndarray] = {}
        #: Client ids whose gradients the last ``collect`` could not obtain
        #: because their worker died or timed out (rows left NaN).
        self.failed_rows: Tuple[int, ...] = ()
        #: ``(bytes_sent, bytes_received)`` across the last ``collect``.
        self.last_round_bytes: Tuple[int, int] = (0, 0)
        #: Client ids recovered by re-dispatch during the last ``collect``.
        self.last_round_redispatched: Tuple[int, ...] = ()
        #: Successful worker reconnects during the last ``collect``.
        self.last_round_reconnects: int = 0
        # Most recent permanent handshake refusal (surfaced when the whole
        # fleet turns out unreachable — usually a codec/version mismatch).
        self._last_handshake_refusal: Optional[HandshakeError] = None

    # -- fleet management ----------------------------------------------------

    def _fleet_current(
        self, clients: Sequence[FederatedClient], model: Module
    ) -> bool:
        return bool(
            self._chunks
            and self._source_model is model
            and self._source_clients is not None
            and len(self._source_clients) == len(clients)
            and all(a is b for a, b in zip(self._source_clients, clients))
        )

    def _ensure_fleet(
        self, clients: Sequence[FederatedClient], model: Module
    ) -> None:
        if not self._fleet_current(clients, model):
            # New population or model: every worker gets a fresh shard and
            # all resume bookkeeping is discarded.
            for conn in self._conns:
                conn.close()
            self._needs_setup = [True] * self.n_workers
            self._chunks = np.array_split(np.arange(len(clients)), self.n_workers)
            self._rng_states = {}
            self._source_clients = tuple(clients)
            self._source_model = model
        for index, conn in enumerate(self._conns):
            if conn.connected and not self._needs_setup[index]:
                continue
            try:
                if not conn.connected:
                    conn.connect_with_retry(model)
                if conn.has_shard:
                    conn.reset()
                chunk = self._chunks[index]
                conn.setup(
                    model,
                    [int(i) for i in chunk],
                    [clients[i] for i in chunk],
                    {
                        int(i): self._rng_states[int(i)]
                        for i in chunk
                        if int(i) in self._rng_states
                    }
                    or None,
                    self._chunk_codec_states(chunk),
                )
                self._needs_setup[index] = False
            except HandshakeError as exc:
                # A refusal is permanent (wrong version, codec, or model
                # signature); remember it so an all-refused fleet raises
                # the reason instead of a bare "unreachable".
                self._last_handshake_refusal = exc
                conn.drop()
                self._needs_setup[index] = True
            except (TransportError, FrameError, CodecError, OSError):
                conn.drop()
                self._needs_setup[index] = True

    def _chunk_codec_states(
        self, ids: Sequence[int]
    ) -> Optional[Dict[int, np.ndarray]]:
        """The cached codec state slice to ship with a (re-)setup."""
        if not self._codec.stateful:
            return None
        return {
            int(i): self._codec_states[int(i)]
            for i in ids
            if int(i) in self._codec_states
        } or None

    def heartbeat(self) -> Dict[str, bool]:
        """Ping every connected worker; ``{address: alive}``."""
        return {conn.address: conn.ping() for conn in self._conns}

    # -- the collect contract ------------------------------------------------

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        rows: Optional[Sequence[int]] = None,
        *,
        apply_batch_stats: bool = True,
    ) -> np.ndarray:
        subset = resolve_rows(clients, out, rows)
        _check_deterministic_forward(model, type(self).__name__)
        # Straggler passes share the main pass's fault clock: a fault spec's
        # "round" means "this collector's N-th round", not its N-th network
        # exchange.
        fault_round = self._advance_fault_round(apply_batch_stats)
        reconnects_before = sum(conn.reconnects for conn in self._conns)
        self._ensure_fleet(clients, model)
        if not any(conn.connected for conn in self._conns):
            detail = ""
            if self._last_handshake_refusal is not None:
                detail = f"; last refusal: {self._last_handshake_refusal}"
            raise TransportError(
                f"no distributed-collect worker reachable "
                f"(fleet: {self.worker_addresses}){detail}"
            )
        bytes_before = self._wire_totals()
        invalidate_buffer(out)
        all_rows = np.arange(len(clients)) if subset is None else subset
        dim = out.shape[-1]
        state_blob = encode_state_dict(model.state_dict())

        # Broadcast first (workers compute concurrently), gather second.
        failed: List[int] = []
        pending: List[Tuple[int, int, int]] = []  # (worker index, lo, hi)
        for index, conn in enumerate(self._conns):
            chunk = self._chunks[index]
            if not len(chunk):
                continue
            lo = int(np.searchsorted(all_rows, chunk[0]))
            hi = int(np.searchsorted(all_rows, chunk[-1] + 1))
            if hi == lo:
                continue  # none of this worker's clients participate
            if self.fault_schedule.any_fires(fault_round, index):
                # Injected link fault: sever the connection before the
                # broadcast.  The worker never sees the round, so its
                # clients' RNG streams stay untouched — recovery (or
                # demotion) is bit-identical to a real dead link.
                self._mark_failed(index, all_rows[lo:hi], failed)
                continue
            if not conn.connected:
                failed.extend(int(i) for i in all_rows[lo:hi])
                continue
            try:
                conn.begin_round(state_blob, all_rows[lo:hi], out.dtype, dim)
                pending.append((index, lo, hi))
            except (TransportError, FrameError, CodecError, OSError):
                self._mark_failed(index, all_rows[lo:hi], failed)

        self.worker_timings = []
        stats_by_row: List[Tuple[int, list]] = []
        first_error: Optional[BaseException] = None
        for index, lo, hi in pending:
            conn = self._conns[index]
            try:
                trailer = conn.finish_round(out[lo:hi])
            except (TransportError, FrameError, CodecError, OSError):
                self._mark_failed(index, all_rows[lo:hi], failed)
                continue
            error = self._consume_trailer(conn, trailer, clients, stats_by_row)
            if error is not None and first_error is None:
                first_error = error

        # Recovery rung 2: recompute the failed rows on surviving workers
        # before falling back to dropout demotion.
        self.last_round_redispatched = ()
        if failed and self.redispatch and first_error is None:
            recovered, error = self._redispatch(
                clients, model, out, all_rows, sorted(failed),
                state_blob, stats_by_row,
            )
            if error is not None:
                first_error = error
            if recovered:
                recovered_set = set(recovered)
                failed = [row for row in failed if row not in recovered_set]
                self.last_round_redispatched = tuple(sorted(recovered))

        self.failed_rows = tuple(sorted(failed))
        self.last_round_reconnects = (
            sum(conn.reconnects for conn in self._conns) - reconnects_before
        )
        self.last_round_bytes = tuple(
            after - before for after, before in zip(self._wire_totals(), bytes_before)
        )
        if first_error is not None:
            raise first_error
        if apply_batch_stats:
            _replay_batch_stats(model, stats_by_row)
        return out

    def _consume_trailer(
        self,
        conn: WorkerConnection,
        trailer: Dict,
        clients: Sequence[FederatedClient],
        stats_by_row: List[Tuple[int, list]],
    ) -> Optional[BaseException]:
        """Fold one round trailer into the collect bookkeeping."""
        self.worker_timings.append(
            (conn.address, float(trailer["seconds"]), int(trailer["count"]))
        )
        for row, loss in trailer["losses"]:
            clients[row].last_loss = loss
        stats_by_row.extend(trailer["stats"])
        self._rng_states.update(trailer["rng_states"])
        return trailer["error"]

    def _redispatch(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        all_rows: np.ndarray,
        failed: Sequence[int],
        state_blob: bytes,
        stats_by_row: List[Tuple[int, list]],
    ) -> Tuple[List[int], Optional[BaseException]]:
        """Recompute ``failed`` rows on surviving (or repaired) workers.

        The failed clients are merged into the survivors' shards together
        with their last-known post-round RNG states, so the recomputation
        is bit-identical to what their own worker would have produced —
        the dead worker never reported this round, so the lost streams
        stand at the previous completed round.  A survivor that dies
        during recovery forfeits only its re-dispatch group (its own rows
        are already gathered); there is no recursive retry.
        """
        # Give failed workers one repaired chance first: _ensure_fleet
        # reconnects under the bounded backoff policy and re-ships shards
        # with resumed streams, so a transient link blip rejoins here.
        self._ensure_fleet(clients, model)
        survivors = [
            index
            for index, conn in enumerate(self._conns)
            if conn.connected and not self._needs_setup[index]
        ]
        if not survivors:
            return [], None
        dim = out.shape[-1]
        groups = np.array_split(np.asarray(failed, dtype=int), len(survivors))
        recovered: List[int] = []
        first_error: Optional[BaseException] = None
        for index, group in zip(survivors, groups):
            if not len(group):
                continue
            conn = self._conns[index]
            ids = [int(i) for i in group]
            try:
                conn.extend(
                    ids,
                    [clients[i] for i in ids],
                    {i: self._rng_states[i] for i in ids if i in self._rng_states}
                    or None,
                    # Best effort for a stateful codec: the dead worker's
                    # residuals since the last checkpoint fetch are lost (a
                    # bounded, documented perturbation); the survivor adopts
                    # the last-known cached ones.
                    self._chunk_codec_states(ids),
                )
                conn.begin_round(state_blob, ids, out.dtype, dim)
                scratch = np.empty((len(ids), dim), dtype=out.dtype)
                trailer = conn.finish_round(scratch)
            except (TransportError, FrameError, CodecError, OSError):
                conn.drop()
                self._needs_setup[index] = True
                continue
            # The recovered rows scatter back into the caller's buffer at
            # their plan positions (the groups are contiguous id ranges,
            # but their buffer rows need not be).
            out[np.searchsorted(all_rows, group)] = scratch
            error = self._consume_trailer(conn, trailer, clients, stats_by_row)
            if error is not None and first_error is None:
                first_error = error
            recovered.extend(ids)
        return recovered, first_error

    def client_rng_states(self) -> Dict[int, dict]:
        """Latest known post-round RNG state per client id (checkpointing).

        Worker-side streams are authoritative for every client that has
        completed at least one round; the caller's client objects still
        hold the correct (construction-time) state for the rest.
        """
        return dict(self._rng_states)

    def codec_states(self) -> Dict[int, np.ndarray]:
        """Per-client wire-codec state for checkpointing.

        For a stateless codec this is empty.  For ``topk`` the
        error-feedback residuals live inside the workers; this fetches
        them from every live worker (refreshing the caller-side cache
        used by re-setups) and returns copies.
        """
        if not self._codec.stateful:
            return {}
        for index, conn in enumerate(self._conns):
            if not conn.connected or self._needs_setup[index]:
                continue
            try:
                self._codec_states.update(conn.fetch_codec_state())
            except (TransportError, FrameError, CodecError, OSError):
                conn.drop()
                self._needs_setup[index] = True
        return {
            client_id: residual.copy()
            for client_id, residual in self._codec_states.items()
        }

    def load_codec_states(self, states: Dict[int, np.ndarray]) -> None:
        """Adopt checkpointed codec state; shipped at the next (re-)setup."""
        self._codec_states = {
            # repro-lint: disable=dtype-discipline -- checkpointed residuals
            # keep the dtype they were saved with (the codec negotiated it).
            int(client_id): np.asarray(residual).copy()
            for client_id, residual in states.items()
        }

    def _mark_failed(
        self, index: int, rows: np.ndarray, failed: List[int]
    ) -> None:
        """A worker died/timed out: drop its connection, record its rows."""
        self._conns[index].drop()
        self._needs_setup[index] = True
        failed.extend(int(i) for i in rows)

    def _wire_totals(self) -> Tuple[int, int]:
        return (
            sum(conn.bytes_sent for conn in self._conns),
            sum(conn.bytes_received for conn in self._conns),
        )

    def close(self) -> None:
        for conn in self._conns:
            conn.close()
        self._chunks = []
        self._source_clients = None
        self._source_model = None
        self._rng_states = {}
        self._codec_states = {}
        self._needs_setup = [True] * self.n_workers
