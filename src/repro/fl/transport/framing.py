"""Length-prefixed binary framing over a stream socket.

Every message on a transport connection is one *frame*: an 8-byte
big-endian unsigned payload length followed by the payload bytes.  Frames
make TCP's byte stream message-oriented without any external dependency,
and the explicit length lets the receiver stream a gradient shard straight
into a preallocated buffer slice (:func:`recv_frame_into`) instead of
materializing an intermediate bytes object.

Robustness rules, enforced on both ends:

* a frame longer than ``max_bytes`` is rejected *before* any payload is
  read (:class:`OversizedFrameError`) — a malicious or corrupted length
  prefix cannot make the receiver allocate unbounded memory;
* a connection that closes mid-frame raises
  :class:`TruncatedFrameError` — a half-received message is never handed
  to the caller as if it were complete.

Both are :class:`FrameError`\\ s; after either, the connection is dead and
must be closed (the stream position is no longer trustworthy).
"""

from __future__ import annotations

import socket
import struct

#: 8-byte big-endian unsigned frame-length prefix.
_LENGTH_PREFIX = struct.Struct("!Q")

#: Default ceiling on a single frame's payload (256 MiB) — comfortably
#: above any state-dict broadcast or gradient shard this repo produces,
#: far below what a hostile length prefix could request.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(ConnectionError):
    """A frame could not be read or violates the framing rules."""


class TruncatedFrameError(FrameError):
    """The peer closed the connection in the middle of a frame."""


class OversizedFrameError(FrameError):
    """A frame's declared length exceeds the receiver's ceiling."""


#: Below this payload size the prefix and chunks are joined into a single
#: ``sendall`` — one syscall and one TCP segment for control messages
#: (the copy is cheap).  Larger payloads (gradient shards, state dicts)
#: are sent without the extra copy; TCP_NODELAY on both ends keeps the
#: separate prefix write from stalling behind delayed ACKs.
_COALESCE_LIMIT = 1024 * 1024


def send_frame(sock: socket.socket, *chunks: bytes) -> int:
    """Send one frame whose payload is the concatenation of ``chunks``.

    Returns the total number of bytes put on the wire (prefix included).
    """
    payload_len = sum(len(chunk) for chunk in chunks)
    prefix = _LENGTH_PREFIX.pack(payload_len)
    if payload_len <= _COALESCE_LIMIT:
        sock.sendall(b"".join([prefix, *chunks]))
    else:
        sock.sendall(prefix)
        for chunk in chunks:
            if chunk:
                sock.sendall(chunk)
    return _LENGTH_PREFIX.size + payload_len


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from ``sock`` or raise on EOF."""
    received = 0
    while received < len(view):
        count = sock.recv_into(view[received:])
        if count == 0:
            raise TruncatedFrameError(
                f"connection closed mid-frame ({received}/{len(view)} bytes)"
            )
        received += count


def _recv_length(sock: socket.socket, max_bytes: int) -> int:
    prefix = bytearray(_LENGTH_PREFIX.size)
    _recv_exact_into(sock, memoryview(prefix))
    (length,) = _LENGTH_PREFIX.unpack(prefix)
    if length > max_bytes:
        raise OversizedFrameError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte ceiling"
        )
    return length


def recv_frame(
    sock: socket.socket, *, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Receive one complete frame payload.

    Raises :class:`TruncatedFrameError` if the peer closes mid-frame and
    :class:`OversizedFrameError` if the declared length exceeds
    ``max_bytes``.  A clean close *between* frames raises
    :class:`TruncatedFrameError` as well — distinguishing the two is the
    caller's protocol-level concern (send an explicit goodbye message).
    """
    length = _recv_length(sock, max_bytes)
    payload = bytearray(length)
    _recv_exact_into(sock, memoryview(payload))
    return bytes(payload)


def recv_frame_into(
    sock: socket.socket,
    view: memoryview,
    *,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> int:
    """Receive one frame directly into ``view`` (exact-size required).

    This is the zero-copy path for gradient shards: the caller hands the
    target slice of its preallocated round buffer and the payload is
    written in place.  A frame whose length differs from ``len(view)`` is
    a protocol violation and raises :class:`FrameError` (after which the
    connection is unusable, since the payload was not consumed).
    """
    length = _recv_length(sock, max_bytes)
    if length != len(view):
        raise FrameError(
            f"expected a {len(view)}-byte frame, peer announced {length} bytes"
        )
    _recv_exact_into(sock, view)
    return _LENGTH_PREFIX.size + length
