"""Connection protocol for the distributed-collect transport.

A :class:`Channel` binds a connected socket to the framing and codec
layers and counts bytes in both directions (the source of the
bytes-on-wire numbers the profiler and benchmarks report).

The wire conversation between a caller (the
:class:`~repro.fl.transport.collector.DistributedCollector`) and a worker
(:class:`~repro.fl.transport.worker.WorkerServer`):

1. **Handshake** — caller sends ``HELLO`` with the protocol version, the
   signature of the model it is about to serve
   (:func:`~repro.fl.transport.codec.model_signature`), and the gradient
   wire codec it expects shard frames in (``wire_codec``; see
   :data:`~repro.fl.transport.codec.GRADIENT_CODECS`).  The worker
   refuses (``ERROR`` + close) on a version mismatch, on a codec it does
   not support, or — when it already holds a population shard from an
   earlier connection — on a signature mismatch.  Otherwise it answers
   ``WELCOME`` with ``has_shard`` so the caller knows whether setup is
   needed.
2. **Setup** (only when the worker has no shard) — caller sends ``SETUP``
   carrying its chunk of the client population and a model replica; the
   worker verifies the replica's signature against the one claimed in
   ``HELLO`` and answers ``READY``.
3. **Rounds** — caller sends ``ROUND`` (encoded state dict + the round's
   row slice); worker computes and answers ``SHARD`` (announcement), one
   raw frame of gradient bytes — the shard encoded by the negotiated
   wire codec; with the default ``raw`` codec it is received straight
   into the caller's round buffer — and ``TRAILER`` (losses, BatchNorm
   batch statistics, post-round client RNG states, timing, first client
   error).
4. **Heartbeats** — ``PING``/``PONG`` at any point between rounds;
   ``STATE`` fetches a stateful codec's per-client state (topk
   error-feedback residuals) for checkpointing.
5. **Goodbye** — ``BYE``; the worker keeps its shard and accepts the next
   connection, so a restarted caller can resume without re-shipping.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.fl.transport.codec import (
    MESSAGE_NAMES,
    MSG_ERROR,
    pack_message,
    unpack_message,
    wire_codec_names,
)
from repro.fl.transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    recv_frame,
    recv_frame_into,
    send_frame,
)

#: Version of the wire protocol.  Bumped on any incompatible change; the
#: handshake refuses mismatched peers instead of mis-parsing their frames.
#: (See the bump rules in :mod:`repro.fl.transport.codec`.)
#: v2: HELLO negotiates the gradient wire codec (``wire_codec`` field);
#: SHARD frames carry codec-encoded payloads for non-raw codecs.
PROTOCOL_VERSION = 2

#: Leading bytes of every HELLO header's ``magic`` field.
PROTOCOL_MAGIC = "repro-collect"


class TransportError(ConnectionError):
    """Base class for transport-level failures."""


class HandshakeError(TransportError):
    """The peer refused the connection during the handshake."""


class RemoteWorkerError(TransportError):
    """The worker reported a protocol-level error after the handshake."""


class Channel:
    """A framed, byte-counted message channel over a connected socket."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.sock = sock
        self.max_frame_bytes = int(max_frame_bytes)
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(
        self,
        msg_type: int,
        header: Optional[Dict[str, Any]] = None,
        body: bytes = b"",
    ) -> None:
        self.bytes_sent += send_frame(self.sock, pack_message(msg_type, header, body))

    def recv(self) -> Tuple[int, Dict[str, Any], bytes]:
        payload = recv_frame(self.sock, max_bytes=self.max_frame_bytes)
        self.bytes_received += 8 + len(payload)
        return unpack_message(payload)

    def expect(self, msg_type: int) -> Tuple[Dict[str, Any], bytes]:
        """Receive one message and require it to be of ``msg_type``.

        An ``ERROR`` message raises :class:`RemoteWorkerError` with the
        peer's reason; any other unexpected type raises
        :class:`TransportError`.
        """
        received, header, body = self.recv()
        if received == msg_type:
            return header, body
        if received == MSG_ERROR:
            raise RemoteWorkerError(header.get("error", "peer refused the request"))
        raise TransportError(
            f"expected {MESSAGE_NAMES.get(msg_type, msg_type)}, peer sent "
            f"{MESSAGE_NAMES.get(received, received)}"
        )

    def send_raw(self, data: "bytes | bytearray | memoryview") -> None:
        """Send one raw (non-enveloped) frame — the gradient-shard path."""
        self.bytes_sent += send_frame(self.sock, bytes(data))

    def recv_raw(self) -> bytes:
        """Receive one raw frame as bytes — the encoded-shard path."""
        payload = recv_frame(self.sock, max_bytes=self.max_frame_bytes)
        self.bytes_received += 8 + len(payload)
        return payload

    def recv_raw_into(self, view: memoryview) -> None:
        """Receive one raw frame straight into ``view`` (exact size)."""
        self.bytes_received += recv_frame_into(
            self.sock, view, max_bytes=self.max_frame_bytes
        )

    def settimeout(self, timeout: Optional[float]) -> None:
        self.sock.settimeout(timeout)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def hello_header(signature: str, wire_codec: str = "raw") -> Dict[str, Any]:
    """The HELLO header a caller sends to open a connection."""
    return {
        "magic": PROTOCOL_MAGIC,
        "protocol": PROTOCOL_VERSION,
        "model_signature": signature,
        "wire_codec": wire_codec,
    }


def check_hello(
    header: Dict[str, Any],
    supported_codecs: Optional[Sequence[str]] = None,
) -> Optional[str]:
    """Validate an incoming HELLO header; return a refusal reason or None.

    ``supported_codecs`` restricts which gradient wire codecs the worker
    will serve (``None`` = every registered codec).  A caller announcing
    a codec outside that set is refused with an error naming both sides'
    expectations — the codec-mismatch analogue of the version check.
    """
    if header.get("magic") != PROTOCOL_MAGIC:
        return f"not a {PROTOCOL_MAGIC} peer"
    version = header.get("protocol")
    if version != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: worker speaks {PROTOCOL_VERSION}, "
            f"caller sent {version!r}"
        )
    if not isinstance(header.get("model_signature"), str):
        return "HELLO carries no model signature"
    codec = header.get("wire_codec", "raw")
    if not isinstance(codec, str):
        return f"HELLO carries a non-string wire codec: {codec!r}"
    supported = (
        tuple(supported_codecs)
        if supported_codecs is not None
        else wire_codec_names()
    )
    if codec not in supported:
        return (
            f"unsupported wire codec {codec!r}: this worker serves "
            f"{', '.join(sorted(supported))}"
        )
    return None
