"""Socket/RPC transport for multi-host federations.

This package takes the :class:`~repro.fl.collector.GradientCollector`
contract across the network: length-prefixed binary framing over TCP
(:mod:`~repro.fl.transport.framing`), a pickle-free codec for
``Module.state_dict()`` broadcasts plus pluggable gradient wire codecs
for the shard replies — ``raw``, ``sign1bit``, ``int8``, ``fp16``,
``topk`` (:mod:`~repro.fl.transport.codec`), a versioned handshake with a
model signature check, codec negotiation, and heartbeats
(:mod:`~repro.fl.transport.protocol`),
the ``repro-worker`` server (:mod:`~repro.fl.transport.worker`), and the
:class:`DistributedCollector` backend that drives a fleet of workers
(``TrainingConfig(collect_backend="distributed", workers=[...])``).

A healthy localhost fleet is bit-identical to the sequential backend at
any worker count; a worker that dies or times out mid-round degrades to
:class:`~repro.fl.participation.RoundPlan` dropouts instead of aborting
the run.
"""

from repro.fl.transport.client import WorkerConnection, parse_address
from repro.fl.transport.codec import (
    GRADIENT_CODECS,
    CodecError,
    Fp16Codec,
    GradientCodec,
    Int8Codec,
    RawCodec,
    Sign1BitCodec,
    TopKCodec,
    build_codec,
    model_signature,
    wire_codec_names,
)
from repro.fl.transport.collector import DistributedCollector
from repro.fl.transport.fleet import (
    LocalFleet,
    ThreadFleet,
    spawn_local_fleet,
    spawn_worker_process,
    start_thread_fleet,
)
from repro.fl.transport.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameError,
    OversizedFrameError,
    TruncatedFrameError,
)
from repro.fl.transport.protocol import (
    PROTOCOL_VERSION,
    HandshakeError,
    RemoteWorkerError,
    TransportError,
)
from repro.fl.transport.worker import WorkerServer

__all__ = [
    "DistributedCollector",
    "WorkerConnection",
    "WorkerServer",
    "LocalFleet",
    "ThreadFleet",
    "spawn_local_fleet",
    "spawn_worker_process",
    "start_thread_fleet",
    "parse_address",
    "model_signature",
    "GradientCodec",
    "RawCodec",
    "Sign1BitCodec",
    "Int8Codec",
    "Fp16Codec",
    "TopKCodec",
    "CodecError",
    "build_codec",
    "wire_codec_names",
    "GRADIENT_CODECS",
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameError",
    "TruncatedFrameError",
    "OversizedFrameError",
    "TransportError",
    "HandshakeError",
    "RemoteWorkerError",
    "PROTOCOL_VERSION",
]
