"""Localhost fleet helpers: spawn ``repro-worker`` processes or threads.

Production federations run ``repro-worker`` on real hosts; tests, the
benchmarks, and ``examples/distributed_collect.py`` need a throwaway
fleet on this machine.  Two flavours:

* :func:`spawn_local_fleet` — real ``repro-worker`` subprocesses (the
  exact entrypoint a deployment uses), each bound to an OS-assigned port
  scraped from its startup line.  Use this to exercise true process
  isolation, or to kill a worker and watch the dropout semantics.
* :func:`start_thread_fleet` — in-process
  :class:`~repro.fl.transport.worker.WorkerServer` threads.  Cheaper and
  quieter; the wire protocol is identical (real TCP sockets over
  loopback), only the process boundary is missing.

Both return context-managed handles that tear the fleet down on exit.
"""

from __future__ import annotations

import selectors
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence

from repro.fl.faults import FaultSchedule
from repro.perf.timers import monotonic
from repro.fl.transport.worker import WorkerServer


class WorkerProcess:
    """Handle on one spawned ``repro-worker`` subprocess."""

    def __init__(self, process: subprocess.Popen, address: str, stderr_file=None):
        self.process = process
        self.address = address
        self._stderr_file = stderr_file

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def stderr_tail(self, limit: int = 2000) -> str:
        """The last ``limit`` characters the worker wrote to stderr."""
        return _stderr_tail(self._stderr_file, limit)

    def _close_stderr(self) -> None:
        if self._stderr_file is not None:
            try:
                self._stderr_file.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._stderr_file = None

    def kill(self) -> None:
        """Hard-kill the worker (simulates a host failure)."""
        self.process.kill()
        self.process.wait(timeout=10)
        self._close_stderr()

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                self.process.kill()
                self.process.wait(timeout=5)
        self._close_stderr()


class LocalFleet:
    """A context-managed set of localhost worker processes."""

    def __init__(self, workers: List[WorkerProcess]):
        self.workers = workers

    @property
    def addresses(self) -> List[str]:
        return [worker.address for worker in self.workers]

    def terminate(self) -> None:
        for worker in self.workers:
            worker.terminate()

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


def _worker_environment() -> dict:
    """Subprocess environment with this interpreter's ``repro`` importable."""
    import os

    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else os.pathsep.join([package_root, existing])
    )
    return env


def _stderr_tail(stderr_file, limit: int = 2000) -> str:
    """Last ``limit`` characters of a captured-stderr file (``""`` if none)."""
    if stderr_file is None:
        return ""
    try:
        stderr_file.seek(0)
        text = stderr_file.read()
    except (OSError, ValueError):  # pragma: no cover - defensive
        return ""
    return text[-limit:].strip()


def spawn_worker_process(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    extra_args: Sequence[str] = (),
    startup_timeout: float = 30.0,
    worker_index: Optional[int] = None,
    allow_pickle_setup: bool = True,
) -> WorkerProcess:
    """Spawn one ``repro-worker`` subprocess and scrape its address.

    Startup is bounded: if the worker exits or stays silent past
    ``startup_timeout``, it is killed and a ``RuntimeError`` names the
    worker (``worker_index``, when given), its exit code, and the tail of
    its captured stderr — the actual traceback, not just "failed to
    start".

    ``allow_pickle_setup`` defaults to True (passing ``--allow-pickle-setup``
    to the subprocess): this helper spawns loopback workers for the caller
    itself, the trusted-operator case the CLI flag exists for.
    """
    label = "repro-worker" if worker_index is None else f"repro-worker {worker_index}"
    stderr_file = tempfile.TemporaryFile(mode="w+", prefix="repro-worker-stderr-")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.fl.transport.worker",
            "--host",
            host,
            "--port",
            str(port),
            *(["--allow-pickle-setup"] if allow_pickle_setup else []),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=stderr_file,
        text=True,
        env=_worker_environment(),
    )
    line = _read_line_with_timeout(process, startup_timeout)
    if line is None or "listening on" not in line:
        process.kill()
        process.wait(timeout=10)
        returncode = process.poll()
        detail = (
            f"exited with code {returncode}"
            if returncode is not None
            else f"printed no address within {startup_timeout:.0f}s"
        )
        tail = _stderr_tail(stderr_file)
        stderr_file.close()
        raise RuntimeError(
            f"{label} failed to start: {detail} (first stdout line: {line!r})"
            + (f"\n--- worker stderr ---\n{tail}" if tail else "")
        )
    address = line.rsplit(" ", 1)[-1].strip()
    return WorkerProcess(process, address, stderr_file)


def _read_line_with_timeout(process: subprocess.Popen, timeout: float):
    """First stdout line of ``process``, or None if ``timeout`` expires.

    A plain ``readline()`` would block forever on a worker that wedges
    before printing its address; waiting for the pipe to become readable
    first keeps the deadline real.  Once data arrives, ``readline()`` is
    safe: the worker prints its address as a single flushed write.  A
    worker that dies during startup is noticed immediately (EOF makes the
    pipe readable), not at the deadline.
    """
    deadline = monotonic() + timeout
    selector = selectors.DefaultSelector()
    selector.register(process.stdout, selectors.EVENT_READ)
    try:
        while monotonic() < deadline:
            if selector.select(timeout=0.1):
                return process.stdout.readline() or None
            if process.poll() is not None:  # died without writing anything
                return process.stdout.readline() or None
    finally:
        selector.close()
    return None


def spawn_local_fleet(
    n_workers: int,
    *,
    host: str = "127.0.0.1",
    extra_args: Sequence[str] = (),
    startup_timeout: float = 30.0,
    fault_schedule: Optional[FaultSchedule] = None,
) -> LocalFleet:
    """Spawn ``n_workers`` localhost ``repro-worker`` subprocesses.

    ``fault_schedule`` distributes a fleet-wide
    :class:`~repro.fl.faults.FaultSchedule` across the workers: each
    worker receives its own specs as ``--fault`` CLI arguments (worker
    *i*'s specs are re-keyed to the single-process worker's index 0).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    schedule = fault_schedule or FaultSchedule()
    for worker in schedule.worker_indices():
        if worker >= n_workers:
            raise ValueError(
                f"fault schedule targets worker {worker} but the fleet has "
                f"only {n_workers} workers"
            )
    workers: List[WorkerProcess] = []
    try:
        for index in range(n_workers):
            args = list(extra_args) + schedule.for_worker(index).to_cli_args()
            workers.append(
                spawn_worker_process(
                    host=host,
                    extra_args=args,
                    startup_timeout=startup_timeout,
                    worker_index=index,
                )
            )
    except BaseException:
        for worker in workers:
            worker.terminate()
        raise
    return LocalFleet(workers)


class ThreadFleet:
    """A context-managed set of in-process worker servers."""

    def __init__(self, servers: List[WorkerServer]):
        self.servers = servers
        for server in servers:
            server.start_in_thread()

    @property
    def addresses(self) -> List[str]:
        return [server.address for server in self.servers]

    def terminate(self) -> None:
        for server in self.servers:
            server.close()

    def __enter__(self) -> "ThreadFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


def start_thread_fleet(
    n_workers: int,
    *,
    fault_schedule: Optional[FaultSchedule] = None,
    **worker_kwargs,
) -> ThreadFleet:
    """Start ``n_workers`` in-process workers on OS-assigned loopback ports.

    ``fault_schedule`` is a fleet-wide
    :class:`~repro.fl.faults.FaultSchedule`: each server receives its own
    worker's specs (re-keyed to its local index 0).  Other
    :class:`WorkerServer` knobs in ``worker_kwargs`` apply to every
    worker.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    schedule = fault_schedule or FaultSchedule()
    for worker in schedule.worker_indices():
        if worker >= n_workers:
            raise ValueError(
                f"fault schedule targets worker {worker} but the fleet has "
                f"only {n_workers} workers"
            )
    servers = [
        WorkerServer(fault_schedule=schedule.for_worker(index), **worker_kwargs)
        for index in range(n_workers)
    ]
    return ThreadFleet(servers)
