"""Localhost fleet helpers: spawn ``repro-worker`` processes or threads.

Production federations run ``repro-worker`` on real hosts; tests, the
benchmarks, and ``examples/distributed_collect.py`` need a throwaway
fleet on this machine.  Two flavours:

* :func:`spawn_local_fleet` — real ``repro-worker`` subprocesses (the
  exact entrypoint a deployment uses), each bound to an OS-assigned port
  scraped from its startup line.  Use this to exercise true process
  isolation, or to kill a worker and watch the dropout semantics.
* :func:`start_thread_fleet` — in-process
  :class:`~repro.fl.transport.worker.WorkerServer` threads.  Cheaper and
  quieter; the wire protocol is identical (real TCP sockets over
  loopback), only the process boundary is missing.

Both return context-managed handles that tear the fleet down on exit.
"""

from __future__ import annotations

import selectors
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.fl.transport.worker import WorkerServer


class WorkerProcess:
    """Handle on one spawned ``repro-worker`` subprocess."""

    def __init__(self, process: subprocess.Popen, address: str):
        self.process = process
        self.address = address

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """Hard-kill the worker (simulates a host failure)."""
        self.process.kill()
        self.process.wait(timeout=10)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                self.process.kill()
                self.process.wait(timeout=5)


class LocalFleet:
    """A context-managed set of localhost worker processes."""

    def __init__(self, workers: List[WorkerProcess]):
        self.workers = workers

    @property
    def addresses(self) -> List[str]:
        return [worker.address for worker in self.workers]

    def terminate(self) -> None:
        for worker in self.workers:
            worker.terminate()

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


def _worker_environment() -> dict:
    """Subprocess environment with this interpreter's ``repro`` importable."""
    import os

    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else os.pathsep.join([package_root, existing])
    )
    return env


def spawn_worker_process(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    extra_args: Sequence[str] = (),
    startup_timeout: float = 30.0,
) -> WorkerProcess:
    """Spawn one ``repro-worker`` subprocess and scrape its address."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.fl.transport.worker",
            "--host",
            host,
            "--port",
            str(port),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_worker_environment(),
    )
    line = _read_line_with_timeout(process, startup_timeout)
    if line is None or "listening on" not in line:
        process.kill()
        raise RuntimeError(f"repro-worker failed to start (first line: {line!r})")
    address = line.rsplit(" ", 1)[-1].strip()
    return WorkerProcess(process, address)


def _read_line_with_timeout(process: subprocess.Popen, timeout: float):
    """First stdout line of ``process``, or None if ``timeout`` expires.

    A plain ``readline()`` would block forever on a worker that wedges
    before printing its address; waiting for the pipe to become readable
    first keeps the deadline real.  Once data arrives, ``readline()`` is
    safe: the worker prints its address as a single flushed write.
    """
    deadline = time.monotonic() + timeout
    selector = selectors.DefaultSelector()
    selector.register(process.stdout, selectors.EVENT_READ)
    try:
        while time.monotonic() < deadline:
            if selector.select(timeout=0.1):
                return process.stdout.readline() or None
    finally:
        selector.close()
    return None


def spawn_local_fleet(
    n_workers: int,
    *,
    host: str = "127.0.0.1",
    extra_args: Sequence[str] = (),
    startup_timeout: float = 30.0,
) -> LocalFleet:
    """Spawn ``n_workers`` localhost ``repro-worker`` subprocesses."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    workers: List[WorkerProcess] = []
    try:
        for _ in range(n_workers):
            workers.append(
                spawn_worker_process(
                    host=host, extra_args=extra_args, startup_timeout=startup_timeout
                )
            )
    except BaseException:
        for worker in workers:
            worker.terminate()
        raise
    return LocalFleet(workers)


class ThreadFleet:
    """A context-managed set of in-process worker servers."""

    def __init__(self, servers: List[WorkerServer]):
        self.servers = servers
        for server in servers:
            server.start_in_thread()

    @property
    def addresses(self) -> List[str]:
        return [server.address for server in self.servers]

    def terminate(self) -> None:
        for server in self.servers:
            server.close()

    def __enter__(self) -> "ThreadFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()


def start_thread_fleet(
    n_workers: int, *, stall_at_round: Optional[int] = None, **worker_kwargs
) -> ThreadFleet:
    """Start ``n_workers`` in-process workers on OS-assigned loopback ports.

    ``stall_at_round`` (and any other :class:`WorkerServer` fault knob in
    ``worker_kwargs``) applies to the *first* worker only — the usual
    shape of a fault-injection test.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    servers = []
    for index in range(n_workers):
        kwargs = dict(worker_kwargs)
        if index == 0 and stall_at_round is not None:
            kwargs["stall_at_round"] = stall_at_round
        servers.append(WorkerServer(**kwargs))
    return ThreadFleet(servers)
