"""Checkpoint/resume for federated runs: snapshot, atomic save, restore.

A :class:`Checkpoint` captures every piece of *mutable* run state the
simulation owns — the global model's ``state_dict()``, the server
optimizer's momentum velocities and learning rate, the previous aggregated
gradient, every RNG stream (server, attack, participation schedule, and
each client's batch sampler), stateful-attack internals, and the
:class:`~repro.utils.recording.RunRecorder` history.  Everything *immutable*
(datasets, partitions, client objects, model architecture) is rebuilt
deterministically from the :class:`~repro.utils.config.ExperimentConfig`
seed on resume, so checkpoints stay small: model-sized, not dataset-sized.

The on-disk format reuses the transport's pickle-free array codec
(:func:`~repro.utils.serialization.arrays_to_blob`)::

    8-byte magic  "RPROCKPT"
    4-byte big-endian format version
    4-byte big-endian metadata length
    JSON metadata (scalars, RNG states, recorder history, config echo)
    array blob    (model state, optimizer velocities, previous gradient)

Saves are atomic — written to ``<path>.tmp`` in the same directory, then
``os.replace``\\ d over the target — so a run killed mid-save leaves the
previous checkpoint intact, never a torn file.

Resuming through :func:`repro.fl.experiment.run_experiment(resume_from=...)
<repro.fl.experiment.run_experiment>` is proven bit-identical to the
uninterrupted run on every collect backend (``tests/test_fl_checkpoint.py``).
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.utils.serialization import (
    NumpyJSONEncoder,
    arrays_to_blob,
    blob_to_arrays,
)

PathLike = Union[str, Path]

#: File magic: 8 bytes, never versioned (the version field follows it).
CHECKPOINT_MAGIC = b"RPROCKPT"

#: On-disk format version; bumped on any layout change.
CHECKPOINT_VERSION = 1

_U32 = struct.Struct("!I")

#: Array-blob key prefixes for the array groups.
_MODEL_PREFIX = "model."
_VELOCITY_PREFIX = "velocity."
_PREVIOUS_GRADIENT_KEY = "previous_gradient"
#: Per-client wire-codec state (topk error-feedback residuals), keyed by
#: client id.  Absent from checkpoints written before PR 7 and from any run
#: whose codec is stateless — both read back as ``{}``, so the format
#: version stays at 1.
_CODEC_PREFIX = "codec."


@dataclass
class Checkpoint:
    """One resumable snapshot of a federated run.

    Produced by :meth:`repro.fl.simulation.FederatedSimulation.\
    capture_checkpoint` and consumed by :meth:`~repro.fl.simulation.\
    FederatedSimulation.restore_checkpoint`; most callers only ever touch
    :func:`save_checkpoint` / :func:`load_checkpoint` and the
    ``resume_from=`` argument of :func:`~repro.fl.experiment.run_experiment`.
    """

    #: Rounds fully completed before this snapshot (resume starts here).
    rounds_completed: int
    #: Global model parameters and buffers (``Module.state_dict()``).
    model_state: Dict[str, np.ndarray]
    #: Server SGD momentum buffers, one per parameter (``None`` = not yet
    #: touched by a momentum update).
    velocities: List[Optional[np.ndarray]]
    #: Server learning rate at snapshot time (after any decay).
    learning_rate: float
    #: Previous round's aggregated gradient (attack/defense history input).
    previous_gradient: Optional[np.ndarray]
    #: ``FederatedServer.round_index`` at snapshot time.
    server_round_index: int
    #: ``bit_generator.state`` dicts for every RNG stream the run mutates.
    server_rng_state: Dict[str, Any]
    attack_rng_state: Dict[str, Any]
    participation_rng_state: Optional[Dict[str, Any]]
    #: Per-client batch-sampler states, keyed by global client id.
    client_rng_states: Dict[int, Dict[str, Any]]
    #: Stateful-attack internals (``Attack.state_dict()``; ``{}`` for the
    #: stateless majority).
    attack_state: Dict[str, Any] = field(default_factory=dict)
    #: ``RunRecorder.to_dict()`` of the history so far.
    recorder_state: Dict[str, Any] = field(default_factory=dict)
    #: Per-client wire-codec state by client id (topk error-feedback
    #: residuals; ``{}`` for stateless codecs and in-process backends).
    codec_states: Dict[int, np.ndarray] = field(default_factory=dict)
    #: ``ExperimentConfig.to_dict()`` echo, used to refuse resuming under a
    #: different config (``None`` when captured outside ``run_experiment``).
    config: Optional[Dict[str, Any]] = None


def _encode_arrays(checkpoint: Checkpoint) -> Dict[str, np.ndarray]:
    arrays: Dict[str, np.ndarray] = {}
    for name, value in checkpoint.model_state.items():
        arrays[_MODEL_PREFIX + name] = value
    for index, velocity in enumerate(checkpoint.velocities):
        if velocity is not None:
            arrays[f"{_VELOCITY_PREFIX}{index}"] = velocity
    if checkpoint.previous_gradient is not None:
        arrays[_PREVIOUS_GRADIENT_KEY] = checkpoint.previous_gradient
    for client_id, residual in checkpoint.codec_states.items():
        arrays[f"{_CODEC_PREFIX}{int(client_id)}"] = residual
    return arrays


def save_checkpoint(checkpoint: Checkpoint, path: PathLike) -> Path:
    """Atomically write ``checkpoint`` to ``path`` and return the path.

    The temporary file lives in the target's directory so the final
    ``os.replace`` is a same-filesystem rename — atomic on POSIX.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "rounds_completed": int(checkpoint.rounds_completed),
        "learning_rate": float(checkpoint.learning_rate),
        "server_round_index": int(checkpoint.server_round_index),
        "num_velocities": len(checkpoint.velocities),
        "server_rng_state": checkpoint.server_rng_state,
        "attack_rng_state": checkpoint.attack_rng_state,
        "participation_rng_state": checkpoint.participation_rng_state,
        # JSON object keys are strings; load_checkpoint re-ints them.
        "client_rng_states": {
            str(client_id): state
            for client_id, state in checkpoint.client_rng_states.items()
        },
        "attack_state": checkpoint.attack_state,
        "recorder_state": checkpoint.recorder_state,
        "config": checkpoint.config,
    }
    meta_bytes = json.dumps(meta, cls=NumpyJSONEncoder).encode("utf-8")
    blob = arrays_to_blob(_encode_arrays(checkpoint))
    tmp_path = path.with_name(path.name + ".tmp")
    with tmp_path.open("wb") as handle:
        handle.write(CHECKPOINT_MAGIC)
        handle.write(_U32.pack(CHECKPOINT_VERSION))
        handle.write(_U32.pack(len(meta_bytes)))
        handle.write(meta_bytes)
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises ``ValueError`` on a malformed, truncated, or future-versioned
    file — never unpickles anything.
    """
    path = Path(path)
    payload = path.read_bytes()
    view = memoryview(payload)
    header_size = len(CHECKPOINT_MAGIC) + 2 * _U32.size
    if len(view) < header_size:
        raise ValueError(f"{path} is too short to be a checkpoint")
    if bytes(view[: len(CHECKPOINT_MAGIC)]) != CHECKPOINT_MAGIC:
        raise ValueError(f"{path} is not a repro checkpoint (bad magic)")
    offset = len(CHECKPOINT_MAGIC)
    (version,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path} has checkpoint format version {version}; this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    (meta_len,) = _U32.unpack_from(view, offset)
    offset += _U32.size
    if len(view) < offset + meta_len:
        raise ValueError(f"{path} is truncated inside its metadata")
    try:
        meta = json.loads(bytes(view[offset : offset + meta_len]))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} has malformed checkpoint metadata") from exc
    offset += meta_len
    arrays = blob_to_arrays(payload[offset:])

    model_state: Dict[str, np.ndarray] = {}
    velocities: List[Optional[np.ndarray]] = [None] * int(meta["num_velocities"])
    previous_gradient: Optional[np.ndarray] = None
    codec_states: Dict[int, np.ndarray] = {}
    for name, array in arrays.items():
        # blob_to_arrays returns read-only views into the file bytes; copy
        # so restored state is mutable, independent run state.
        if name.startswith(_MODEL_PREFIX):
            model_state[name[len(_MODEL_PREFIX) :]] = array.copy()
        elif name.startswith(_VELOCITY_PREFIX):
            index = int(name[len(_VELOCITY_PREFIX) :])
            if not 0 <= index < len(velocities):
                raise ValueError(
                    f"{path} names velocity {index} but declares "
                    f"{len(velocities)} parameters"
                )
            velocities[index] = array.copy()
        elif name == _PREVIOUS_GRADIENT_KEY:
            previous_gradient = array.copy()
        elif name.startswith(_CODEC_PREFIX):
            codec_states[int(name[len(_CODEC_PREFIX) :])] = array.copy()
        else:
            raise ValueError(f"{path} contains an unknown array {name!r}")

    return Checkpoint(
        rounds_completed=int(meta["rounds_completed"]),
        model_state=model_state,
        velocities=velocities,
        learning_rate=float(meta["learning_rate"]),
        previous_gradient=previous_gradient,
        server_round_index=int(meta["server_round_index"]),
        server_rng_state=meta["server_rng_state"],
        attack_rng_state=meta["attack_rng_state"],
        participation_rng_state=meta["participation_rng_state"],
        client_rng_states={
            int(client_id): state
            for client_id, state in meta["client_rng_states"].items()
        },
        attack_state=meta.get("attack_state") or {},
        recorder_state=meta.get("recorder_state") or {},
        codec_states=codec_states,
        config=meta.get("config"),
    )
