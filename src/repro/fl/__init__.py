"""Federated-learning simulation: clients, server, and the experiment runner.

The simulation follows Algorithm 1 of the paper: synchronous rounds, one
local iteration of mini-batch SGD per round, and a robust gradient
aggregation rule on the server.  Byzantine clients are simulated by
computing honest gradients first and then letting the configured attack
replace them (the omniscient-attacker threat model), except for the
label-flipping attack which poisons the clients' local data instead.

Participation is pluggable (:mod:`repro.fl.participation`): the default
reproduces the paper's full-participation cross-silo setting, while
``uniform``/``fixed_cohort`` schedules sample a per-round cohort with
optional dropouts and stragglers — the cross-device regime.
"""

from repro.fl.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.fl.client import BenignClient, ByzantineClient, FederatedClient
from repro.fl.collector import (
    GradientCollector,
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
    build_collector,
)
from repro.fl.faults import (
    FaultSchedule,
    FaultSpec,
    FleetOutageError,
    QuorumLossError,
    parse_fault,
)
from repro.fl.participation import (
    FixedCohortParticipation,
    FullParticipation,
    ParticipationSchedule,
    RoundPlan,
    UniformParticipation,
    build_participation,
)
from repro.fl.server import FederatedServer
from repro.fl.simulation import FederatedSimulation
from repro.fl.metrics import attack_impact, evaluate_model
from repro.fl.experiment import run_experiment, run_grid


def __getattr__(name):
    # Lazy export: the distributed backend pulls in the whole socket
    # transport, which purely in-process runs never need (build_collector
    # defers the same import for the same reason).
    if name == "DistributedCollector":
        from repro.fl.transport.collector import DistributedCollector

        return DistributedCollector
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FederatedClient",
    "BenignClient",
    "ByzantineClient",
    "FederatedServer",
    "FederatedSimulation",
    "GradientCollector",
    "SequentialCollector",
    "ParallelCollector",
    "ProcessCollector",
    "DistributedCollector",
    "build_collector",
    "FaultSchedule",
    "FaultSpec",
    "FleetOutageError",
    "QuorumLossError",
    "parse_fault",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "ParticipationSchedule",
    "RoundPlan",
    "FullParticipation",
    "UniformParticipation",
    "FixedCohortParticipation",
    "build_participation",
    "attack_impact",
    "evaluate_model",
    "run_experiment",
    "run_grid",
]
