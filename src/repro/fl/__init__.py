"""Federated-learning simulation: clients, server, and the experiment runner.

The simulation follows Algorithm 1 of the paper: synchronous rounds, one
local iteration of mini-batch SGD per round, and a robust gradient
aggregation rule on the server.  Byzantine clients are simulated by
computing honest gradients first and then letting the configured attack
replace them (the omniscient-attacker threat model), except for the
label-flipping attack which poisons the clients' local data instead.

Participation is pluggable (:mod:`repro.fl.participation`): the default
reproduces the paper's full-participation cross-silo setting, while
``uniform``/``fixed_cohort`` schedules sample a per-round cohort with
optional dropouts and stragglers — the cross-device regime.
"""

from repro.fl.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.fl.client import BenignClient, ByzantineClient, FederatedClient
from repro.fl.collector import (
    COLLECT_BACKENDS,
    COLLECTOR_REGISTRY,
    GradientCollector,
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
    build_collector,
    make_collector,
)
from repro.fl.faults import (
    FaultSchedule,
    FaultSpec,
    FleetOutageError,
    QuorumLossError,
    parse_fault,
)
from repro.fl.participation import (
    FixedCohortParticipation,
    FullParticipation,
    ParticipationSchedule,
    RoundPlan,
    UniformParticipation,
    build_participation,
)
from repro.fl.server import FederatedServer
from repro.fl.simulation import FederatedSimulation, build_clients
from repro.fl.metrics import attack_impact, evaluate_model
from repro.fl.experiment import run_experiment, run_grid


#: Names re-exported lazily from the transport package: the distributed
#: backend and the wire-codec layer pull in socket machinery that purely
#: in-process runs never need (build_collector defers the same import for
#: the same reason).
_TRANSPORT_EXPORTS = {
    "DistributedCollector": "repro.fl.transport.collector",
    "GradientCodec": "repro.fl.transport.codec",
    "CodecError": "repro.fl.transport.codec",
    "build_codec": "repro.fl.transport.codec",
    "wire_codec_names": "repro.fl.transport.codec",
    "GRADIENT_CODECS": "repro.fl.transport.codec",
}


def __getattr__(name):
    module_name = _TRANSPORT_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "FederatedClient",
    "BenignClient",
    "ByzantineClient",
    "FederatedServer",
    "FederatedSimulation",
    "build_clients",
    "GradientCollector",
    "SequentialCollector",
    "ParallelCollector",
    "ProcessCollector",
    "DistributedCollector",
    "build_collector",
    "make_collector",
    "COLLECT_BACKENDS",
    "COLLECTOR_REGISTRY",
    "GradientCodec",
    "CodecError",
    "build_codec",
    "wire_codec_names",
    "GRADIENT_CODECS",
    "FaultSchedule",
    "FaultSpec",
    "FleetOutageError",
    "QuorumLossError",
    "parse_fault",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "ParticipationSchedule",
    "RoundPlan",
    "FullParticipation",
    "UniformParticipation",
    "FixedCohortParticipation",
    "build_participation",
    "attack_impact",
    "evaluate_model",
    "run_experiment",
    "run_grid",
]
