"""Federated-learning simulation: clients, server, and the experiment runner.

The simulation follows Algorithm 1 of the paper: synchronous rounds with full
client participation, one local iteration of mini-batch SGD per round, and a
robust gradient aggregation rule on the server.  Byzantine clients are
simulated by computing honest gradients first and then letting the configured
attack replace them (the omniscient-attacker threat model), except for the
label-flipping attack which poisons the clients' local data instead.
"""

from repro.fl.client import BenignClient, ByzantineClient, FederatedClient
from repro.fl.collector import (
    GradientCollector,
    ParallelCollector,
    ProcessCollector,
    SequentialCollector,
    build_collector,
)
from repro.fl.server import FederatedServer
from repro.fl.simulation import FederatedSimulation
from repro.fl.metrics import attack_impact, evaluate_model
from repro.fl.experiment import run_experiment, run_grid

__all__ = [
    "FederatedClient",
    "BenignClient",
    "ByzantineClient",
    "FederatedServer",
    "FederatedSimulation",
    "GradientCollector",
    "SequentialCollector",
    "ParallelCollector",
    "ProcessCollector",
    "build_collector",
    "attack_impact",
    "evaluate_model",
    "run_experiment",
    "run_grid",
]
