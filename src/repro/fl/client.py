"""Federated clients: benign and Byzantine.

Clients in this simulation are *stateless with respect to model parameters*:
the global model lives on the server/simulator and every client computes its
gradient at the current global parameters (Algorithm 1 of the paper with one
local iteration).  A client owns only its local dataset and batch sampler.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataloader import BatchLoader
from repro.data.datasets import ArrayDataset
from repro.data.poisoning import flip_labels
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.vectorize import get_flat_gradients
from repro.utils.rng import RngLike, as_rng


class FederatedClient:
    """Base federated client owning a local dataset shard.

    Args:
        client_id: index of the client in the federation.
        dataset: the client's local training data.
        batch_size: mini-batch size for local gradient computation.
        local_iterations: number of mini-batches averaged into the submitted
            gradient (the paper uses 1).
        rng: seed or generator for batch sampling.
    """

    is_byzantine: bool = False

    def __init__(
        self,
        client_id: int,
        dataset: ArrayDataset,
        *,
        batch_size: int = 32,
        local_iterations: int = 1,
        rng: RngLike = None,
    ):
        if local_iterations < 1:
            raise ValueError(f"local_iterations must be >= 1, got {local_iterations}")
        self.client_id = client_id
        self.dataset = dataset
        self.local_iterations = local_iterations
        self.loader = BatchLoader(dataset, batch_size, rng=as_rng(rng))
        self._loss_fn = CrossEntropyLoss()
        self.last_loss: float = float("nan")

    @property
    def num_samples(self) -> int:
        """Number of local training samples."""
        return len(self.dataset)

    def compute_gradient(self, model: Module) -> np.ndarray:
        """Compute the client's local stochastic gradient at the current model.

        The model's parameters are treated as read-only; only its gradient
        buffers are used as scratch space and are zeroed before returning.
        The returned gradient has the model's dtype: float32 models compute
        (not just store) reduced-precision gradients.
        """
        accumulated: Optional[np.ndarray] = None
        losses = []
        dtype = model.dtype
        model.train()
        for _ in range(self.local_iterations):
            inputs, labels = self.loader.sample()
            if inputs.dtype.kind == "f" and inputs.dtype != dtype:
                inputs = inputs.astype(dtype)
            model.zero_grad()
            logits = model(inputs)
            losses.append(self._loss_fn(logits, labels))
            model.backward(self._loss_fn.backward())
            gradient = get_flat_gradients(model)
            accumulated = gradient if accumulated is None else accumulated + gradient
        model.zero_grad()
        self.last_loss = float(np.mean(losses))
        assert accumulated is not None
        return accumulated / self.local_iterations


class BenignClient(FederatedClient):
    """A client that always reports its honest local gradient."""

    is_byzantine = False


class ByzantineClient(FederatedClient):
    """A client controlled by the attacker.

    The gradient it *computes* is still the honest gradient over its local
    data (or over label-flipped data when the configured attack poisons
    data); the attacker-side transformation of the submitted gradients is
    applied centrally by the simulation, which matches the paper's
    omniscient, colluding threat model.
    """

    is_byzantine = True

    def __init__(
        self,
        client_id: int,
        dataset: ArrayDataset,
        *,
        batch_size: int = 32,
        local_iterations: int = 1,
        poison_labels: bool = False,
        rng: RngLike = None,
    ):
        if poison_labels:
            dataset = flip_labels(dataset)
        super().__init__(
            client_id,
            dataset,
            batch_size=batch_size,
            local_iterations=local_iterations,
            rng=rng,
        )
        self.poison_labels = poison_labels
