"""High-level experiment runner: config in, run record out.

This is the entry point used by the examples and the benchmark harness:
``run_experiment(config)`` builds the dataset, partitions it, instantiates
the model, attack, and defense, runs the federated simulation, and returns
the :class:`~repro.utils.recording.RunRecorder` with per-round metrics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.aggregators.factory import build_aggregator
from repro.attacks.factory import build_attack
from repro.data.factory import build_dataset
from repro.data.partition import partition_dataset
from repro.fl.checkpoint import Checkpoint, load_checkpoint
from repro.fl.faults import FaultSchedule
from repro.fl.server import FederatedServer
from repro.fl.simulation import FederatedSimulation, build_clients
from repro.nn.models.factory import build_model
from repro.perf.profiler import RoundProfiler
from repro.utils.config import ExperimentConfig
from repro.utils.recording import RunRecorder
from repro.utils.rng import RngFactory


def _select_byzantine(num_clients: int, num_byzantine: int, rng) -> np.ndarray:
    """Randomly choose which client ids the attacker controls."""
    if num_byzantine == 0:
        return np.array([], dtype=int)
    return np.sort(rng.choice(num_clients, size=num_byzantine, replace=False))


def run_experiment(
    config: ExperimentConfig,
    *,
    profiler: Optional["RoundProfiler"] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path=None,
    resume_from: Optional[Union[str, Checkpoint]] = None,
) -> RunRecorder:
    """Run a full federated experiment described by ``config``.

    Args:
        profiler: optional :class:`~repro.perf.profiler.RoundProfiler` shared
            by the server and the simulation — when given, every round's
            collect / attack / aggregate / update / evaluate stages are timed.
        fault_schedule: deterministic fault injection for the collect
            backend (see :mod:`repro.fl.faults`).
        checkpoint_every: snapshot the run to ``checkpoint_path`` every
            this many rounds (and after the final round); the two must be
            given together.
        checkpoint_path: where checkpoints are atomically written.
        resume_from: a checkpoint path or loaded
            :class:`~repro.fl.checkpoint.Checkpoint` to continue from.
            Everything structural is rebuilt from ``config`` (which must
            match the checkpoint's recorded config echo); the checkpoint
            restores the mutable state, and the run continues at the next
            round — bit-identical to never having stopped.
    """
    config = config.validate()
    checkpoint: Optional[Checkpoint] = None
    if resume_from is not None:
        checkpoint = (
            resume_from
            if isinstance(resume_from, Checkpoint)
            else load_checkpoint(resume_from)
        )
        if checkpoint.config is not None and checkpoint.config != config.to_dict():
            raise ValueError(
                "checkpoint was captured under a different experiment config; "
                "resuming would silently diverge — rebuild the config the "
                "checkpoint echoes (checkpoint.config) or start a fresh run"
            )
    rng_factory = RngFactory(config.seed)

    split = build_dataset(
        config.data.dataset,
        num_train=config.data.num_train,
        num_test=config.data.num_test,
        rng=rng_factory.make("data"),
    )
    partitions = partition_dataset(
        split.train,
        config.num_clients,
        scheme=config.data.partition,
        iid_fraction=config.data.iid_fraction,
        shards_per_client=config.data.shards_per_client,
        dirichlet_alpha=config.data.dirichlet_alpha,
        rng=rng_factory.make("partition"),
    )

    attack = build_attack(config.attack.name, config.attack.params)
    defense = build_aggregator(config.defense.name, config.defense.params)
    model = build_model(
        config.training.model, split.spec, rng=rng_factory.make("model")
    )
    # The model computes in the configured precision: with float32 the
    # clients' gradient computation itself (not just the round buffer) runs
    # at halved memory traffic.  Weights are drawn in float64 first (see
    # repro.nn.init) so both precisions start from the same values.
    model.astype(config.training.dtype)

    byzantine_indices = _select_byzantine(
        config.num_clients, config.num_byzantine, rng_factory.make("byzantine")
    )
    clients = build_clients(
        split.train,
        partitions,
        byzantine_indices,
        batch_size=config.training.batch_size,
        local_iterations=config.training.local_iterations,
        poison_labels=attack.poisons_data,
        rng_factory=rng_factory,
    )

    server = FederatedServer(
        model,
        defense,
        learning_rate=config.training.learning_rate,
        momentum=config.training.momentum,
        weight_decay=config.training.weight_decay,
        num_byzantine_hint=len(byzantine_indices),
        rng=rng_factory.make("server"),
        profiler=profiler,
    )

    simulation = FederatedSimulation(
        server,
        clients,
        attack,
        split.test,
        attack_rng=rng_factory.make("attack"),
        eval_every=config.training.eval_every,
        lr_decay=config.training.lr_decay,
        description=config.describe(),
        dtype=config.training.dtype,
        n_workers=config.training.n_workers,
        collect_backend=config.training.collect_backend,
        workers=config.training.workers,
        connect_timeout=config.training.connect_timeout,
        round_timeout=config.training.round_timeout,
        wire_codec=config.training.wire_codec,
        fault_schedule=fault_schedule,
        min_cohort_fraction=config.training.min_cohort_fraction,
        on_quorum_loss=config.training.on_quorum_loss,
        quorum_retries=config.training.quorum_retries,
        seed=config.seed,
        participation=config.training.participation,
        participation_fraction=config.training.participation_fraction,
        cohort_size=config.training.cohort_size,
        dropout_rate=config.training.dropout_rate,
        straggler_rate=config.training.straggler_rate,
        participation_rng=rng_factory.make("participation"),
        profiler=profiler,
    )
    try:
        start_round = 0
        if checkpoint is not None:
            start_round = simulation.restore_checkpoint(checkpoint)
        recorder = simulation.run(
            config.training.rounds,
            start_round=start_round,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            checkpoint_config=config.to_dict(),
        )
    finally:
        simulation.close()
    recorder.metadata["config"] = config.to_dict()
    recorder.metadata["byzantine_indices"] = byzantine_indices.tolist()
    return recorder


def run_grid(
    base_config: ExperimentConfig,
    *,
    attacks: Iterable[str],
    defenses: Iterable[str],
    defense_params: Optional[Dict[str, dict]] = None,
    attack_params: Optional[Dict[str, dict]] = None,
) -> Dict[Tuple[str, str], RunRecorder]:
    """Run an attack × defense grid sharing one base configuration.

    Returns a dict keyed by ``(attack_name, defense_name)``; this is the
    shape of the paper's Table I.
    """
    defense_params = defense_params or {}
    attack_params = attack_params or {}
    results: Dict[Tuple[str, str], RunRecorder] = {}
    for attack_name in attacks:
        for defense_name in defenses:
            config = base_config.replace(
                attack=base_config.attack.__class__(
                    name=attack_name,
                    byzantine_fraction=base_config.attack.byzantine_fraction,
                    params=dict(attack_params.get(attack_name, {})),
                ),
                defense=base_config.defense.__class__(
                    name=defense_name,
                    params=dict(defense_params.get(defense_name, {})),
                ),
            )
            results[(attack_name, defense_name)] = run_experiment(config)
    return results
