"""Gradient collection strategies for the federated round.

``collect_gradients`` dominates the profiled round (~65% of wall time in the
PR-1 baseline) and the clients are independent, so this module provides the
collect stage as a pluggable strategy:

* :class:`SequentialCollector` — the seed behaviour: one client after the
  other against the shared global model.
* :class:`ParallelCollector` — fans ``compute_gradient`` calls over a
  persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  Each worker
  owns a private replica of the model (gradient buffers and layer caches are
  per-worker scratch space), synchronized with the global parameters before
  dispatch, and writes each client's gradient directly into that client's
  row of the preallocated round buffer.

Determinism
-----------

The threaded path is **bit-identical** to the sequential path at float64 (and
at float32), regardless of scheduling, because

1. every client owns its batch-sampling RNG — a
   :class:`~repro.utils.rng.RngFactory` child stream seeded at construction
   time, *before* any dispatch — and is invoked exactly once per round, so
   its stream advances identically however work is interleaved; and
2. worker replicas carry parameter values copied verbatim from the global
   model, so every client evaluates the same function in either mode.

The one intentional divergence: layers with non-parameter state updated
during the forward pass (BatchNorm running statistics) update their
*replica's* buffers in parallel mode instead of the global model's.  Client
gradients are unaffected (training mode normalizes with batch statistics),
but the global model's running statistics then reflect only server-side
activity.  Models used by the paper's experiments that contain BatchNorm
(``resnet_lite``) may therefore report slightly different *evaluation*
metrics between the two modes.

Models whose *forward pass itself* draws randomness from model-owned
generators (a ``Dropout`` layer holding its own RNG) cannot satisfy the
guarantee: the mask stream is consumed in client-visit order on the shared
sequential model but per-chunk on each replica.  Rather than silently
diverging, :class:`ParallelCollector` detects such models and raises
``ValueError`` — run them with ``n_workers=1``.  (No built-in model uses
Dropout in federated rounds.)
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ThreadPoolExecutor, wait
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.client import FederatedClient
from repro.nn.module import Module
from repro.perf.timers import monotonic

#: (worker_index, seconds, clients_processed) for one collect call.
WorkerTiming = Tuple[int, float, int]


def default_worker_count(limit: int = 8) -> int:
    """A reasonable thread count for the current machine, capped at ``limit``."""
    return max(1, min(limit, os.cpu_count() or 1))


def _collect_sequential(
    clients: Sequence[FederatedClient], model: Module, out: np.ndarray
) -> List[WorkerTiming]:
    """The shared sequential loop; returns a single pseudo-worker timing."""
    start = monotonic()
    for row, client in enumerate(clients):
        out[row] = client.compute_gradient(model)
    return [(0, monotonic() - start, len(clients))]


def _stochastic_forward_modules(model: Module) -> List[str]:
    """Names of sub-modules whose forward pass consumes a model-owned RNG."""
    return [
        type(module).__name__
        for module in model.modules()
        if any(
            isinstance(value, np.random.Generator) for value in vars(module).values()
        )
    ]


class GradientCollector:
    """Strategy interface: fill a preallocated ``(n_clients, dim)`` buffer.

    Subclasses implement :meth:`collect`; after it returns,
    :attr:`worker_timings` describes how the round's work was split across
    workers (a single pseudo-worker for the sequential strategy), which the
    simulation feeds into the round profiler as per-worker stages.
    """

    n_workers: int = 1

    def __init__(self) -> None:
        self.worker_timings: List[WorkerTiming] = []

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
    ) -> np.ndarray:
        """Compute every client's gradient at ``model`` into ``out`` (row i =
        client i) and return ``out``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "GradientCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialCollector(GradientCollector):
    """The seed collect loop: every client runs against the shared model."""

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
    ) -> np.ndarray:
        self.worker_timings = _collect_sequential(clients, model, out)
        return out


class ParallelCollector(GradientCollector):
    """Threaded collect stage over per-worker model replicas.

    Args:
        n_workers: thread count.  ``None`` picks
            :func:`default_worker_count`.  A value of 1 degenerates to the
            sequential strategy (shared model, no replicas), which is the
            determinism-sensitive default used by the test suite.

    The executor and the replicas persist across rounds: thread spawn and
    model deep-copy are paid once, and each round only copies the current
    global parameters into the replicas (a memcpy that is negligible next to
    the gradient computation itself).

    Client ``i`` is assigned to worker ``i % n_workers``; the mapping is
    deterministic but irrelevant to the results (see the module docstring).
    Exceptions raised by any client propagate to the caller after the
    round's remaining workers finish their chunks.
    """

    def __init__(self, n_workers: Optional[int] = None):
        super().__init__()
        if n_workers is None:
            n_workers = default_worker_count()
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._replicas: List[Module] = []
        self._source: Optional[Module] = None

    def _ensure_workers(self, model: Module, workers: int) -> None:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="collect"
            )
        stale = (
            self._source is not model
            or len(self._replicas) < workers
            or (self._replicas and self._replicas[0].dtype != model.dtype)
        )
        if stale:
            self._replicas = [copy.deepcopy(model) for _ in range(workers)]
            self._source = model

    def _sync_replicas(self, model: Module, workers: int) -> None:
        source = model.named_parameters()
        for replica in self._replicas[:workers]:
            for (_, src), (_, dst) in zip(source, replica.named_parameters()):
                dst.data[...] = src.data

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
    ) -> np.ndarray:
        n_clients = len(clients)
        workers = min(self.n_workers, n_clients)
        if workers <= 1:
            self.worker_timings = _collect_sequential(clients, model, out)
            return out

        stochastic = _stochastic_forward_modules(model)
        if stochastic:
            raise ValueError(
                "ParallelCollector cannot guarantee sequential-equivalent "
                f"results for models with RNG-consuming layers ({stochastic}): "
                "the mask stream would be consumed per worker replica instead "
                "of in client order. Use n_workers=1 for this model."
            )
        self._ensure_workers(model, workers)
        self._sync_replicas(model, workers)

        def run_chunk(worker_index: int) -> WorkerTiming:
            replica = self._replicas[worker_index]
            start = monotonic()
            count = 0
            for row in range(worker_index, n_clients, workers):
                out[row] = clients[row].compute_gradient(replica)
                count += 1
            return worker_index, monotonic() - start, count

        futures = [self._executor.submit(run_chunk, w) for w in range(workers)]
        wait(futures)  # let every worker finish its chunk before reporting
        # result() re-raises the first failing client's exception.
        self.worker_timings = [future.result() for future in futures]
        return out

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._replicas = []
        self._source = None


def build_collector(n_workers: int = 1) -> GradientCollector:
    """``n_workers <= 1`` gives the sequential strategy, else a thread pool."""
    if n_workers <= 1:
        return SequentialCollector()
    return ParallelCollector(n_workers)
