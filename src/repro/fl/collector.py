"""Gradient collection strategies for the federated round.

``collect_gradients`` dominates the profiled round (~65% of wall time in the
PR-1 baseline) and the clients are independent, so this module provides the
collect stage as a pluggable strategy:

* :class:`SequentialCollector` — the seed behaviour: one client after the
  other against the shared global model.
* :class:`ParallelCollector` — fans ``compute_gradient`` calls over a
  persistent :class:`~concurrent.futures.ThreadPoolExecutor`.  Each worker
  owns a private replica of the model (gradient buffers and layer caches are
  per-worker scratch space), synchronized with the global parameters *and
  buffers* before dispatch, and writes each client's gradient directly into
  that client's row of the preallocated round buffer.  Best when clients
  spend their time waiting (simulated dispatch latency, BLAS calls that
  release the GIL); pure-Python compute stays serialized by the GIL.
* :class:`ProcessCollector` — persistent worker *processes*, each holding a
  replica of the model and its chunk of the client population.  Per round the
  parent ships the global ``Module.state_dict()`` (parameters + buffers)
  through a pipe; workers write gradients straight into a
  ``multiprocessing.shared_memory`` round buffer, so no per-round gradient
  pickling occurs in either direction.  This recovers *compute* parallelism
  on GIL-bound hosts at the cost of a per-round parameter broadcast — it wins
  once per-round client compute dwarfs ``n_workers × model size`` of
  pickling.
* :class:`~repro.fl.transport.collector.DistributedCollector` (in
  :mod:`repro.fl.transport`) — the same contract across TCP: a fleet of
  ``repro-worker`` hosts each serving a population shard, with a per-round
  state-dict broadcast and one raw-frame gather per worker.  The only
  backend with partial-failure semantics: a dead or timed-out worker's
  rows surface in :attr:`GradientCollector.failed_rows` and the simulation
  demotes them to round-plan dropouts.

Determinism
-----------

The parallel paths are **bit-identical** to the sequential path at float64
(and at float32), regardless of scheduling, because

1. every client owns its batch-sampling RNG — a
   :class:`~repro.utils.rng.RngFactory` child stream seeded at construction
   time, *before* any dispatch — and is invoked exactly once per round, so
   its stream advances identically however work is interleaved;
2. worker replicas carry parameter and buffer values copied verbatim from
   the global model, so every client evaluates the same function in any
   mode; and
3. layers with non-parameter state updated during the forward pass
   (BatchNorm running statistics) log their per-batch statistics on the
   replicas, and the collector replays those updates onto the *global*
   model in client order after the round — the same floating-point
   operations, in the same order, the sequential path performs.  Evaluation
   metrics therefore match exactly between all backends.

Models whose *forward pass itself* draws randomness from model-owned
generators (a ``Dropout`` layer holding its own RNG) cannot satisfy the
guarantee: the mask stream is consumed in client-visit order on the shared
sequential model but per-chunk on each replica.  Rather than silently
diverging, the parallel collectors detect such models and raise
``ValueError`` — run them with ``n_workers=1``.  (No built-in model uses
Dropout in federated rounds.)

Failure semantics
-----------------

Every backend NaN-fills the round buffer before dispatch.  The buffer is
preallocated and reused across rounds, so without invalidation a client
exception would leave it partially filled with the *previous* round's
gradients — a caller that catches the exception and keeps going would
silently aggregate stale rows.  With invalidation, rows the failed round
never produced are NaN and poison any downstream aggregate instead.

Partial participation
---------------------

``collect`` accepts an optional ``rows`` argument — a strictly increasing
subset of client positions (a :class:`~repro.fl.participation.RoundPlan`'s
computing set).  Only those clients run, row ``k`` of the (now
cohort-sized) buffer holds ``clients[rows[k]]``'s gradient, and BatchNorm
statistics are replayed in buffer-row order, which equals ascending client
order for every backend.  Non-selected clients are never invoked, so their
RNG streams stay untouched and any participation schedule remains
bit-reproducible.  The process backend keeps its persistent per-worker
chunks of the *full* population (the client RNG streams live in-worker)
and ships each worker its slice of the round's subset, so sampled rounds
reuse the same worker processes as full rounds.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import pickle
from concurrent.futures import ThreadPoolExecutor, wait
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.fl.client import FederatedClient
from repro.fl.faults import FaultSchedule
from repro.nn.layers import _BatchNormBase
from repro.nn.module import Module
from repro.perf.timers import monotonic
from repro.utils.registry import Registry

#: (worker_label, seconds, clients_processed) for one collect call.  The
#: label is the worker's integer index for in-process backends and the
#: worker's ``host:port`` address for the distributed backend; consumers
#: must treat it as an opaque stage suffix, not an array index.
WorkerTiming = Tuple[Union[int, str], float, int]

#: Per-client batch-norm statistics: one ``[(mean, var), ...]`` list (one
#: entry per training forward) per batch-norm module, in module order.
ClientBatchStats = List[List[Tuple[np.ndarray, np.ndarray]]]


def default_worker_count(limit: int = 8) -> int:
    """A reasonable worker count for the current machine, capped at ``limit``."""
    return max(1, min(limit, os.cpu_count() or 1))


def invalidate_buffer(out: np.ndarray) -> None:
    """NaN-fill a round buffer so stale rows from a prior round cannot leak."""
    out.fill(np.nan)


def resolve_rows(
    clients: Sequence[FederatedClient],
    out: np.ndarray,
    rows: Optional[Sequence[int]],
) -> Optional[np.ndarray]:
    """Validate a ``collect`` row subset against the population and buffer.

    ``None`` (collect everyone) requires a population-sized buffer; an
    explicit subset must be strictly increasing (the fixed buffer-row order
    every backend shares), in range, and match the buffer's row count.
    """
    if rows is None:
        if out.shape[0] != len(clients):
            raise ValueError(
                f"round buffer has {out.shape[0]} rows but {len(clients)} "
                "clients were passed (pass rows= to collect a subset)"
            )
        return None
    subset = np.asarray(rows, dtype=int).ravel()
    if len(subset) == 0:
        raise ValueError("rows must select at least one client")
    if len(subset) > 1 and np.any(np.diff(subset) <= 0):
        raise ValueError(f"rows must be strictly increasing, got {subset}")
    if subset[0] < 0 or subset[-1] >= len(clients):
        raise ValueError(
            f"rows {subset} out of range for {len(clients)} clients"
        )
    if out.shape[0] != len(subset):
        raise ValueError(
            f"round buffer has {out.shape[0]} rows but {len(subset)} rows "
            "were selected"
        )
    return subset


def _batch_stat_modules(model: Module) -> List[_BatchNormBase]:
    """Sub-modules whose training forward updates running statistics."""
    return [m for m in model.modules() if isinstance(m, _BatchNormBase)]


def _replay_batch_stats(
    model: Module, stats_by_row: List[Tuple[int, ClientBatchStats]]
) -> None:
    """Replay recorded per-client batch statistics onto ``model``.

    Applies the exact exponential-moving-average updates the sequential path
    would have performed, in client order, so the global model's buffers are
    bit-identical between backends.
    """
    modules = _batch_stat_modules(model)
    for _, per_module in sorted(stats_by_row, key=lambda item: item[0]):
        for module, forwards in zip(modules, per_module):
            for mean, var in forwards:
                module.apply_batch_stats(mean, var)


def _collect_client(
    client: FederatedClient,
    model: Module,
    row_out: np.ndarray,
    stat_modules: List[_BatchNormBase],
) -> ClientBatchStats:
    """One client's gradient into ``row_out``, recording its batch stats."""
    for module in stat_modules:
        module.stats_log = []
    try:
        row_out[...] = client.compute_gradient(model)
        return [module.stats_log for module in stat_modules]
    finally:
        for module in stat_modules:
            module.stats_log = None


def _collect_sequential(
    clients: Sequence[FederatedClient],
    model: Module,
    out: np.ndarray,
    rows: Optional[np.ndarray] = None,
    apply_batch_stats: bool = True,
) -> List[WorkerTiming]:
    """The shared sequential loop; returns a single pseudo-worker timing.

    ``apply_batch_stats=False`` restores the model's BatchNorm running
    statistics afterwards (the training forward rebinds, never mutates, the
    buffer arrays, so saving the references suffices) — used for straggler
    gradients, whose discarded submission must not leak state into the
    global model.
    """
    saved_stats = (
        []
        if apply_batch_stats
        else [
            (module, module.running_mean, module.running_var)
            for module in _batch_stat_modules(model)
        ]
    )
    invalidate_buffer(out)
    start = monotonic()
    try:
        if rows is None:
            for row, client in enumerate(clients):
                out[row] = client.compute_gradient(model)
            count = len(clients)
        else:
            for buffer_row, client_row in enumerate(rows):
                out[buffer_row] = clients[client_row].compute_gradient(model)
            count = len(rows)
    finally:
        for module, running_mean, running_var in saved_stats:
            module.running_mean = running_mean
            module.running_var = running_var
    return [(0, monotonic() - start, count)]


def _stochastic_forward_modules(model: Module) -> List[str]:
    """Names of sub-modules whose forward pass consumes a model-owned RNG."""
    return [
        type(module).__name__
        for module in model.modules()
        if any(
            isinstance(value, np.random.Generator) for value in vars(module).values()
        )
    ]


def _check_deterministic_forward(model: Module, backend: str) -> None:
    stochastic = _stochastic_forward_modules(model)
    if stochastic:
        raise ValueError(
            f"{backend} cannot guarantee sequential-equivalent results for "
            f"models with RNG-consuming layers ({stochastic}): the mask "
            "stream would be consumed per worker replica instead of in "
            "client order. Use n_workers=1 for this model."
        )


class GradientCollector:
    """Strategy interface: fill a preallocated ``(n_clients, dim)`` buffer.

    Subclasses implement :meth:`collect`; after it returns,
    :attr:`worker_timings` describes how the round's work was split across
    workers (a single pseudo-worker for the sequential strategy), which the
    simulation feeds into the round profiler as per-worker stages.
    """

    n_workers: int = 1

    #: Client ids the last ``collect`` failed to obtain gradients for —
    #: empty for in-process backends (they raise on real errors) unless a
    #: :class:`~repro.fl.faults.FaultSchedule` injected a failure; the
    #: distributed backend reports dead/timed-out workers' unrecovered
    #: rows here so the simulation can demote them to ``RoundPlan``
    #: dropouts.
    failed_rows: Tuple[int, ...] = ()

    #: ``(bytes_sent, bytes_received)`` on the wire for the last
    #: ``collect`` — (0, 0) for in-process backends.
    last_round_bytes: Tuple[int, int] = (0, 0)

    #: Client ids the last ``collect`` recovered by re-dispatching to
    #: surviving workers — only the distributed backend ever recovers.
    last_round_redispatched: Tuple[int, ...] = ()

    #: Successful worker reconnects during the last ``collect``.
    last_round_reconnects: int = 0

    def __init__(self, *, fault_schedule: Optional[FaultSchedule] = None) -> None:
        self.worker_timings: List[WorkerTiming] = []
        #: Deterministic fault injection: a spec for worker ``w`` at
        #: occurrence ``r`` makes that worker's rows fail (uncomputed, RNG
        #: streams untouched) at this collector's ``r``-th main collect
        #: pass.  In-process workers have no link to sever and nothing to
        #: re-dispatch from, so an injected fault of *any* kind degrades
        #: straight to the demote rung of the recovery ladder.
        self.fault_schedule = fault_schedule or FaultSchedule()
        self._fault_rounds = 0

    def _advance_fault_round(self, apply_batch_stats: bool) -> int:
        """The fault-schedule clock: occurrences count main collect passes.

        A straggler pass (``apply_batch_stats=False``) belongs to the
        round that spawned it, so it reuses the current tick.
        """
        if apply_batch_stats:
            self._fault_rounds += 1
        return self._fault_rounds

    def _faulted_workers(self, fault_round: int, workers: int) -> Set[int]:
        """Worker indices whose schedule fires on this collect pass.

        Each backend maps the faulted workers onto client ids with its own
        row→worker assignment (sequential: worker 0 owns everything;
        thread: buffer position mod workers; process: client id mod
        workers).
        """
        if not self.fault_schedule:
            return set()
        return {
            worker
            for worker in range(workers)
            if self.fault_schedule.any_fires(fault_round, worker)
        }

    def client_rng_states(self) -> Dict[int, dict]:
        """Latest known per-client RNG states held *outside* the caller.

        Backends whose client batch-sampler streams live in worker
        processes (process, distributed) report them here so checkpoints
        capture the authoritative state; ``{}`` means the caller's client
        objects are authoritative (sequential, thread).
        """
        return {}

    def codec_states(self) -> Dict[int, np.ndarray]:
        """Per-client wire-codec state (topk error-feedback residuals).

        Only the distributed backend with a stateful wire codec has any;
        every other backend/codec combination reports ``{}``.  Captured in
        checkpoints next to the RNG states and restored via
        :meth:`load_codec_states`.
        """
        return {}

    def load_codec_states(self, states: Dict[int, np.ndarray]) -> None:
        """Adopt checkpointed wire-codec state (no-op without one)."""

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        rows: Optional[Sequence[int]] = None,
        *,
        apply_batch_stats: bool = True,
    ) -> np.ndarray:
        """Compute client gradients at ``model`` into ``out`` and return it.

        With ``rows=None`` every client computes and row ``i`` of ``out``
        holds client ``i``'s gradient.  With an explicit (strictly
        increasing) ``rows`` subset only those clients compute and row
        ``k`` holds ``clients[rows[k]]``'s gradient; the other clients are
        never invoked.

        ``apply_batch_stats=False`` leaves the global model's BatchNorm
        running statistics untouched by this call (client RNG streams still
        advance) — the straggler semantics: a discarded submission must not
        leak normalization state into the server model.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "GradientCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SequentialCollector(GradientCollector):
    """The seed collect loop: every client runs against the shared model."""

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        rows: Optional[Sequence[int]] = None,
        *,
        apply_batch_stats: bool = True,
    ) -> np.ndarray:
        subset = resolve_rows(clients, out, rows)
        self.failed_rows = ()
        fault_round = self._advance_fault_round(apply_batch_stats)
        if self._faulted_workers(fault_round, 1):
            # The single pseudo-worker owns every row: a fault here is a
            # total outage.  Nothing computes, no RNG stream advances.
            invalidate_buffer(out)
            self.failed_rows = tuple(
                range(len(clients)) if subset is None else (int(r) for r in subset)
            )
            self.worker_timings = [(0, 0.0, 0)]
            return out
        self.worker_timings = _collect_sequential(
            clients, model, out, subset, apply_batch_stats
        )
        return out


class ParallelCollector(GradientCollector):
    """Threaded collect stage over per-worker model replicas.

    Args:
        n_workers: thread count.  ``None`` picks
            :func:`default_worker_count`.  A value of 1 degenerates to the
            sequential strategy (shared model, no replicas), which is the
            determinism-sensitive default used by the test suite.

    The executor and the replicas persist across rounds: thread spawn and
    model deep-copy are paid once, and each round only copies the current
    global parameters and buffers into the replicas (a memcpy that is
    negligible next to the gradient computation itself).

    Client ``i`` is assigned to worker ``i % n_workers``; the mapping is
    deterministic but irrelevant to the results (see the module docstring).
    Exceptions raised by any client propagate to the caller after the
    round's remaining workers finish their chunks; the round buffer rows the
    failed round did not produce are left NaN-invalidated.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        fault_schedule: Optional[FaultSchedule] = None,
    ):
        super().__init__(fault_schedule=fault_schedule)
        if n_workers is None:
            n_workers = default_worker_count()
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._replicas: List[Module] = []
        self._source: Optional[Module] = None

    def _ensure_workers(self, model: Module, workers: int) -> None:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="collect"
            )
        stale = (
            self._source is not model
            or len(self._replicas) < workers
            or (self._replicas and self._replicas[0].dtype != model.dtype)
        )
        if stale:
            self._replicas = [copy.deepcopy(model) for _ in range(workers)]
            self._source = model

    def _sync_replicas(self, model: Module, workers: int) -> None:
        # One state dict (parameters + buffers) loaded into every replica:
        # BatchNorm running statistics cannot drift across rounds.
        state = model.state_dict()
        for replica in self._replicas[:workers]:
            replica.load_state_dict(state)

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        rows: Optional[Sequence[int]] = None,
        *,
        apply_batch_stats: bool = True,
    ) -> np.ndarray:
        subset = resolve_rows(clients, out, rows)
        n_rows = len(clients) if subset is None else len(subset)
        workers = min(self.n_workers, n_rows)
        self.failed_rows = ()
        fault_round = self._advance_fault_round(apply_batch_stats)
        if workers <= 1:
            if self._faulted_workers(fault_round, 1):
                invalidate_buffer(out)
                self.failed_rows = tuple(
                    range(len(clients))
                    if subset is None
                    else (int(r) for r in subset)
                )
                self.worker_timings = [(0, 0.0, 0)]
                return out
            self.worker_timings = _collect_sequential(
                clients, model, out, subset, apply_batch_stats
            )
            return out

        _check_deterministic_forward(model, type(self).__name__)
        self._ensure_workers(model, workers)
        self._sync_replicas(model, workers)
        invalidate_buffer(out)
        # A faulted worker's chunk is skipped wholesale: its rows stay
        # NaN-invalidated, its clients never run (RNG streams untouched),
        # and the caller sees them in ``failed_rows``.
        faulted = self._faulted_workers(fault_round, workers)
        # Workers run on replicas (re-synced every round), so suppressing
        # batch stats only requires skipping the replay onto the global
        # model.
        track_stats = apply_batch_stats and bool(_batch_stat_modules(model))
        stats_by_row: List[Tuple[int, ClientBatchStats]] = []

        def run_chunk(worker_index: int) -> WorkerTiming:
            replica = self._replicas[worker_index]
            stat_modules = _batch_stat_modules(replica) if track_stats else []
            start = monotonic()
            count = 0
            for row in range(worker_index, n_rows, workers):
                client = clients[row if subset is None else subset[row]]
                stats = _collect_client(client, replica, out[row], stat_modules)
                if track_stats:
                    stats_by_row.append((row, stats))
                count += 1
            return worker_index, monotonic() - start, count

        live = [w for w in range(workers) if w not in faulted]
        futures = [self._executor.submit(run_chunk, w) for w in live]
        wait(futures)  # let every worker finish its chunk before reporting
        # result() re-raises the first failing client's exception.
        self.worker_timings = [future.result() for future in futures]
        self.worker_timings.extend((w, 0.0, 0) for w in sorted(faulted))
        if faulted:
            self.failed_rows = tuple(
                int(position if subset is None else subset[position])
                for position in range(n_rows)
                if position % workers in faulted
            )
        if track_stats:
            _replay_batch_stats(model, stats_by_row)
        return out

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._replicas = []
        self._source = None


def _process_worker_main(
    conn,
    worker_index: int,
    rows: List[int],
    clients: List[FederatedClient],
    model: Module,
    shm_name: str,
    shape: Tuple[int, int],
    dtype_str: str,
) -> None:
    """Loop of one persistent collect worker process.

    Receives ``(state_dict, selected_rows)`` per round (``None`` = shut
    down), computes the selected slice of its client chunk into the
    shared-memory round buffer (``selected_rows=None`` = the whole chunk,
    ``[]`` = nothing — a fault-injected pass that must leave the in-worker
    RNG streams untouched), and replies with timings, per-client losses,
    recorded batch statistics, the post-round batch-sampler RNG states of
    the clients that computed, and the first client exception (if any).
    """
    # Workers share the parent's resource tracker (the fd travels through
    # both fork and spawn), so attaching here is tracker-idempotent and the
    # parent's single unlink() owns the segment's lifetime.
    shm = shared_memory.SharedMemory(name=shm_name)
    buffer = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
    stat_modules = _batch_stat_modules(model)
    client_by_row = dict(zip(rows, clients))
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            state, selected = message
            model.load_state_dict(state)
            start = monotonic()
            count = 0
            losses: List[Tuple[int, float]] = []
            stats: List[Tuple[int, ClientBatchStats]] = []
            error: Optional[BaseException] = None
            for row in rows if selected is None else selected:
                client = client_by_row[row]
                try:
                    client_stats = _collect_client(
                        client, model, buffer[row], stat_modules
                    )
                except BaseException as exc:  # propagate to the parent
                    error = exc
                    break
                count += 1
                losses.append((row, client.last_loss))
                stats.append((row, client_stats))
            if error is not None:
                try:
                    pickle.dumps(error)
                except Exception:
                    error = RuntimeError(
                        f"unpicklable client exception in collect worker "
                        f"{worker_index}: {error!r}"
                    )
            rng_states = {
                row: client_by_row[row].loader.rng_state for row, _ in losses
            }
            conn.send(
                (
                    worker_index,
                    monotonic() - start,
                    count,
                    losses,
                    stats,
                    rng_states,
                    error,
                )
            )
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        del buffer
        shm.close()
        conn.close()


class ProcessCollector(GradientCollector):
    """Process-pool collect stage over a shared-memory round buffer.

    Args:
        n_workers: process count.  ``None`` picks
            :func:`default_worker_count`.  A value of 1 degenerates to the
            in-process sequential strategy.
        mp_context: multiprocessing start method (``"fork"`` where available
            — cheap, and test-local client classes need no pickling — else
            ``"spawn"``).

    The workers persist across rounds.  At first use each worker receives —
    once — its chunk of the client population (client ``i`` goes to worker
    ``i % n_workers``, the same mapping the threaded backend uses) and a
    replica of the model.  Per round the parent broadcasts the global
    ``state_dict()`` (parameters + buffers) plus each worker's slice of the
    round's participating rows (``None`` = the whole chunk) and
    NaN-invalidates the shared-memory buffer; workers load the state,
    compute the selected clients' gradients directly into the
    population-sized shared buffer, and reply with timings, per-client
    losses, and recorded BatchNorm batch statistics (replayed onto the
    global model in client order, see the module docstring).  The parent
    then gathers the participating rows into the caller's (cohort-sized)
    round buffer, so sampled rounds reuse the same persistent workers —
    and the same in-worker client RNG streams — as full rounds.

    Client batch-sampling RNG streams live *inside* the owning worker and
    advance exactly once per round, so results are bit-identical to the
    sequential path at any worker count.  The parent's client objects only
    mirror ``last_loss``.

    Exceptions raised by any client are re-raised in the parent after all
    workers finish their chunks, matching the threaded backend.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        mp_context: Optional[str] = None,
        fault_schedule: Optional[FaultSchedule] = None,
    ):
        super().__init__(fault_schedule=fault_schedule)
        if n_workers is None:
            n_workers = default_worker_count()
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._shm_array: Optional[np.ndarray] = None
        # Strong references to the population/model the workers were built
        # from (identity comparison only — never by id(), which CPython
        # recycles after garbage collection) plus the buffer geometry.
        self._source_clients: Optional[Tuple[FederatedClient, ...]] = None
        self._source_model: Optional[Module] = None
        self._source_geometry: Optional[tuple] = None
        # Last reported in-worker batch-sampler RNG state per client id.
        # Survives _teardown() (an error-path rebuild must not lose the
        # checkpointable states) but not close(): after a checkpoint
        # restore rewrites the parent's client objects, close() makes them
        # authoritative again.
        self._rng_states: Dict[int, dict] = {}

    def client_rng_states(self) -> Dict[int, dict]:
        return dict(self._rng_states)

    def _workers_current(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        workers: int,
    ) -> bool:
        # Geometry is keyed on the *population* (the shared buffer holds one
        # row per client), not the caller's round buffer, whose row count
        # varies with the cohort under partial participation.
        return bool(
            self._procs
            and self._source_model is model
            and self._source_clients is not None
            and len(self._source_clients) == len(clients)
            and all(a is b for a, b in zip(self._source_clients, clients))
            and self._source_geometry
            == (model.dtype, len(clients), out.shape[-1], out.dtype, workers)
        )

    def _ensure_workers(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        workers: int,
    ) -> None:
        if self._workers_current(clients, model, out, workers):
            return
        self._teardown()
        n_clients = len(clients)
        dim = out.shape[-1]
        shm_shape = (n_clients, dim)
        self._shm = shared_memory.SharedMemory(
            create=True, size=n_clients * dim * out.dtype.itemsize
        )
        self._shm_array = np.ndarray(shm_shape, dtype=out.dtype, buffer=self._shm.buf)
        for worker_index in range(workers):
            parent_conn, child_conn = self._ctx.Pipe()
            rows = list(range(worker_index, n_clients, workers))
            process = self._ctx.Process(
                target=_process_worker_main,
                args=(
                    child_conn,
                    worker_index,
                    rows,
                    [clients[row] for row in rows],
                    model,
                    self._shm.name,
                    shm_shape,
                    out.dtype.str,
                ),
                daemon=True,
                name=f"collect-{worker_index}",
            )
            process.start()
            child_conn.close()
            self._procs.append(process)
            self._conns.append(parent_conn)
        self._source_clients = tuple(clients)
        self._source_model = model
        self._source_geometry = (model.dtype, n_clients, dim, out.dtype, workers)

    def collect(
        self,
        clients: Sequence[FederatedClient],
        model: Module,
        out: np.ndarray,
        rows: Optional[Sequence[int]] = None,
        *,
        apply_batch_stats: bool = True,
    ) -> np.ndarray:
        n_clients = len(clients)
        subset = resolve_rows(clients, out, rows)
        # The worker count follows the *population*, not the round subset:
        # worker processes own their clients' RNG streams, so every round —
        # however small its cohort — must route through the same workers.
        workers = min(self.n_workers, n_clients)
        self.failed_rows = ()
        fault_round = self._advance_fault_round(apply_batch_stats)
        if workers <= 1:
            if self._faulted_workers(fault_round, 1):
                invalidate_buffer(out)
                self.failed_rows = tuple(
                    range(n_clients) if subset is None else (int(r) for r in subset)
                )
                self.worker_timings = [(0, 0.0, 0)]
                return out
            self.worker_timings = _collect_sequential(
                clients, model, out, subset, apply_batch_stats
            )
            return out

        _check_deterministic_forward(model, type(self).__name__)
        self._ensure_workers(clients, model, out, workers)
        assert self._shm_array is not None
        # A faulted worker stays alive but is sent an empty selection: its
        # clients never compute, their in-worker RNG streams stay put, and
        # their (NaN) rows surface in ``failed_rows``.  Worker ``w`` owns
        # client ids ``w::workers`` of the population, so faulted ids are
        # keyed on client id, not buffer position.
        faulted = self._faulted_workers(fault_round, workers)
        if faulted:
            round_ids = range(n_clients) if subset is None else subset
            self.failed_rows = tuple(
                int(client_id)
                for client_id in round_ids
                if client_id % workers in faulted
            )
        # Invalidate the caller's buffer as well as the shared one: if a
        # worker dies before replying, ``out`` must not keep the previous
        # round's rows.  On a sampled round only the cohort's rows need it —
        # the gather below never reads the others — so invalidation cost
        # scales with the cohort, not the population.
        invalidate_buffer(out)
        if subset is None:
            invalidate_buffer(self._shm_array)
        else:
            self._shm_array[subset] = np.nan
        state = model.state_dict()
        if subset is None:
            selected_by_worker: List[Optional[List[int]]] = [None] * workers
        else:
            selected_by_worker = [
                [int(row) for row in subset if row % workers == worker_index]
                for worker_index in range(workers)
            ]
        for worker_index in faulted:
            selected_by_worker[worker_index] = []
        replies = []
        try:
            for conn, selected in zip(self._conns, selected_by_worker):
                conn.send((state, selected))
            for conn in self._conns:
                replies.append(conn.recv())
        except (EOFError, ConnectionError, OSError) as exc:
            self._teardown()
            raise RuntimeError(
                "a collect worker died mid-round (crashed or was killed); "
                "the round buffer is NaN-invalidated"
            ) from exc
        # Completed rows plus NaN-invalidated rows become the caller's view,
        # even when a client failed.
        if subset is None:
            out[...] = self._shm_array
        else:
            np.take(self._shm_array, subset, axis=0, out=out)
        self.worker_timings = []
        stats_by_row: List[Tuple[int, ClientBatchStats]] = []
        first_error: Optional[BaseException] = None
        for worker_index, seconds, count, losses, stats, rng_states, error in replies:
            self.worker_timings.append((worker_index, seconds, count))
            for row, loss in losses:
                clients[row].last_loss = loss
            stats_by_row.extend(stats)
            self._rng_states.update(rng_states)
            if error is not None and first_error is None:
                first_error = error
        if first_error is not None:
            raise first_error
        if apply_batch_stats:
            # Workers run on in-process replicas re-synced from the
            # state-dict broadcast, so suppression just skips this replay.
            _replay_batch_stats(model, stats_by_row)
        return out

    def _teardown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._procs = []
        self._conns = []
        self._shm_array = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass
            self._shm = None
        self._source_clients = None
        self._source_model = None
        self._source_geometry = None

    def close(self) -> None:
        self._teardown()
        self._rng_states = {}

    def __del__(self):  # pragma: no cover - interpreter-shutdown safety net
        try:
            self._teardown()
        # repro-lint: disable=exception-hygiene -- raising in __del__ during
        # interpreter shutdown only prints an unraisable-error warning; the
        # shared-memory block is reclaimed by the OS either way.
        except Exception:
            pass


#: Collect backend names accepted by :func:`build_collector` and
#: :class:`~repro.utils.config.TrainingConfig`.  Kept as an explicit tuple
#: (rather than derived from the registry) so error messages preserve the
#: documented order.
COLLECT_BACKENDS = ("sequential", "thread", "process", "distributed")

#: Backend name → factory taking the normalized collect options dict (see
#: :func:`build_collector`, which assembles it).  New backends register
#: here and become constructible through the same audited code path —
#: ``TrainingConfig(collect_backend=...)`` → :func:`make_collector` →
#: :func:`build_collector` → registry dispatch.
COLLECTOR_REGISTRY = Registry("collect backend")


@COLLECTOR_REGISTRY.register("sequential")
def _make_sequential_collector(options: Dict[str, Any]) -> GradientCollector:
    return SequentialCollector(fault_schedule=options["fault_schedule"])


@COLLECTOR_REGISTRY.register("thread")
def _make_thread_collector(options: Dict[str, Any]) -> GradientCollector:
    if options["n_workers"] <= 1:
        return _make_sequential_collector(options)
    return ParallelCollector(
        options["n_workers"], fault_schedule=options["fault_schedule"]
    )


@COLLECTOR_REGISTRY.register("process")
def _make_process_collector(options: Dict[str, Any]) -> GradientCollector:
    if options["n_workers"] <= 1:
        return _make_sequential_collector(options)
    return ProcessCollector(
        options["n_workers"], fault_schedule=options["fault_schedule"]
    )


@COLLECTOR_REGISTRY.register("distributed")
def _make_distributed_collector(options: Dict[str, Any]) -> GradientCollector:
    if not options["workers"]:
        raise ValueError(
            "collect_backend='distributed' requires workers=[host:port, ...]"
        )
    # Imported here: the transport subsystem pulls in socket machinery
    # that purely in-process runs never need.
    from repro.fl.transport.collector import DistributedCollector

    return DistributedCollector(
        options["workers"],
        connect_timeout=options["connect_timeout"],
        round_timeout=options["round_timeout"],
        fault_schedule=options["fault_schedule"],
        redispatch=options["redispatch"],
        retry_seed=options["retry_seed"],
        wire_codec=options["wire_codec"],
    )


def build_collector(
    n_workers: int = 1,
    backend: str = "thread",
    *,
    workers: Optional[Sequence[str]] = None,
    connect_timeout: float = 10.0,
    round_timeout: Optional[float] = 120.0,
    fault_schedule: Optional[FaultSchedule] = None,
    redispatch: bool = True,
    retry_seed: int = 0,
    wire_codec: str = "raw",
) -> GradientCollector:
    """Build the collect strategy for ``backend`` at ``n_workers``.

    ``n_workers <= 1`` (or ``backend="sequential"``) gives the sequential
    strategy; otherwise ``"thread"`` gives :class:`ParallelCollector` and
    ``"process"`` gives :class:`ProcessCollector`.  ``"distributed"``
    ignores ``n_workers`` and drives the fleet named by ``workers``
    (``host:port`` specs) through a
    :class:`~repro.fl.transport.collector.DistributedCollector`.

    ``connect_timeout``/``round_timeout``/``redispatch``/``retry_seed``/
    ``wire_codec`` shape the distributed backend's recovery behaviour and
    wire format and are ignored by the in-process backends (which have no
    sockets to time out or frames to compress); ``fault_schedule`` injects
    deterministic faults into any backend.

    Dispatch goes through :data:`COLLECTOR_REGISTRY`; prefer
    :func:`make_collector` when starting from a
    :class:`~repro.utils.config.TrainingConfig`.
    """
    if backend not in COLLECTOR_REGISTRY:
        # The error names the built-ins in documented order; third-party
        # backends registered in COLLECTOR_REGISTRY dispatch the same way.
        raise ValueError(
            f"collect backend must be one of {COLLECT_BACKENDS}, got {backend!r}"
        )
    options: Dict[str, Any] = {
        "n_workers": int(n_workers),
        "workers": list(workers) if workers else None,
        "connect_timeout": connect_timeout,
        "round_timeout": round_timeout,
        "fault_schedule": fault_schedule,
        "redispatch": redispatch,
        "retry_seed": retry_seed,
        "wire_codec": wire_codec,
    }
    return COLLECTOR_REGISTRY.create(backend, options)


#: Sentinel for :func:`make_collector` overrides — ``None`` is a meaningful
#: value for several knobs (``round_timeout=None`` waits forever), so the
#: "not overridden" marker must be something else.
_UNSET: Any = object()


def make_collector(
    config: Any = None,
    *,
    backend: str = _UNSET,
    n_workers: int = _UNSET,
    workers: Optional[Sequence[str]] = _UNSET,
    connect_timeout: float = _UNSET,
    round_timeout: Optional[float] = _UNSET,
    wire_codec: str = _UNSET,
    fault_schedule: Optional[FaultSchedule] = None,
    redispatch: bool = True,
    retry_seed: int = 0,
) -> GradientCollector:
    """Build the collect strategy a config describes (the one public path).

    ``config`` is a :class:`~repro.utils.config.TrainingConfig`, an
    :class:`~repro.utils.config.ExperimentConfig` (its ``training`` is
    used), or ``None`` (defaults).  Keyword overrides take precedence over
    the config's fields — pass only what should differ.  Dispatches
    through :data:`COLLECTOR_REGISTRY`, so registered third-party backends
    construct through the same code path as the built-ins.
    """
    training = getattr(config, "training", config)

    def _field(override: Any, name: str, default: Any) -> Any:
        if override is not _UNSET:
            return override
        return getattr(training, name, default) if training is not None else default

    return build_collector(
        n_workers=_field(n_workers, "n_workers", 1),
        backend=_field(backend, "collect_backend", "thread"),
        workers=_field(workers, "workers", None),
        connect_timeout=_field(connect_timeout, "connect_timeout", 10.0),
        round_timeout=_field(round_timeout, "round_timeout", 120.0),
        wire_codec=_field(wire_codec, "wire_codec", "raw"),
        fault_schedule=fault_schedule,
        redispatch=redispatch,
        retry_seed=retry_seed,
    )
