"""Deterministic fault injection and failure policy for the federation.

The runtime's resilience machinery (retry, shard re-dispatch, dropout
demotion, quorum policies — see ``README.md``'s "Fault tolerance" section)
needs faults it can rehearse *reproducibly*.  This module provides the one
fault-injection API every collect backend understands:

* :class:`FaultSpec` — one declarative fault: *kind* (``crash``,
  ``stall``, ``corrupt_frame``, ``refuse_connect``), the 1-based
  *occurrence* of the triggering event at the injection point, the target
  *worker* index, and (for stalls) a duration.
* :class:`FaultSchedule` — an immutable set of specs, buildable
  declaratively, from CLI ``KIND@ROUND[:SECONDS]`` strings (the
  ``repro-worker --fault`` flag), or drawn from a seeded generator
  (:meth:`FaultSchedule.random`) for chaos sweeps.

What "occurrence" counts depends on where the schedule is injected — the
point of the 1-based counter is that the trigger is a *local, observable
event*, so a schedule replays identically however the surrounding run is
scheduled:

* in a :class:`~repro.fl.transport.worker.WorkerServer`, ``crash`` /
  ``stall`` / ``corrupt_frame`` trigger on the worker's N-th lifetime
  ``ROUND`` request and ``refuse_connect`` on its N-th ``HELLO``;
* in an in-process :class:`~repro.fl.collector.GradientCollector` (and on
  the caller side of a :class:`~repro.fl.transport.collector.\
  DistributedCollector`, where a spec means "the link to worker *w*
  fails"), every kind triggers on the collector's N-th main collect pass.

Either way the faulted worker's clients never compute (their RNG streams
stay untouched), so a faulted round degrades into exactly the dropout /
re-dispatch semantics the simulation already knows how to keep
bit-reproducible.

The module also owns the round-failure policy vocabulary shared by
:class:`~repro.utils.config.TrainingConfig` and
:class:`~repro.fl.simulation.FederatedSimulation`: the
:data:`QUORUM_POLICIES` names and the :class:`FleetOutageError` /
:class:`QuorumLossError` exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.utils.rng import RngLike, as_rng

#: Fault kinds understood by every injection point.
FAULT_KINDS = ("crash", "stall", "corrupt_frame", "refuse_connect")

#: ``TrainingConfig.on_quorum_loss`` policies: ``accept`` the small cohort
#: (record it and continue), ``retry`` the round with a fresh plan, or
#: ``abort`` the run.
QUORUM_POLICIES = ("accept", "retry", "abort")


class FleetOutageError(RuntimeError):
    """Every collect worker failed a round: no gradients were obtained.

    Raised by the simulation instead of demoting the whole cohort; under
    ``on_quorum_loss="retry"`` the round is re-planned and re-collected.
    """


class QuorumLossError(RuntimeError):
    """A round finished below ``min_cohort_fraction`` and policy said stop."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        round: 1-based occurrence of the triggering event at the
            injection point (see the module docstring for what each
            injection point counts).
        worker: index of the targeted worker within its fleet/collector.
        seconds: sleep duration for ``stall`` faults (ignored otherwise).
    """

    kind: str
    round: int
    worker: int = 0
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if int(self.round) < 1:
            raise ValueError(f"fault round is 1-based, got {self.round}")
        if int(self.worker) < 0:
            raise ValueError(f"fault worker must be >= 0, got {self.worker}")
        if float(self.seconds) <= 0:
            raise ValueError(f"stall seconds must be > 0, got {self.seconds}")
        object.__setattr__(self, "round", int(self.round))
        object.__setattr__(self, "worker", int(self.worker))
        object.__setattr__(self, "seconds", float(self.seconds))

    def to_arg(self) -> str:
        """The ``KIND@ROUND[:SECONDS]`` form ``repro-worker --fault`` takes."""
        if self.kind == "stall":
            return f"{self.kind}@{self.round}:{self.seconds:g}"
        return f"{self.kind}@{self.round}"


def parse_fault(spec: str, *, worker: int = 0) -> FaultSpec:
    """Parse one ``KIND@ROUND[:SECONDS]`` CLI fault spec."""
    text = spec.strip()
    kind, separator, rest = text.partition("@")
    if not separator or not rest:
        raise ValueError(
            f"fault spec must look like KIND@ROUND[:SECONDS], got {spec!r}"
        )
    round_text, _, seconds_text = rest.partition(":")
    try:
        round_number = int(round_text)
    except ValueError as exc:
        raise ValueError(f"fault spec has a non-integer round: {spec!r}") from exc
    seconds = 3600.0
    if seconds_text:
        try:
            seconds = float(seconds_text)
        except ValueError as exc:
            raise ValueError(
                f"fault spec has non-numeric seconds: {spec!r}"
            ) from exc
    return FaultSpec(kind=kind, round=round_number, worker=worker, seconds=seconds)


class FaultSchedule:
    """An immutable, deterministic set of :class:`FaultSpec`.

    The schedule is declarative data — it never sleeps, crashes, or
    touches a socket itself; injection points query it
    (:meth:`fires` / :meth:`any_fires`) and act.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        ordered = sorted(
            specs, key=lambda s: (s.worker, s.round, FAULT_KINDS.index(s.kind))
        )
        self.specs: Tuple[FaultSpec, ...] = tuple(ordered)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_args(
        cls, args: Iterable[str], *, worker: int = 0
    ) -> "FaultSchedule":
        """Build a single-worker schedule from CLI ``--fault`` strings."""
        return cls(parse_fault(arg, worker=worker) for arg in args)

    @classmethod
    def random(
        cls,
        rounds: int,
        n_workers: int,
        *,
        rng: RngLike = None,
        crash_rate: float = 0.0,
        stall_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        refuse_rate: float = 0.0,
        stall_seconds: float = 60.0,
    ) -> "FaultSchedule":
        """Draw a seeded chaos schedule: independent per-(round, worker) faults.

        Pass an integer ``rng`` seed (or a generator) for a reproducible
        sweep; identical seeds yield identical schedules.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        rates = {
            "crash": float(crash_rate),
            "stall": float(stall_rate),
            "corrupt_frame": float(corrupt_rate),
            "refuse_connect": float(refuse_rate),
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        generator = as_rng(rng)
        specs: List[FaultSpec] = []
        for round_number in range(1, rounds + 1):
            for worker in range(n_workers):
                # One draw per (round, worker, kind), in a fixed order, so
                # the schedule is a pure function of the seed and the rates.
                for kind in FAULT_KINDS:
                    draw = generator.random()
                    if draw < rates[kind]:
                        specs.append(
                            FaultSpec(
                                kind=kind,
                                round=round_number,
                                worker=worker,
                                seconds=stall_seconds,
                            )
                        )
        return cls(specs)

    # -- queries -------------------------------------------------------------

    def fires(
        self, kind: str, occurrence: int, worker: int = 0
    ) -> Optional[FaultSpec]:
        """The spec of ``kind`` firing at this occurrence/worker, if any."""
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {kind!r}"
            )
        for spec in self.specs:
            if (
                spec.kind == kind
                and spec.round == occurrence
                and spec.worker == worker
            ):
                return spec
        return None

    def any_fires(self, occurrence: int, worker: int = 0) -> Optional[FaultSpec]:
        """The first spec of *any* kind firing at this occurrence/worker."""
        for spec in self.specs:
            if spec.round == occurrence and spec.worker == worker:
                return spec
        return None

    def for_worker(self, worker: int) -> "FaultSchedule":
        """This worker's slice, re-keyed to worker 0.

        A :class:`~repro.fl.transport.worker.WorkerServer` is a fleet of
        one, so fleet helpers hand each server
        ``schedule.for_worker(i)`` and the server queries worker 0.
        """
        return FaultSchedule(
            FaultSpec(
                kind=spec.kind, round=spec.round, worker=0, seconds=spec.seconds
            )
            for spec in self.specs
            if spec.worker == worker
        )

    def worker_indices(self) -> Tuple[int, ...]:
        """Sorted worker indices this schedule targets."""
        return tuple(sorted({spec.worker for spec in self.specs}))

    def to_cli_args(self) -> List[str]:
        """``["--fault", "KIND@ROUND", ...]`` for spawning one worker process.

        Only valid for single-worker schedules (use :meth:`for_worker`
        first); the CLI flag has no worker field because one
        ``repro-worker`` process *is* one worker.
        """
        indices = self.worker_indices()
        if indices not in ((), (0,)):
            raise ValueError(
                "to_cli_args() needs a single-worker schedule (worker 0); "
                f"this one targets workers {indices} — call for_worker() first"
            )
        args: List[str] = []
        for spec in self.specs:
            args.extend(["--fault", spec.to_arg()])
        return args

    # -- plumbing ------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.specs == other.specs

    def __hash__(self) -> int:
        return hash(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        inner = ", ".join(
            f"{spec.kind}@{spec.round}/w{spec.worker}" for spec in self.specs
        )
        return f"FaultSchedule([{inner}])"
