"""Weight initialization schemes.

Every scheme draws in float64 (so a given seed produces the same values
regardless of the requested precision) and casts to the target ``dtype`` at
the end; ``dtype=None`` keeps the library default of float64.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RngLike, as_rng


def _as_dtype(array: np.ndarray, dtype) -> np.ndarray:
    if dtype is None:
        return array
    return array.astype(dtype, copy=False)


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in / fan-out for dense and convolutional weight shapes."""
    if len(shape) == 2:  # (out, in) dense weights
        fan_out, fan_in = shape
    elif len(shape) == 4:  # (out_channels, in_channels, kh, kw) conv weights
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def xavier_uniform(
    shape: Tuple[int, ...], rng: RngLike = None, *, dtype=None
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    rng = as_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _as_dtype(rng.uniform(-limit, limit, size=shape), dtype)


def kaiming_normal(
    shape: Tuple[int, ...], rng: RngLike = None, *, dtype=None
) -> np.ndarray:
    """He/Kaiming normal initialization (ReLU gain)."""
    rng = as_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return _as_dtype(rng.normal(0.0, std, size=shape), dtype)


def normal(
    shape: Tuple[int, ...], std: float = 0.01, rng: RngLike = None, *, dtype=None
) -> np.ndarray:
    """Zero-mean Gaussian initialization with the given standard deviation."""
    rng = as_rng(rng)
    return _as_dtype(rng.normal(0.0, std, size=shape), dtype)


def zeros(shape: Tuple[int, ...], *, dtype=None) -> np.ndarray:
    """All-zero initialization (biases, batch-norm shifts)."""
    return np.zeros(shape, dtype=dtype or np.float64)


def ones(shape: Tuple[int, ...], *, dtype=None) -> np.ndarray:
    """All-one initialization (batch-norm scales)."""
    return np.ones(shape, dtype=dtype or np.float64)
