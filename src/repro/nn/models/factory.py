"""Model factory: build a registered model from a dataset specification."""

from __future__ import annotations

from typing import Any, Dict

from repro.nn.models.logistic import LogisticRegression
from repro.nn.models.mlp import MLP
from repro.nn.models.resnet_lite import ResNetLite
from repro.nn.models.simple_cnn import SimpleCNN
from repro.nn.models.textrnn import TextRNN
from repro.nn.module import Module
from repro.utils.registry import Registry
from repro.utils.rng import RngLike

MODEL_REGISTRY = Registry("models")


def _require_image(spec) -> None:
    if spec.kind != "image":
        raise ValueError(f"model requires an image dataset, got kind={spec.kind!r}")


def _require_text(spec) -> None:
    if spec.kind != "text":
        raise ValueError(f"model requires a text dataset, got kind={spec.kind!r}")


@MODEL_REGISTRY.register("logistic")
def _build_logistic(spec, rng: RngLike = None, **params: Any) -> Module:
    return LogisticRegression(spec.input_dim, spec.num_classes, rng=rng, **params)


@MODEL_REGISTRY.register("mlp")
def _build_mlp(spec, rng: RngLike = None, **params: Any) -> Module:
    return MLP(spec.input_dim, spec.num_classes, rng=rng, **params)


@MODEL_REGISTRY.register("simple_cnn")
def _build_simple_cnn(spec, rng: RngLike = None, **params: Any) -> Module:
    _require_image(spec)
    return SimpleCNN(
        in_channels=spec.channels,
        image_size=(spec.height, spec.width),
        num_classes=spec.num_classes,
        rng=rng,
        **params,
    )


@MODEL_REGISTRY.register("resnet_lite")
def _build_resnet_lite(spec, rng: RngLike = None, **params: Any) -> Module:
    _require_image(spec)
    return ResNetLite(
        in_channels=spec.channels,
        image_size=(spec.height, spec.width),
        num_classes=spec.num_classes,
        rng=rng,
        **params,
    )


@MODEL_REGISTRY.register("textrnn")
def _build_textrnn(spec, rng: RngLike = None, **params: Any) -> Module:
    _require_text(spec)
    return TextRNN(
        vocab_size=spec.vocab_size,
        num_classes=spec.num_classes,
        rng=rng,
        **params,
    )


MODEL_REGISTRY.register_alias("cnn", "simple_cnn")
MODEL_REGISTRY.register_alias("resnet", "resnet_lite")
MODEL_REGISTRY.register_alias("logistic_regression", "logistic")


def build_model(
    name: str, spec, *, rng: RngLike = None, params: Dict[str, Any] = None
) -> Module:
    """Instantiate the model registered under ``name`` for dataset ``spec``.

    Args:
        name: registered model name (``simple_cnn``, ``resnet_lite``,
            ``textrnn``, ``mlp``, ``logistic``).
        spec: a :class:`repro.data.datasets.DataSpec` describing the input.
        rng: seed or generator for weight initialization.
        params: extra keyword arguments forwarded to the model constructor.
    """
    params = dict(params or {})
    return MODEL_REGISTRY.create(name, spec, rng=rng, **params)
