"""TextRNN: embedding + bidirectional recurrent encoder + linear classifier.

Stand-in for the paper's AG-News model (a two-layer bidirectional LSTM).
The default configuration uses a single bidirectional layer to keep rounds
fast; the cell type is selectable (``"rnn"`` or ``"lstm"``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.nn.recurrent import BiRNN
from repro.utils.rng import RngLike, as_rng


class TextRNN(Module):
    """Recurrent text classifier over integer token sequences.

    Args:
        vocab_size: number of distinct tokens.
        num_classes: output classes.
        embed_dim: embedding dimension.
        hidden_size: per-direction hidden size of the recurrent encoder.
        cell: ``"rnn"`` (tanh) or ``"lstm"``.
    """

    def __init__(
        self,
        vocab_size: int,
        num_classes: int,
        *,
        embed_dim: int = 16,
        hidden_size: int = 16,
        cell: str = "rnn",
        rng: RngLike = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        self.embedding = Embedding(vocab_size, embed_dim, rng=rng)
        self.encoder = BiRNN(embed_dim, hidden_size, cell=cell, rng=rng)
        self.head = Linear(self.encoder.output_size, num_classes, rng=rng)
        self.vocab_size = vocab_size
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(
                f"expected (batch, time) integer tokens, got shape {x.shape}"
            )
        embedded = self.embedding(x)
        encoded = self.encoder(embedded)
        return self.head(encoded)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_output)
        grad = self.encoder.backward(grad)
        return self.embedding.backward(grad)
