"""The paper's MNIST/Fashion-MNIST model: 3 conv layers + 2 fully connected."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.functional import conv_output_size
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, Sequential
from repro.nn.module import Module
from repro.utils.rng import RngLike, as_rng


class SimpleCNN(Module):
    """3-convolution, 2-fully-connected CNN.

    Mirrors the architecture described in Section V-A of the paper (a CNN
    with 3 convolutional layers and 2 fully connected layers), with channel
    widths scaled down so a 50-client federated round completes in well under
    a second on a laptop CPU.

    Args:
        in_channels: input image channels.
        image_size: (height, width) of the input images.
        num_classes: output classes.
        channels: channel widths of the three convolution stages.
        hidden_dim: width of the penultimate fully connected layer.
    """

    def __init__(
        self,
        in_channels: int = 1,
        image_size: Tuple[int, int] = (14, 14),
        num_classes: int = 10,
        *,
        channels: Sequence[int] = (8, 16, 16),
        hidden_dim: int = 32,
        rng: RngLike = None,
    ):
        super().__init__()
        if len(channels) != 3:
            raise ValueError(f"channels must have exactly 3 entries, got {channels}")
        rng = as_rng(rng)
        height, width = image_size
        c1, c2, c3 = channels

        def after_pool(size: int) -> int:
            return conv_output_size(size, 2, 2, 0)

        # conv1 (3x3, pad 1) -> pool -> conv2 -> pool -> conv3
        h1, w1 = after_pool(height), after_pool(width)
        h2, w2 = after_pool(h1), after_pool(w1)
        flattened = c3 * h2 * w2
        if flattened <= 0:
            raise ValueError(f"image size {image_size} is too small for SimpleCNN")

        self.features = Sequential(
            Conv2d(in_channels, c1, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c1, c2, 3, padding=1, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(c2, c3, 3, padding=1, rng=rng),
            ReLU(),
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(flattened, hidden_dim, rng=rng),
            ReLU(),
            Linear(hidden_dim, num_classes, rng=rng),
        )
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.features(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_output)
        return self.features.backward(grad)
