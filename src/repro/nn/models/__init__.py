"""Model zoo used by the reproduction's federated experiments.

Each model mirrors one of the paper's global models at laptop scale:

* :class:`SimpleCNN` — the 3-conv / 2-fc CNN used for MNIST and
  Fashion-MNIST.
* :class:`ResNetLite` — a small residual CNN with batch normalization, the
  stand-in for ResNet-18 on the CIFAR-10-like task (kept because its
  near-balanced gradient sign statistics are what the paper analyses).
* :class:`TextRNN` — embedding + bidirectional recurrent encoder + linear
  classifier, the stand-in for the AG-News TextRNN.
* :class:`MLP`, :class:`LogisticRegression` — light models used by tests and
  fast benchmark configurations.

``build_model`` constructs a model by registered name from a dataset's
:class:`~repro.data.datasets.DataSpec`.
"""

from repro.nn.models.factory import MODEL_REGISTRY, build_model
from repro.nn.models.logistic import LogisticRegression
from repro.nn.models.mlp import MLP
from repro.nn.models.resnet_lite import ResNetLite
from repro.nn.models.simple_cnn import SimpleCNN
from repro.nn.models.textrnn import TextRNN

__all__ = [
    "MODEL_REGISTRY",
    "build_model",
    "MLP",
    "LogisticRegression",
    "SimpleCNN",
    "ResNetLite",
    "TextRNN",
]
