"""Multinomial logistic-regression classifier (single linear layer)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Flatten, Linear, Sequential
from repro.nn.module import Module
from repro.utils.rng import RngLike, as_rng


class LogisticRegression(Module):
    """Softmax regression over flattened inputs.

    The lightest model in the zoo; used by fast tests and by analysis
    experiments where a convex objective is convenient.
    """

    def __init__(self, input_dim: int, num_classes: int, *, rng: RngLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.network = Sequential(Flatten(), Linear(input_dim, num_classes, rng=rng))
        self.input_dim = input_dim
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.network(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.network.backward(grad_output)
