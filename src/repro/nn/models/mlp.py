"""Multi-layer perceptron classifier."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import Flatten, Linear, Sequential
from repro.nn.module import Module
from repro.utils.rng import RngLike, as_rng


class MLP(Module):
    """Fully connected classifier with ReLU hidden layers.

    Args:
        input_dim: flattened input dimension.
        num_classes: number of output classes.
        hidden_dims: sizes of the hidden layers (may be empty for a linear
            classifier).
    """

    def __init__(
        self,
        input_dim: int,
        num_classes: int,
        hidden_dims: Sequence[int] = (64, 32),
        *,
        rng: RngLike = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        layers = [Flatten()]
        previous = input_dim
        for hidden in hidden_dims:
            layers.append(Linear(previous, hidden, rng=rng))
            layers.append(ReLU())
            previous = hidden
        layers.append(Linear(previous, num_classes, rng=rng))
        self.network = Sequential(*layers)
        self.input_dim = input_dim
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.network(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.network.backward(grad_output)
