"""ResNetLite: small residual CNN standing in for ResNet-18.

The paper uses ResNet-18 on CIFAR-10 and shows (Fig. 2) that its gradient
sign statistics are nearly balanced between positive and negative — the
regime where SignGuard's plain sign features are weakest and the similarity
feature helps.  What produces that balance is the combination of residual
connections and batch normalization, both of which this model keeps, while
the channel widths and depth are reduced so federated rounds stay fast.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Residual,
    Sequential,
)
from repro.nn.module import Module
from repro.utils.rng import RngLike, as_rng


def _basic_block(in_channels: int, out_channels: int, stride: int, rng) -> Residual:
    """Standard ResNet basic block (two 3x3 convolutions + shortcut)."""
    body = Sequential(
        Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        ),
        BatchNorm2d(out_channels),
        ReLU(),
        Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng),
        BatchNorm2d(out_channels),
    )
    if stride != 1 or in_channels != out_channels:
        shortcut = Sequential(
            Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
            BatchNorm2d(out_channels),
        )
    else:
        shortcut = Identity()
    return Residual(body, shortcut)


class ResNetLite(Module):
    """Reduced residual network: stem + two residual stages + linear head."""

    def __init__(
        self,
        in_channels: int = 3,
        image_size: Tuple[int, int] = (16, 16),
        num_classes: int = 10,
        *,
        base_channels: int = 8,
        rng: RngLike = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        self.stem = Sequential(
            Conv2d(in_channels, base_channels, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(base_channels),
            ReLU(),
        )
        self.stage1 = _basic_block(base_channels, base_channels, stride=1, rng=rng)
        self.relu1 = ReLU()
        self.stage2 = _basic_block(base_channels, 2 * base_channels, stride=2, rng=rng)
        self.relu2 = ReLU()
        self.pool = GlobalAvgPool2d()
        self.head = Linear(2 * base_channels, num_classes, rng=rng)
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.stem(x)
        out = self.relu1(self.stage1(out))
        out = self.relu2(self.stage2(out))
        out = self.pool(out)
        return self.head(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.head.backward(grad_output)
        grad = self.pool.backward(grad)
        grad = self.stage2.backward(self.relu2.backward(grad))
        grad = self.stage1.backward(self.relu1.backward(grad))
        return self.stem.backward(grad)
