"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import sigmoid
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray = np.empty(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class LeakyReLU(Module):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        if negative_slope < 0:
            raise ValueError(f"negative_slope must be >= 0, got {negative_slope}")
        self.negative_slope = negative_slope
        self._mask: np.ndarray = np.empty(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Sigmoid(Module):
    """Logistic activation."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray = np.empty(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = sigmoid(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self):
        super().__init__()
        self._output: np.ndarray = np.empty(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._output**2)
