"""Stateless numerical building blocks: softmax, one-hot, im2col/col2im.

Every function here is dtype-preserving: float32 inputs produce float32
intermediates and outputs (softmax, sigmoid, the im2col patch matrix), so a
float32 model runs its whole forward/backward pass at reduced precision
instead of silently promoting to float64 in the middle.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def floating_dtype(dtype) -> np.dtype:
    """The working float dtype for an input dtype (non-floats use float64)."""
    dtype = np.dtype(dtype)
    return dtype if dtype.kind == "f" else np.dtype(np.float64)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int, *, dtype=np.float64) -> np.ndarray:
    """Convert integer labels of shape ``(n,)`` into one-hot rows."""
    labels = np.asarray(labels, dtype=int)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((len(labels), num_classes), dtype=dtype)
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic function, stable for large |x|."""
    out = np.empty_like(x, dtype=floating_dtype(x.dtype))
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold image patches into columns for convolution as matrix multiply.

    Args:
        x: input of shape ``(batch, channels, height, width)``.
        kernel: square kernel size.
        stride: stride.
        padding: symmetric zero padding.

    Returns:
        (columns, out_h, out_w) where ``columns`` has shape
        ``(batch * out_h * out_w, channels * kernel * kernel)``.
    """
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    padded = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    columns = np.empty(
        (batch, channels, kernel, kernel, out_h, out_w), dtype=floating_dtype(x.dtype)
    )
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            columns[:, :, ky, kx, :, :] = padded[:, :, ky:y_end:stride, kx:x_end:stride]
    columns = columns.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return columns, out_h, out_w


def col2im(
    columns: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold column gradients back into an image-shaped gradient (inverse of im2col)."""
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel, stride, padding)
    out_w = conv_output_size(width, kernel, stride, padding)
    columns = columns.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding),
        dtype=floating_dtype(columns.dtype),
    )
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += columns[
                :, :, ky, kx, :, :
            ]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]
