"""Loss functions with explicit gradient computation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import floating_dtype, log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss over the batch; ``backward`` returns
    the gradient of that mean loss with respect to the logits.
    """

    def __init__(self):
        self._probabilities: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits)
        logits = logits.astype(floating_dtype(logits.dtype), copy=False)
        targets = np.asarray(targets, dtype=int)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (batch, classes), got {logits.shape}")
        if len(logits) != len(targets):
            raise ValueError(
                f"batch size mismatch: {len(logits)} logits vs {len(targets)} targets"
            )
        log_probs = log_softmax(logits, axis=1)
        self._probabilities = softmax(logits, axis=1)
        self._targets = targets
        picked = log_probs[np.arange(len(targets)), targets]
        return float(-picked.mean())

    def backward(self) -> np.ndarray:
        if self._probabilities is None or self._targets is None:
            raise RuntimeError("forward must be called before backward")
        batch = len(self._targets)
        grad = self._probabilities - one_hot(
            self._targets, self._probabilities.shape[1], dtype=self._probabilities.dtype
        )
        return grad / batch

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class MSELoss:
    """Mean squared error over arbitrary-shaped predictions."""

    def __init__(self):
        self._difference: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions = np.asarray(predictions)
        predictions = predictions.astype(floating_dtype(predictions.dtype), copy=False)
        targets = np.asarray(targets, dtype=predictions.dtype)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} "
                f"vs targets {targets.shape}"
            )
        self._difference = predictions - targets
        return float(np.mean(self._difference**2))

    def backward(self) -> np.ndarray:
        if self._difference is None:
            raise RuntimeError("forward must be called before backward")
        return 2.0 * self._difference / self._difference.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    logits = np.asarray(logits)
    targets = np.asarray(targets, dtype=int)
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == targets))
