"""Parameter and Module base classes for the numpy neural-network library.

There is no autograd tape: each layer implements ``forward`` (caching what it
needs) and ``backward`` (consuming the cached values and accumulating
gradients into its parameters).  This keeps the library small, explicit, and
easy to verify with finite-difference tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

#: Floating dtypes the library allocates parameters, gradients, and
#: activations in.  Everything else (integer labels, token indices, boolean
#: masks) keeps its natural dtype.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: Default parameter/activation dtype when none is requested.
DEFAULT_DTYPE = np.dtype(np.float64)


def check_dtype(dtype) -> np.dtype:
    """Validate and normalize a requested floating dtype."""
    dtype = np.dtype(dtype)
    if dtype not in SUPPORTED_DTYPES:
        raise ValueError(f"dtype must be float32 or float64, got {dtype}")
    return dtype


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Args:
        data: initial values; cast to ``dtype``.
        name: human-readable identifier used in state dicts.
        dtype: floating dtype of the value and gradient buffers
            (``float64`` by default; ``float32`` halves the memory traffic
            of every gradient computed against this parameter).
    """

    def __init__(self, data: np.ndarray, name: str = "param", *, dtype=None):
        dtype = DEFAULT_DTYPE if dtype is None else check_dtype(dtype)
        self.data = np.asarray(data, dtype=dtype)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def astype(self, dtype) -> "Parameter":
        """Cast the value and gradient buffers to ``dtype`` (in place)."""
        dtype = check_dtype(dtype)
        self.data = self.data.astype(dtype, copy=False)
        self.grad = self.grad.astype(dtype, copy=False)
        return self

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    Subclasses register parameters as attributes of type :class:`Parameter`
    and sub-modules as attributes of type :class:`Module`; both are then
    discovered automatically by :meth:`parameters` and :meth:`modules`.
    """

    def __init__(self):
        self.training = True

    # -- construction helpers -------------------------------------------------
    def _children(self) -> Iterator[Tuple[str, "Module"]]:
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{index}", item

    def _own_parameters(self) -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield name, value

    def _own_buffers(self) -> Iterator[Tuple[str, np.ndarray]]:
        """(name, array) pairs of non-parameter state updated during forward.

        Layers with such state (BatchNorm running statistics) override this;
        the arrays yielded must be the module's *live* buffers so that
        :meth:`load_state_dict` can write into them in place.
        """
        return iter(())

    # -- public API ------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its sub-modules."""
        params: List[Parameter] = [p for _, p in self._own_parameters()]
        for _, child in self._children():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Parameter]]:
        """(name, parameter) pairs with dotted module paths."""
        named: List[Tuple[str, Parameter]] = []
        for name, param in self._own_parameters():
            named.append((f"{prefix}{name}", param))
        for child_name, child in self._children():
            named.extend(child.named_parameters(prefix=f"{prefix}{child_name}."))
        return named

    def named_buffers(self, prefix: str = "") -> List[Tuple[str, np.ndarray]]:
        """(name, array) pairs of non-parameter buffers with dotted paths.

        Buffers are state the forward pass updates outside of gradient
        descent — BatchNorm running statistics are the one built-in example.
        Modules without such state contribute nothing.
        """
        named: List[Tuple[str, np.ndarray]] = []
        for name, buffer in self._own_buffers():
            named.append((f"{prefix}{name}", buffer))
        for child_name, child in self._children():
            named.extend(child.named_buffers(prefix=f"{prefix}{child_name}."))
        return named

    def modules(self) -> List["Module"]:
        """This module and all nested sub-modules (depth-first)."""
        found: List[Module] = [self]
        for _, child in self._children():
            found.extend(child.modules())
        return found

    def zero_grad(self) -> None:
        """Zero every parameter gradient in the module tree."""
        for param in self.parameters():
            param.zero_grad()

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the module's parameters (``float64`` if none)."""
        for param in self.parameters():
            return param.dtype
        return DEFAULT_DTYPE

    def astype(self, dtype) -> "Module":
        """Cast every parameter (and extra state) in the tree to ``dtype``.

        This is the conversion entry point used by
        :func:`repro.fl.experiment.run_experiment` when
        ``TrainingConfig(dtype="float32")`` is requested: casting the model
        makes the clients *compute* reduced-precision gradients instead of
        converting float64 results after the fact.
        """
        dtype = check_dtype(dtype)
        for module in self.modules():
            for _, param in module._own_parameters():
                param.astype(dtype)
            module._cast_extra_state(dtype)
        return self

    def _cast_extra_state(self, dtype: np.dtype) -> None:
        """Cast non-parameter floating buffers (overridden by e.g. BatchNorm)."""

    def train(self) -> "Module":
        """Switch the module tree into training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch the module tree into evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def state_dict(self, *, include_buffers: bool = True) -> Dict[str, np.ndarray]:
        """Copy of every named parameter's data (and, by default, buffers).

        The result is a plain ``{name: ndarray}`` mapping — picklable, so it
        doubles as the wire format the process-pool collect backend uses to
        ship per-round parameter updates to its worker replicas.
        """
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        if include_buffers:
            for name, buffer in self.named_buffers():
                state[name] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values previously produced by :meth:`state_dict`.

        Every parameter must be present; buffer entries are optional (a
        parameters-only dict from ``state_dict(include_buffers=False)`` loads
        cleanly), but unknown keys are rejected.  Values are written in place,
        so dtypes follow the destination arrays.
        """
        own = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own) - set(buffers)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            target = own[name].data if name in own else buffers[name]
            if target.shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {target.shape} vs {values.shape}"
                )
            target[...] = values

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(param.size for param in self.parameters())

    # -- computation -----------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(params={self.num_parameters()})"
