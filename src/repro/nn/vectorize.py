"""Flattening models to the 1-D vectors exchanged in federated learning.

The entire attack/defense layer of the reproduction operates on flat
``numpy`` vectors; these helpers convert between a :class:`Module`'s
parameters/gradients and that representation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn.module import Module


def count_parameters(model: Module) -> int:
    """Total number of scalar parameters in ``model``."""
    return model.num_parameters()


def get_flat_parameters(model: Module) -> np.ndarray:
    """Concatenate all parameter values into a single 1-D vector."""
    parts: List[np.ndarray] = [param.data.reshape(-1) for param in model.parameters()]
    if not parts:
        return np.zeros(0)
    return np.concatenate(parts)


def set_flat_parameters(model: Module, flat: np.ndarray) -> None:
    """Write a flat parameter vector back into the model (in place).

    The values are cast to each parameter's own dtype as they are scattered,
    so float32 models stay float32.
    """
    flat = np.asarray(flat)
    offset = 0
    for param in model.parameters():
        size = param.size
        param.data[...] = flat[offset : offset + size].reshape(param.data.shape)
        offset += size
    if offset != flat.size:
        raise ValueError(
            f"flat vector has {flat.size} entries but the model has {offset} parameters"
        )


def get_flat_gradients(model: Module) -> np.ndarray:
    """Concatenate all parameter gradients into a single 1-D vector."""
    parts: List[np.ndarray] = [param.grad.reshape(-1) for param in model.parameters()]
    if not parts:
        return np.zeros(0)
    return np.concatenate(parts)


def set_flat_gradients(model: Module, flat: np.ndarray) -> None:
    """Write a flat gradient vector back into the model parameters (in place)."""
    flat = np.asarray(flat)
    offset = 0
    for param in model.parameters():
        size = param.size
        param.grad[...] = flat[offset : offset + size].reshape(param.data.shape)
        offset += size
    if offset != flat.size:
        raise ValueError(
            f"flat vector has {flat.size} entries but the model has {offset} parameters"
        )
