"""Feed-forward layers: dense, convolutional, pooling, normalization, etc.

Every layer follows the ``forward`` / ``backward`` contract of
:class:`repro.nn.module.Module`.  Convolution is implemented with im2col so
the heavy lifting stays inside a single matrix multiply, which is fast enough
in numpy for the model sizes used by the reproduction.

Layers that own parameters accept a ``dtype`` argument (float64 by default)
and allocate their weights, biases, and normalization statistics in that
precision; the scratch buffers of the stateless layers follow the dtype of
whatever flows through them, so a float32 model stays float32 end to end.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import init
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike, as_rng


class Identity(Module):
    """Pass-through layer (used as a residual shortcut)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        rng: RngLike = None,
        dtype=None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        rng = as_rng(rng)
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), rng),
            name="weight",
            dtype=dtype,
        )
        self.bias = (
            Parameter(init.zeros((out_features,)), name="bias", dtype=dtype)
            if bias
            else None
        )
        self._input: np.ndarray = np.empty(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got shape {x.shape}"
            )
        self._input = x
        output = x @ self.weight.data.T
        if self.bias is not None:
            output = output + self.bias.data
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        # Support inputs with extra leading dims by flattening them.
        x = self._input.reshape(-1, self.in_features)
        grad = grad_output.reshape(-1, self.out_features)
        self.weight.grad += grad.T @ x
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        grad_input = grad @ self.weight.data
        return grad_input.reshape(self._input.shape)


class Conv2d(Module):
    """2-D convolution with square kernels, implemented via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: RngLike = None,
        dtype=None,
    ):
        super().__init__()
        if kernel_size < 1 or stride < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = as_rng(rng)
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
            name="weight",
            dtype=dtype,
        )
        self.bias = (
            Parameter(init.zeros((out_channels,)), name="bias", dtype=dtype)
            if bias
            else None
        )
        self._columns: np.ndarray = np.empty(0)
        self._input_shape: tuple = ()
        self._out_hw: tuple = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input of shape (batch, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        self._input_shape = x.shape
        columns, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        self._columns = columns
        self._out_hw = (out_h, out_w)
        flat_weight = self.weight.data.reshape(self.out_channels, -1)
        output = columns @ flat_weight.T
        if self.bias is not None:
            output = output + self.bias.data
        batch = x.shape[0]
        return output.reshape(batch, out_h, out_w, self.out_channels).transpose(
            0, 3, 1, 2
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch = self._input_shape[0]
        out_h, out_w = self._out_hw
        grad = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        flat_weight = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad.T @ self._columns).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        grad_columns = grad @ flat_weight
        return col2im(
            grad_columns, self._input_shape, self.kernel_size, self.stride, self.padding
        )


class MaxPool2d(Module):
    """Max pooling with a square window (stride defaults to the window size)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._input_shape: tuple = ()
        self._argmax: np.ndarray = np.empty(0)
        self._out_hw: tuple = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        self._input_shape = x.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, 0)
        out_w = conv_output_size(width, self.kernel_size, self.stride, 0)
        self._out_hw = (out_h, out_w)
        # Build (batch, channels, out_h, out_w, k*k) windows then take the max.
        windows = np.empty(
            (batch, channels, out_h, out_w, self.kernel_size * self.kernel_size),
            dtype=x.dtype,
        )
        for ky in range(self.kernel_size):
            for kx in range(self.kernel_size):
                windows[..., ky * self.kernel_size + kx] = x[
                    :,
                    :,
                    ky : ky + self.stride * out_h : self.stride,
                    kx : kx + self.stride * out_w : self.stride,
                ]
        self._argmax = np.argmax(windows, axis=-1)
        return np.max(windows, axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._input_shape
        out_h, out_w = self._out_hw
        grad_input = np.zeros(self._input_shape, dtype=grad_output.dtype)
        ky = self._argmax // self.kernel_size
        kx = self._argmax % self.kernel_size
        rows = (np.arange(out_h)[None, None, :, None] * self.stride) + ky
        cols = (np.arange(out_w)[None, None, None, :] * self.stride) + kx
        b_index = np.arange(batch)[:, None, None, None]
        c_index = np.arange(channels)[None, :, None, None]
        np.add.at(grad_input, (b_index, c_index, rows, cols), grad_output)
        return grad_input


class AvgPool2d(Module):
    """Average pooling with a square window (stride defaults to window size)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._input_shape: tuple = ()
        self._out_hw: tuple = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        self._input_shape = x.shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, 0)
        out_w = conv_output_size(width, self.kernel_size, self.stride, 0)
        self._out_hw = (out_h, out_w)
        output = np.zeros((batch, channels, out_h, out_w), dtype=x.dtype)
        for ky in range(self.kernel_size):
            for kx in range(self.kernel_size):
                output += x[
                    :,
                    :,
                    ky : ky + self.stride * out_h : self.stride,
                    kx : kx + self.stride * out_w : self.stride,
                ]
        return output / (self.kernel_size * self.kernel_size)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out_h, out_w = self._out_hw
        grad_input = np.zeros(self._input_shape, dtype=grad_output.dtype)
        scaled = grad_output / (self.kernel_size * self.kernel_size)
        for ky in range(self.kernel_size):
            for kx in range(self.kernel_size):
                grad_input[
                    :,
                    :,
                    ky : ky + self.stride * out_h : self.stride,
                    kx : kx + self.stride * out_w : self.stride,
                ] += scaled
        return grad_input


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing (batch, channels)."""

    def __init__(self):
        super().__init__()
        self._input_shape: tuple = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        batch, channels, height, width = self._input_shape
        grad = grad_output[:, :, None, None] / (height * width)
        return np.broadcast_to(grad, self._input_shape).copy()


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self):
        super().__init__()
        self._input_shape: tuple = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, p: float = 0.5, *, rng: RngLike = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(rng)
        self._mask: np.ndarray = np.empty(0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = np.ones_like(x)
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        self._mask = mask.astype(x.dtype, copy=False)
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class _BatchNormBase(Module):
    """Shared batch-norm logic over an arbitrary reduction axis set.

    The running statistics are *buffers* (non-parameter state updated by the
    training forward pass); they participate in ``state_dict`` /
    ``load_state_dict`` via :meth:`_own_buffers`.  When ``stats_log`` is a
    list, every training forward also appends its ``(batch_mean, batch_var)``
    pair there — the parallel collect backends use this to replay client
    batch-statistics updates onto the global model in client order.
    """

    def __init__(
        self,
        num_features: int,
        *,
        momentum: float = 0.1,
        eps: float = 1e-5,
        dtype=None,
    ):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)), name="gamma", dtype=dtype)
        self.beta = Parameter(init.zeros((num_features,)), name="beta", dtype=dtype)
        self.running_mean = np.zeros(num_features, dtype=self.gamma.dtype)
        self.running_var = np.ones(num_features, dtype=self.gamma.dtype)
        self.stats_log: Optional[list] = None
        self._cache: tuple = ()

    def _cast_extra_state(self, dtype: np.dtype) -> None:
        # The running statistics follow the parameter dtype on Module.astype.
        self.running_mean = self.running_mean.astype(dtype, copy=False)
        self.running_var = self.running_var.astype(dtype, copy=False)

    def _own_buffers(self):
        yield "running_mean", self.running_mean
        yield "running_var", self.running_var

    def apply_batch_stats(self, mean: np.ndarray, var: np.ndarray) -> None:
        """Fold one batch's statistics into the running estimates.

        This is the exact update the training forward performs, factored out
        so a recorded ``stats_log`` can be replayed on another module with
        bit-identical floating-point results.
        """
        self.running_mean = (
            (1 - self.momentum) * self.running_mean + self.momentum * mean
        )
        self.running_var = (
            (1 - self.momentum) * self.running_var + self.momentum * var
        )

    def _reshape(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[1] = self.num_features
        return stat.reshape(shape)

    def _axes(self, ndim: int) -> tuple:
        return tuple(axis for axis in range(ndim) if axis != 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._axes(x.ndim)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.apply_batch_stats(mean, var)
            if self.stats_log is not None:
                self.stats_log.append((mean, var))
        else:
            mean = self.running_mean
            var = self.running_var
        mean_b = self._reshape(mean, x.ndim)
        var_b = self._reshape(var, x.ndim)
        inv_std = 1.0 / np.sqrt(var_b + self.eps)
        normalized = (x - mean_b) * inv_std
        self._cache = (normalized, inv_std, axes, x.shape)
        return self._reshape(self.gamma.data, x.ndim) * normalized + self._reshape(
            self.beta.data, x.ndim
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        normalized, inv_std, axes, shape = self._cache
        self.gamma.grad += (grad_output * normalized).sum(axis=axes)
        self.beta.grad += grad_output.sum(axis=axes)
        gamma_b = self._reshape(self.gamma.data, len(shape))
        grad_norm = grad_output * gamma_b
        if not self.training:
            return grad_norm * inv_std
        # Full batch-norm backward (training mode).
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=axes, keepdims=True)
            - normalized * (grad_norm * normalized).mean(axis=axes, keepdims=True)
        ) * inv_std
        return grad_input


class BatchNorm1d(_BatchNormBase):
    """Batch normalization over a (batch, features) input."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (batch, {self.num_features}) input, got {x.shape}"
            )
        return super().forward(x)


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over a (batch, channels, H, W) input."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (batch, {self.num_features}, H, W) input, got {x.shape}"
            )
        return super().forward(x)


class Embedding(Module):
    """Token embedding lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        *,
        rng: RngLike = None,
        dtype=None,
    ):
        super().__init__()
        if num_embeddings < 1 or embedding_dim < 1:
            raise ValueError("num_embeddings and embedding_dim must be >= 1")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = as_rng(rng)
        self.weight = Parameter(
            init.normal((num_embeddings, embedding_dim), std=0.1, rng=rng),
            name="weight",
            dtype=dtype,
        )
        self._indices: np.ndarray = np.empty(0, dtype=int)

    def forward(self, x: np.ndarray) -> np.ndarray:
        indices = np.asarray(x, dtype=int)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise ValueError(
                f"token indices must be in [0, {self.num_embeddings}), "
                f"got range [{indices.min()}, {indices.max()}]"
            )
        self._indices = indices
        return self.weight.data[indices]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        flat_indices = self._indices.reshape(-1)
        flat_grad = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, flat_indices, flat_grad)
        # Token indices are not differentiable; return zeros of the input shape.
        return np.zeros(self._indices.shape, dtype=self.weight.dtype)


class Sequential(Module):
    """Chain of layers applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: List[Module] = list(layers)

    def append(self, layer: Module) -> "Sequential":
        """Add a layer at the end of the chain."""
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output


class Residual(Module):
    """Residual wrapper: ``y = body(x) + shortcut(x)``.

    The shortcut defaults to identity; pass a 1x1 convolution (or any other
    module) when the body changes the number of channels or resolution.
    """

    def __init__(self, body: Module, shortcut: Optional[Module] = None):
        super().__init__()
        self.body = body
        self.shortcut = shortcut if shortcut is not None else Identity()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.body(x) + self.shortcut(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_body = self.body.backward(grad_output)
        grad_shortcut = self.shortcut.backward(grad_output)
        return grad_body + grad_shortcut
