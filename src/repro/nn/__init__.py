"""A small numpy neural-network library with explicit forward/backward passes.

This package is the training substrate that stands in for PyTorch in the
reproduction.  It exposes:

* :class:`Parameter` / :class:`Module` — the layer abstraction (explicit
  ``forward`` / ``backward``, accumulated gradients).
* layers — ``Linear``, ``Conv2d``, pooling, ``BatchNorm``, ``Dropout``,
  ``Embedding``, ``Sequential``, residual blocks.
* recurrent layers — ``RNN``, ``LSTM``, bidirectional wrappers.
* losses — ``CrossEntropyLoss``, ``MSELoss``.
* optimizers — ``SGD`` with momentum and weight decay, LR schedules.
* vectorization helpers — flatten/unflatten model parameters and gradients
  into the 1-D vectors that the federated-learning layer exchanges.

Only the pieces required by the paper's models (CNN, residual CNN, text RNN)
are implemented, but each piece is a complete, tested implementation rather
than a stub.
"""

from repro.nn.module import Module, Parameter
from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Residual,
    Sequential,
)
from repro.nn.recurrent import LSTM, RNN, BiRNN
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, ConstantLR, StepLR
from repro.nn.vectorize import (
    count_parameters,
    get_flat_gradients,
    get_flat_parameters,
    set_flat_gradients,
    set_flat_parameters,
)

__all__ = [
    "Module",
    "Parameter",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "Identity",
    "Residual",
    "Sequential",
    "RNN",
    "LSTM",
    "BiRNN",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "StepLR",
    "ConstantLR",
    "count_parameters",
    "get_flat_parameters",
    "set_flat_parameters",
    "get_flat_gradients",
    "set_flat_gradients",
]
