"""Recurrent layers: vanilla RNN, LSTM, and a bidirectional wrapper.

The paper's AG-News model is a two-layer bidirectional LSTM; our stand-in
text model uses these layers over synthetic token sequences.  Sequences are
processed in (batch, time, features) layout and the layers return either the
full output sequence or only the final hidden state.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn import init
from repro.nn.functional import sigmoid
from repro.nn.module import Module, Parameter
from repro.utils.rng import RngLike, as_rng


class RNN(Module):
    """Single-layer tanh RNN.

    Args:
        input_size: feature size of each timestep.
        hidden_size: hidden state dimension.
        return_sequences: when True, :meth:`forward` returns the hidden state
            at every timestep; otherwise only the final hidden state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        *,
        return_sequences: bool = False,
        reverse: bool = False,
        rng: RngLike = None,
        dtype=None,
    ):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self.reverse = reverse
        rng = as_rng(rng)
        self.w_ih = Parameter(
            init.xavier_uniform((hidden_size, input_size), rng),
            name="w_ih",
            dtype=dtype,
        )
        self.w_hh = Parameter(
            init.xavier_uniform((hidden_size, hidden_size), rng),
            name="w_hh",
            dtype=dtype,
        )
        self.bias = Parameter(init.zeros((hidden_size,)), name="bias", dtype=dtype)
        self._cache: Tuple = ()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(
                f"expected (batch, time, {self.input_size}) input, got {x.shape}"
            )
        if self.reverse:
            x = x[:, ::-1, :]
        batch, time_steps, _ = x.shape
        dtype = self.w_ih.dtype
        hidden = np.zeros((batch, self.hidden_size), dtype=dtype)
        hiddens = np.zeros((batch, time_steps, self.hidden_size), dtype=dtype)
        pre_activations = np.zeros_like(hiddens)
        for t in range(time_steps):
            pre = (
                x[:, t, :] @ self.w_ih.data.T
                + hidden @ self.w_hh.data.T
                + self.bias.data
            )
            hidden = np.tanh(pre)
            pre_activations[:, t, :] = pre
            hiddens[:, t, :] = hidden
        self._cache = (x, hiddens, pre_activations)
        if self.return_sequences:
            return hiddens[:, ::-1, :] if self.reverse else hiddens
        return hiddens[:, -1, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x, hiddens, _ = self._cache
        batch, time_steps, _ = x.shape
        dtype = self.w_ih.dtype
        if self.return_sequences:
            grad_seq = grad_output[:, ::-1, :] if self.reverse else grad_output
        else:
            grad_seq = np.zeros((batch, time_steps, self.hidden_size), dtype=dtype)
            grad_seq[:, -1, :] = grad_output
        grad_x = np.zeros_like(x)
        grad_hidden_next = np.zeros((batch, self.hidden_size), dtype=dtype)
        for t in reversed(range(time_steps)):
            grad_hidden = grad_seq[:, t, :] + grad_hidden_next
            grad_pre = grad_hidden * (1.0 - hiddens[:, t, :] ** 2)
            previous_hidden = (
                hiddens[:, t - 1, :]
                if t > 0
                else np.zeros((batch, self.hidden_size), dtype=dtype)
            )
            self.w_ih.grad += grad_pre.T @ x[:, t, :]
            self.w_hh.grad += grad_pre.T @ previous_hidden
            self.bias.grad += grad_pre.sum(axis=0)
            grad_x[:, t, :] = grad_pre @ self.w_ih.data
            grad_hidden_next = grad_pre @ self.w_hh.data
        if self.reverse:
            grad_x = grad_x[:, ::-1, :]
        return grad_x


class LSTM(Module):
    """Single-layer LSTM with concatenated gate weights.

    Gate ordering inside the stacked weight matrices is (input, forget,
    cell, output).  The forget-gate bias is initialized to 1, the standard
    trick to ease gradient flow early in training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        *,
        return_sequences: bool = False,
        reverse: bool = False,
        rng: RngLike = None,
        dtype=None,
    ):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self.reverse = reverse
        rng = as_rng(rng)
        self.w_ih = Parameter(
            init.xavier_uniform((4 * hidden_size, input_size), rng),
            name="w_ih",
            dtype=dtype,
        )
        self.w_hh = Parameter(
            init.xavier_uniform((4 * hidden_size, hidden_size), rng),
            name="w_hh",
            dtype=dtype,
        )
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate bias
        self.bias = Parameter(bias, name="bias", dtype=dtype)
        self._cache: Tuple = ()

    def _split(self, stacked: np.ndarray) -> Tuple[np.ndarray, ...]:
        h = self.hidden_size
        return (
            stacked[:, :h],
            stacked[:, h : 2 * h],
            stacked[:, 2 * h : 3 * h],
            stacked[:, 3 * h :],
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(
                f"expected (batch, time, {self.input_size}) input, got {x.shape}"
            )
        if self.reverse:
            x = x[:, ::-1, :]
        batch, time_steps, _ = x.shape
        dtype = self.w_ih.dtype
        hidden = np.zeros((batch, self.hidden_size), dtype=dtype)
        cell = np.zeros((batch, self.hidden_size), dtype=dtype)
        gates_cache: List[Tuple[np.ndarray, ...]] = []
        hiddens = np.zeros((batch, time_steps, self.hidden_size), dtype=dtype)
        cells = np.zeros((batch, time_steps, self.hidden_size), dtype=dtype)
        for t in range(time_steps):
            stacked = (
                x[:, t, :] @ self.w_ih.data.T
                + hidden @ self.w_hh.data.T
                + self.bias.data
            )
            i_pre, f_pre, g_pre, o_pre = self._split(stacked)
            i_gate = sigmoid(i_pre)
            f_gate = sigmoid(f_pre)
            g_gate = np.tanh(g_pre)
            o_gate = sigmoid(o_pre)
            previous_cell = cell
            cell = f_gate * cell + i_gate * g_gate
            hidden = o_gate * np.tanh(cell)
            gates_cache.append((i_gate, f_gate, g_gate, o_gate, previous_cell))
            hiddens[:, t, :] = hidden
            cells[:, t, :] = cell
        self._cache = (x, hiddens, cells, gates_cache)
        if self.return_sequences:
            return hiddens[:, ::-1, :] if self.reverse else hiddens
        return hiddens[:, -1, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x, hiddens, cells, gates_cache = self._cache
        batch, time_steps, _ = x.shape
        dtype = self.w_ih.dtype
        if self.return_sequences:
            grad_seq = grad_output[:, ::-1, :] if self.reverse else grad_output
        else:
            grad_seq = np.zeros((batch, time_steps, self.hidden_size), dtype=dtype)
            grad_seq[:, -1, :] = grad_output
        grad_x = np.zeros_like(x)
        grad_hidden_next = np.zeros((batch, self.hidden_size), dtype=dtype)
        grad_cell_next = np.zeros((batch, self.hidden_size), dtype=dtype)
        for t in reversed(range(time_steps)):
            i_gate, f_gate, g_gate, o_gate, previous_cell = gates_cache[t]
            cell = cells[:, t, :]
            tanh_cell = np.tanh(cell)
            grad_hidden = grad_seq[:, t, :] + grad_hidden_next
            grad_o = grad_hidden * tanh_cell
            grad_cell = grad_hidden * o_gate * (1.0 - tanh_cell**2) + grad_cell_next
            grad_i = grad_cell * g_gate
            grad_f = grad_cell * previous_cell
            grad_g = grad_cell * i_gate
            # Back through the gate nonlinearities.
            grad_i_pre = grad_i * i_gate * (1.0 - i_gate)
            grad_f_pre = grad_f * f_gate * (1.0 - f_gate)
            grad_g_pre = grad_g * (1.0 - g_gate**2)
            grad_o_pre = grad_o * o_gate * (1.0 - o_gate)
            grad_stacked = np.concatenate(
                [grad_i_pre, grad_f_pre, grad_g_pre, grad_o_pre], axis=1
            )
            previous_hidden = (
                hiddens[:, t - 1, :]
                if t > 0
                else np.zeros((batch, self.hidden_size), dtype=dtype)
            )
            self.w_ih.grad += grad_stacked.T @ x[:, t, :]
            self.w_hh.grad += grad_stacked.T @ previous_hidden
            self.bias.grad += grad_stacked.sum(axis=0)
            grad_x[:, t, :] = grad_stacked @ self.w_ih.data
            grad_hidden_next = grad_stacked @ self.w_hh.data
            grad_cell_next = grad_cell * f_gate
        if self.reverse:
            grad_x = grad_x[:, ::-1, :]
        return grad_x


class BiRNN(Module):
    """Bidirectional wrapper producing concatenated forward/backward states.

    Args:
        cell: ``"rnn"`` or ``"lstm"``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        *,
        cell: str = "rnn",
        rng: RngLike = None,
        dtype=None,
    ):
        super().__init__()
        rng = as_rng(rng)
        cell = cell.lower()
        if cell == "rnn":
            factory = RNN
        elif cell == "lstm":
            factory = LSTM
        else:
            raise ValueError(f"cell must be 'rnn' or 'lstm', got {cell!r}")
        self.forward_cell = factory(
            input_size,
            hidden_size,
            return_sequences=False,
            reverse=False,
            rng=rng,
            dtype=dtype,
        )
        self.backward_cell = factory(
            input_size,
            hidden_size,
            return_sequences=False,
            reverse=True,
            rng=rng,
            dtype=dtype,
        )
        self.hidden_size = hidden_size

    @property
    def output_size(self) -> int:
        """Dimension of the concatenated output."""
        return 2 * self.hidden_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        forward_state = self.forward_cell(x)
        backward_state = self.backward_cell(x)
        return np.concatenate([forward_state, backward_state], axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_forward = grad_output[:, : self.hidden_size]
        grad_backward = grad_output[:, self.hidden_size :]
        grad_x_forward = self.forward_cell.backward(grad_forward)
        grad_x_backward = self.backward_cell.backward(grad_backward)
        return grad_x_forward + grad_x_backward
