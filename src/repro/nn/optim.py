"""Optimizers and learning-rate schedules.

The paper trains every task with momentum SGD (momentum 0.9, weight decay
5e-4).  ``SGD`` follows the standard PyTorch formulation: weight decay is
added to the gradient before the momentum update.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocities: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def zero_grad(self) -> None:
        """Zero every managed parameter gradient."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on parameters."""
        for index, param in enumerate(self.parameters):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocities[index]
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocities[index] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad

    def apply_gradient_vector(self, flat_gradient: np.ndarray) -> None:
        """Apply one update from an externally supplied flat gradient.

        This is the entry point used by the federated-learning server/clients:
        the aggregated gradient vector is scattered back onto the parameters
        and then a normal :meth:`step` is taken.
        """
        flat_gradient = np.asarray(flat_gradient, dtype=np.float64)
        offset = 0
        for param in self.parameters:
            size = param.size
            param.grad[...] = flat_gradient[offset : offset + size].reshape(
                param.data.shape
            )
            offset += size
        if offset != flat_gradient.size:
            raise ValueError(
                f"gradient vector has {flat_gradient.size} entries but the model "
                f"has {offset} parameters"
            )
        self.step()

    def state_dict(self) -> dict:
        """Mutable optimizer state (learning rate + momentum velocities).

        Velocities are copied, so the snapshot is decoupled from further
        :meth:`step` calls — this is the optimizer half of a run
        checkpoint (:mod:`repro.fl.checkpoint`).
        """
        return {
            "lr": float(self.lr),
            "velocities": [
                None if velocity is None else velocity.copy()
                for velocity in self._velocities
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        velocities = state["velocities"]
        if len(velocities) != len(self.parameters):
            raise ValueError(
                f"optimizer state has {len(velocities)} velocities but this "
                f"optimizer manages {len(self.parameters)} parameters"
            )
        restored: List[Optional[np.ndarray]] = []
        for param, velocity in zip(self.parameters, velocities):
            if velocity is None:
                restored.append(None)
                continue
            velocity = np.asarray(velocity)
            if velocity.shape != param.data.shape:
                raise ValueError(
                    f"velocity shape {velocity.shape} does not match "
                    f"parameter shape {param.data.shape}"
                )
            restored.append(velocity.astype(param.data.dtype, copy=True))
        self._velocities = restored
        self.lr = float(state["lr"])


class ConstantLR:
    """Constant learning-rate schedule (no-op)."""

    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer

    def step(self) -> float:
        """Return the (unchanged) learning rate."""
        return self.optimizer.lr


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if gamma <= 0:
            raise ValueError(f"gamma must be > 0, got {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the possibly-decayed learning rate."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class MultiStepLR:
    """Decay the learning rate at each milestone epoch."""

    def __init__(self, optimizer: SGD, milestones: Sequence[int], gamma: float = 0.1):
        self.optimizer = optimizer
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the possibly-decayed learning rate."""
        self._epoch += 1
        if self._epoch in self.milestones:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
