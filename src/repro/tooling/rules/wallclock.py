"""``wallclock-ban``: wall-clock reads stay behind ``repro.perf``.

Timing in this repository is an *instrument*, not an input: the profiler
(:mod:`repro.perf`) owns every clock read so that simulation logic can
never become time-dependent.  A ``time.time()`` in a scheduler, a
``datetime.now()`` in a checkpoint header, or a stray ``perf_counter()``
in a collector makes two identical runs differ — exactly the
nondeterminism the deterministic fault/participation machinery exists to
exclude.  Outside the allowlisted ``repro.perf`` package, code that
needs a duration imports :func:`repro.perf.timers.monotonic`; code that
needs a timestamp takes it as a parameter.

``time.sleep`` stays legal everywhere: waiting is behaviour, not
measurement (retry backoff and stall fault injection depend on it).
"""

from __future__ import annotations

import ast
from typing import List

from repro.tooling.ast_utils import qualified_name
from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile

_BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallclockBanRule(Rule):
    name = "wallclock-ban"
    description = (
        "time.time/perf_counter/datetime.now only inside repro.perf; "
        "everything else takes timings from the profiler"
    )

    def check(self, source: SourceFile, config: LintConfig) -> List[Finding]:
        if config.module_in(source.module, config.wallclock_allowed):
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = qualified_name(node.func, source.import_map)
            if qualified in _BANNED_CALLS:
                findings.append(
                    Finding(
                        source.rel,
                        node.lineno,
                        self.name,
                        f"{qualified}() reads the wall clock outside "
                        "repro.perf; use repro.perf.timers.monotonic via "
                        "the profiler, or take the timestamp as an input",
                    )
                )
        return findings
