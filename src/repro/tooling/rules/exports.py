"""``export-consistency``: the public surface is declared and respected.

Three related checks keep the package boundary honest:

* every package ``__init__`` declares ``__all__`` — the public surface
  is an explicit, reviewable list, not whatever happens to be imported;
* every name in an ``__all__`` resolves to something the ``__init__``
  actually defines or imports — a renamed symbol cannot leave a dangling
  export behind (modules with a PEP 562 ``__getattr__`` are exempt from
  the resolution check: lazy exports are satisfied at runtime);
* ``examples/``, ``benchmarks/``, and ``tests/`` import only public
  names — no ``from repro.x import _private`` and no
  ``repro.x._internal`` modules.  Scripts that reach for an underscore
  name are evidence the name should be public (rename it) or the script
  is coupling itself to an implementation detail that may change
  without notice.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from repro.tooling.ast_utils import iter_statement_names, string_list
from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile


def _find_all(source: SourceFile) -> Optional[ast.Assign]:
    for node in source.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
        ):
            return node
    return None


def _private_parts(module: str, package: str) -> bool:
    """True when a dotted module path under ``package`` has a private part."""
    if module != package and not module.startswith(package + "."):
        return False
    return any(
        part.startswith("_") and part != "__init__"
        for part in module.split(".")
    )


class ExportConsistencyRule(Rule):
    name = "export-consistency"
    description = (
        "package __init__s declare a resolving __all__; examples/"
        "benchmarks/tests never deep-import private names"
    )

    def check(self, source: SourceFile, config: LintConfig) -> List[Finding]:
        if not source.path.name == "__init__.py":
            return []
        declaration = _find_all(source)
        if declaration is None:
            return [
                Finding(
                    source.rel,
                    1,
                    self.name,
                    "package __init__ declares no __all__; the public "
                    "surface must be an explicit list",
                )
            ]
        exported = string_list(declaration.value)
        if exported is None:
            # Computed __all__ (concatenation, comprehension...): presence
            # satisfies the declaration check; resolution is not statically
            # decidable, so stop here.
            return []
        if any(
            isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
            for node in source.tree.body
        ):
            # PEP 562 lazy exports: a module-level __getattr__ can satisfy
            # any name at runtime, so unresolved entries are deliberate.
            return []
        defined = set(iter_statement_names(source.tree.body))
        findings: List[Finding] = []
        for name in exported:
            if name not in defined:
                findings.append(
                    Finding(
                        source.rel,
                        declaration.lineno,
                        self.name,
                        f"__all__ exports {name!r} but the __init__ "
                        "neither defines nor imports it",
                    )
                )
        return findings

    def finalize(
        self, sources: Sequence[SourceFile], config: LintConfig
    ) -> List[Finding]:
        findings: List[Finding] = []
        package = config.package_name
        for source in sources:
            if source.kind != "script":
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ImportFrom) and not node.level:
                    module = node.module or ""
                    if module != package and not module.startswith(
                        package + "."
                    ):
                        continue
                    if _private_parts(module, package):
                        findings.append(
                            Finding(
                                source.rel,
                                node.lineno,
                                self.name,
                                f"imports from private module {module}; "
                                "scripts and tests use the public "
                                "surface only",
                            )
                        )
                        continue
                    for alias in node.names:
                        if alias.name.startswith("_"):
                            findings.append(
                                Finding(
                                    source.rel,
                                    node.lineno,
                                    self.name,
                                    f"deep-imports private name "
                                    f"{alias.name!r} from {module}; make "
                                    "the helper public or test through "
                                    "the public surface",
                                )
                            )
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        if _private_parts(alias.name, package):
                            findings.append(
                                Finding(
                                    source.rel,
                                    node.lineno,
                                    self.name,
                                    f"imports private module "
                                    f"{alias.name}; scripts and tests "
                                    "use the public surface only",
                                )
                            )
        return findings
