"""``rng-hygiene``: randomness must flow through seeded generators.

The repository's bit-reproducibility contract derives every random draw
from one experiment seed via :class:`repro.utils.rng.RngFactory` or an
explicitly passed ``numpy.random.Generator``.  The two ways that
contract silently breaks:

* calling the **module-global legacy RNG** (``np.random.seed``,
  ``np.random.normal``, ...) — hidden process-wide state that any import
  can perturb;
* creating an **unseeded generator** — ``np.random.default_rng()`` with
  no arguments, or passing ``np.random.default_rng`` itself around as a
  zero-argument factory (the ``dataclasses.field(default_factory=...)``
  trap).

Explicit constructions stay legal: ``default_rng(seed)``,
``Generator(PCG64(seed))``, ``SeedSequence(...)`` — and so do
annotations like ``rng: np.random.Generator``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.tooling.ast_utils import call_of, qualified_name
from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile

#: numpy.random attributes that *construct* explicitly-seeded machinery
#: (referencing or calling them is fine; everything else on the module
#: is the legacy global-state API).
_SEEDED_CONSTRUCTORS = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


class RngHygieneRule(Rule):
    name = "rng-hygiene"
    description = (
        "no np.random module-global RNG and no unseeded default_rng(); "
        "randomness flows through RngFactory / explicit Generators"
    )

    def check(self, source: SourceFile, config: LintConfig) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualified = qualified_name(node, source.import_map)
            if not qualified or not qualified.startswith("numpy.random."):
                continue
            tail = qualified[len("numpy.random.") :]
            if "." in tail or tail in _SEEDED_CONSTRUCTORS:
                # Attribute *of* an attribute (e.g. Generator.random in an
                # annotation) or an explicit-seed constructor: fine.
                continue
            call = call_of(node)
            if tail == "default_rng":
                if call is None:
                    findings.append(
                        Finding(
                            source.rel,
                            node.lineno,
                            self.name,
                            "np.random.default_rng referenced as a "
                            "zero-argument factory creates an unseeded "
                            "generator; wrap it with an explicit seed",
                        )
                    )
                elif not call.args and not call.keywords:
                    findings.append(
                        Finding(
                            source.rel,
                            node.lineno,
                            self.name,
                            "unseeded np.random.default_rng(); pass a "
                            "seed, SeedSequence, or RngFactory stream",
                        )
                    )
                continue
            if call is not None or tail == "RandomState":
                findings.append(
                    Finding(
                        source.rel,
                        node.lineno,
                        self.name,
                        f"np.random.{tail} uses the module-global legacy "
                        "RNG; draw from an explicit seeded Generator "
                        "instead",
                    )
                )
        return findings
