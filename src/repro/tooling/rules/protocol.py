"""``protocol-exhaustive``: every ``MSG_*`` is handled on both wire sides.

The transport's message vocabulary is the ``MSG_*`` constants defined in
:mod:`repro.fl.transport.codec`.  A new message type is only *deployed*
when three places know it: the worker's dispatch loop, the caller side
(connection or channel layer), and the ``MESSAGE_NAMES`` table that
makes refusal errors readable.  Forgetting one side compiles fine and
fails only when a live fleet meets the message — the worker answers
"unexpected message type 14" to a caller that speaks it, which is a
protocol bug surfacing as a runtime fleet error.

This rule makes that a lint failure instead: it parses the constants out
of the protocol module and requires each to be referenced in every
configured worker-side module, in at least one caller-side module, and
to appear as a key of ``MESSAGE_NAMES``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile

_MSG_NAME = re.compile(r"^MSG_[A-Z0-9_]+$")


def _message_constants(source: SourceFile) -> List[Tuple[str, int]]:
    """(name, line) of every module-level ``MSG_*`` assignment."""
    constants: List[Tuple[str, int]] = []
    for node in source.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name) and _MSG_NAME.match(target.id):
            constants.append((target.id, node.lineno))
    return constants


def _message_names_keys(source: SourceFile) -> Optional[Set[str]]:
    """Keys of the module-level ``MESSAGE_NAMES`` dict literal, if any."""
    for node in source.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "MESSAGE_NAMES"
            and isinstance(node.value, ast.Dict)
        ):
            keys: Set[str] = set()
            for key in node.value.keys:
                if isinstance(key, ast.Name):
                    keys.add(key.id)
            return keys
    return None


def _referenced_names(source: SourceFile) -> Set[str]:
    """Every identifier a module mentions (names and attribute tails)."""
    names: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


class ProtocolExhaustiveRule(Rule):
    name = "protocol-exhaustive"
    description = (
        "every MSG_* constant is dispatched by the worker AND the caller "
        "side of the transport, and named in MESSAGE_NAMES"
    )

    def finalize(
        self, sources: Sequence[SourceFile], config: LintConfig
    ) -> List[Finding]:
        by_module: Dict[str, SourceFile] = {
            source.module: source
            for source in sources
            if source.module is not None
        }
        protocol = by_module.get(config.protocol_module)
        if protocol is None:
            # Subset run (e.g. ``repro-lint src/repro/aggregators``): the
            # invariant is only checkable with the protocol module loaded.
            return []
        constants = _message_constants(protocol)
        names_keys = _message_names_keys(protocol)
        findings: List[Finding] = []
        sides = (
            ("worker", config.protocol_worker_modules),
            ("caller", config.protocol_caller_modules),
        )
        for label, modules in sides:
            present = [by_module[m] for m in modules if m in by_module]
            if not present:
                continue
            referenced: Set[str] = set()
            for source in present:
                referenced |= _referenced_names(source)
            for constant, line in constants:
                if constant not in referenced:
                    findings.append(
                        Finding(
                            protocol.rel,
                            line,
                            self.name,
                            f"{constant} is never dispatched on the "
                            f"{label} side ({', '.join(modules)}); a new "
                            "message type must be handled by both ends "
                            "before it ships",
                        )
                    )
        if names_keys is not None:
            for constant, line in constants:
                if constant not in names_keys:
                    findings.append(
                        Finding(
                            protocol.rel,
                            line,
                            self.name,
                            f"{constant} is missing from MESSAGE_NAMES; "
                            "protocol errors would report it as a bare "
                            "integer",
                        )
                    )
        return findings
