"""``pickle-boundary``: pickle is importable only on the transport allowlist.

The wire protocol, the checkpoint format, and every codec are
deliberately pickle-free (JSON manifests + raw array bytes), so a
malicious or corrupted peer can never execute code through a payload.
The one documented exception is the trusted-operator data-plane handoff:
the transport ``SETUP`` path ships client populations as pickles between
machines the operator controls (``worker.py`` / ``client.py``) and the
process-pool backend does the same within one host (``collector.py``).

Any *new* ``import pickle`` — in checkpoint, codec, aggregator, or
anywhere else — is an error: it either widens the trust boundary or
quietly reintroduces a pickle dependency into a format that promises not
to have one.  Extend ``LintConfig.pickle_allowlist`` only with a
documented trust argument.
"""

from __future__ import annotations

import ast
from typing import List

from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile

#: Serialization modules with pickle's arbitrary-code-on-load semantics.
_PICKLE_MODULES = {"pickle", "cPickle", "_pickle", "dill", "cloudpickle"}


class PickleBoundaryRule(Rule):
    name = "pickle-boundary"
    description = (
        "pickle importable only from the documented transport SETUP "
        "allowlist; wire/checkpoint/codec code stays pickle-free"
    )

    def check(self, source: SourceFile, config: LintConfig) -> List[Finding]:
        if source.module in config.pickle_allowlist:
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            imported = None
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".", 1)[0]
                    if top in _PICKLE_MODULES:
                        imported = alias.name
                        break
            elif isinstance(node, ast.ImportFrom) and not node.level:
                top = (node.module or "").split(".", 1)[0]
                if top in _PICKLE_MODULES:
                    imported = node.module
            if imported is not None:
                findings.append(
                    Finding(
                        source.rel,
                        node.lineno,
                        self.name,
                        f"imports {imported} outside the transport SETUP "
                        "allowlist; the wire, checkpoint, and codec "
                        "formats are pickle-free by contract",
                    )
                )
        return findings
