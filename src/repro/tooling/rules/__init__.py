"""The project-specific rule set ``repro-lint`` ships.

Each rule checks one invariant the repository's guarantees rest on;
see the individual modules for the rationale and the exact policy.
Rule ids (used in reports, ``--select``, inline suppressions, and the
baseline file):

========================  ====================================================
``rng-hygiene``           randomness flows through seeded generators only
``pickle-boundary``       pickle importable only on the transport allowlist
``dtype-discipline``      hot-path array allocations pin an explicit dtype
``wallclock-ban``         wall-clock reads stay behind ``repro.perf``
``pairwise-discipline``   dense O(n²) batch accessors only in audited modules
``exception-hygiene``     no bare ``except:`` / swallowed broad excepts
``protocol-exhaustive``   every ``MSG_*`` handled on both transport sides
``export-consistency``    ``__all__`` complete + no private deep imports
========================  ====================================================
"""

from __future__ import annotations

from typing import Dict, List

from repro.tooling.engine import Rule
from repro.tooling.rules.dtype import DtypeDisciplineRule
from repro.tooling.rules.exceptions import ExceptionHygieneRule
from repro.tooling.rules.exports import ExportConsistencyRule
from repro.tooling.rules.pairwise import PairwiseDisciplineRule
from repro.tooling.rules.pickle_boundary import PickleBoundaryRule
from repro.tooling.rules.protocol import ProtocolExhaustiveRule
from repro.tooling.rules.rng import RngHygieneRule
from repro.tooling.rules.wallclock import WallclockBanRule

__all__ = [
    "DtypeDisciplineRule",
    "ExceptionHygieneRule",
    "ExportConsistencyRule",
    "PairwiseDisciplineRule",
    "PickleBoundaryRule",
    "ProtocolExhaustiveRule",
    "RngHygieneRule",
    "WallclockBanRule",
    "all_rules",
    "default_rules",
]

_RULE_CLASSES = (
    RngHygieneRule,
    PickleBoundaryRule,
    DtypeDisciplineRule,
    WallclockBanRule,
    PairwiseDisciplineRule,
    ExceptionHygieneRule,
    ProtocolExhaustiveRule,
    ExportConsistencyRule,
)


def default_rules() -> List[Rule]:
    """One instance of every shipped rule, in reporting order."""
    return [rule_class() for rule_class in _RULE_CLASSES]


def all_rules() -> Dict[str, Rule]:
    """Rule id → fresh instance, for ``--select`` and ``--list-rules``."""
    return {rule.name: rule for rule in default_rules()}
