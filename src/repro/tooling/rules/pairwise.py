"""``pairwise-discipline``: dense ``(n, n)`` caches stay behind an audited allowlist.

The large-cohort story (ISSUE 9) rests on one invariant: no defense hot
path materializes an ``O(n²)`` pairwise matrix, because at ``n=10_000``
the float64 distance matrix alone is 800 MB.  The four dense
:class:`~repro.utils.batch.GradientBatch` accessors — ``gram()``,
``sq_distances()``, ``distances()``, ``cosine_similarities()`` — already
refuse at runtime above the ``max_dense_pairwise`` threshold, but a
refusal only fires on the cohort size that triggers it; this rule makes
the regression visible at lint time, on every cohort size.

Calls to those four methods inside the package tree are findings unless
the calling module is on ``LintConfig.pairwise_allowlist`` (the batch's
own memoization internals, plus Bulyan, whose iterative sub-matrix
selection is inherently dense and documented to refuse at scale).
Streaming consumers use the blocked primitives instead
(``sq_distances_block`` / ``k_smallest_neighbor_sums`` /
``median_cosine_similarities`` / ``median_distances`` /
``max_pairwise_sq_distance`` / ``max_sum_sq_distance``), which bound
peak memory at ``O(block_rows · n)``.

The check is name-based (any ``<receiver>.sq_distances()`` attribute
call): static analysis cannot see the receiver's type, and the four
names are unique to the batch API in this repository.  A false positive
on a new, unrelated method of the same name is silenced with an inline
suppression naming the receiver type.
"""

from __future__ import annotations

import ast
from typing import List

from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile

#: The dense GradientBatch accessors that materialize ``(n, n)``.
_DENSE_PAIRWISE_METHODS = {
    "gram",
    "sq_distances",
    "distances",
    "cosine_similarities",
}


class PairwiseDisciplineRule(Rule):
    name = "pairwise-discipline"
    description = (
        "dense GradientBatch gram/sq_distances/distances/"
        "cosine_similarities calls only in audited modules; everything "
        "else streams via the blocked primitives"
    )

    def check(self, source: SourceFile, config: LintConfig) -> List[Finding]:
        if config.module_in(source.module, config.pairwise_allowlist):
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _DENSE_PAIRWISE_METHODS:
                continue
            findings.append(
                Finding(
                    source.rel,
                    node.lineno,
                    self.name,
                    f".{func.attr}() materializes an O(n²) pairwise "
                    "matrix outside the audited allowlist; use the "
                    "blocked GradientBatch primitives "
                    "(sq_distances_block / k_smallest_neighbor_sums / "
                    "median_* / max_*_sq_distance) or extend "
                    "LintConfig.pairwise_allowlist with a documented "
                    "audit",
                )
            )
        return findings
