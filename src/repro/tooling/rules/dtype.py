"""``dtype-discipline``: hot-path array allocations pin an explicit dtype.

``TrainingConfig(dtype="float32")`` promises a float32 round path end to
end: model parameters, client gradients, the round buffer, and every
aggregator intermediate.  NumPy's allocation defaults work against that
promise — ``np.zeros(n)`` is float64, and one float64 intermediate
silently upcasts everything it touches, doubling memory traffic and
breaking bit-equality with the float32 reference.

In the hot-path modules (``LintConfig.dtype_modules``), the four
allocating calls ``np.zeros`` / ``np.empty`` / ``np.full`` /
``np.asarray`` must therefore state their dtype — either an explicit
``dtype=`` (including a deliberate ``np.float64`` where the math *needs*
double precision) or, for intentionally dtype-*preserving*
``np.asarray`` validation shims, an inline suppression naming the
intent.
"""

from __future__ import annotations

import ast
from typing import List

from repro.tooling.ast_utils import qualified_name
from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile

#: Allocating call → number of leading positional args that includes the
#: dtype parameter (np.full's signature is ``full(shape, fill, dtype)``).
_ALLOC_CALLS = {
    "numpy.zeros": 2,
    "numpy.empty": 2,
    "numpy.full": 3,
    "numpy.asarray": 2,
}


class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    description = (
        "np.zeros/empty/full/asarray in hot-path modules must pass an "
        "explicit dtype= (float64 defaults break the float32 round path)"
    )

    def check(self, source: SourceFile, config: LintConfig) -> List[Finding]:
        if not config.module_in(source.module, config.dtype_modules):
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = qualified_name(node.func, source.import_map)
            threshold = _ALLOC_CALLS.get(qualified or "")
            if threshold is None:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            if any(keyword.arg is None for keyword in node.keywords):
                continue  # **kwargs may carry dtype; not statically decidable
            if any(isinstance(arg, ast.Starred) for arg in node.args):
                continue  # *args may carry dtype; not statically decidable
            if len(node.args) >= threshold:
                continue  # dtype passed positionally
            short = (qualified or "").replace("numpy.", "np.")
            findings.append(
                Finding(
                    source.rel,
                    node.lineno,
                    self.name,
                    f"{short}(...) without an explicit dtype= allocates "
                    "float64 by default and silently upcasts the float32 "
                    "round path",
                )
            )
        return findings
