"""``exception-hygiene``: no bare ``except:``, no swallowed broad excepts.

A fault-tolerant runtime lives or dies by *which* exceptions it eats.
The recovery ladder deliberately catches narrow transport types
(``FrameError``, ``ConnectionError``, ``OSError``) and re-raises or
records everything else; a bare ``except:`` (which also catches
``KeyboardInterrupt`` and ``SystemExit``) or an ``except Exception:
pass`` turns a real defect — a shape mismatch, a corrupted checkpoint —
into a silent no-op that the chaos suite can no longer distinguish from
success.

Policy: bare handlers are always an error; ``except Exception`` /
``except BaseException`` are an error when the handler body is only
``pass`` (catching broadly in order to *record and act* is fine —
the worker's outlive-any-connection loop does exactly that).
"""

from __future__ import annotations

import ast
from typing import List

from repro.tooling.engine import Finding, LintConfig, Rule, SourceFile

_BROAD = {"Exception", "BaseException"}


def _caught_names(node: ast.expr) -> List[str]:
    if isinstance(node, ast.Tuple):
        names: List[str] = []
        for element in node.elts:
            names.extend(_caught_names(element))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _swallows(body: List[ast.stmt]) -> bool:
    """True when the handler body does nothing observable."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or bare ``...``
        return False
    return True


class ExceptionHygieneRule(Rule):
    name = "exception-hygiene"
    description = (
        "no bare `except:`; `except Exception:` must handle, not `pass`"
    )

    def check(self, source: SourceFile, config: LintConfig) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    Finding(
                        source.rel,
                        node.lineno,
                        self.name,
                        "bare `except:` catches SystemExit and "
                        "KeyboardInterrupt too; name the exception types",
                    )
                )
                continue
            caught = _caught_names(node.type)
            if any(name in _BROAD for name in caught) and _swallows(
                node.body
            ):
                findings.append(
                    Finding(
                        source.rel,
                        node.lineno,
                        self.name,
                        "broad `except Exception: pass` swallows defects "
                        "silently; narrow the types, or record and act",
                    )
                )
        return findings
