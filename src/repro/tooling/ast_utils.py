"""Shared AST plumbing for the lint rules.

The rules reason about *fully qualified* call targets ("is this call
``numpy.random.default_rng``?") regardless of how the module spelled the
import (``import numpy as np``, ``from numpy import random``, ``from
numpy.random import default_rng as rng``...).  :func:`build_import_map`
records what every imported alias stands for and :func:`qualified_name`
resolves a ``Name``/``Attribute`` chain against that map.  Names that
resolve to nothing in the map are local variables — the resolver returns
``None`` for them rather than guessing.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set, Tuple

#: Matches one inline suppression comment.  The optional ``-- reason``
#: tail is for the human reader; the linter ignores it.
_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+)"
)


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``parent`` attribute (None for the root)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Map each imported local alias to the fully qualified name it binds.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from numpy
    import random`` yields ``{"random": "numpy.random"}``; ``from time
    import perf_counter as pc`` yields ``{"pc": "time.perf_counter"}``.
    Relative imports (``from . import x``) are module-internal and are
    deliberately not mapped.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds only the top-level name ``a``.
                    top = alias.name.split(".", 1)[0]
                    mapping[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def qualified_name(
    node: ast.AST, import_map: Dict[str, str]
) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to its qualified dotted name.

    Returns ``None`` when the chain's base is not an imported alias (a
    local variable, a call result, a subscript...), so rules never
    mistake ``self.time()`` for ``time.time()``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = import_map.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def call_of(node: ast.AST) -> Optional[ast.Call]:
    """The ``Call`` this node is the callee of, if any (needs parents)."""
    parent = getattr(node, "parent", None)
    if isinstance(parent, ast.Call) and parent.func is node:
        return parent
    return None


def parse_suppressions(text: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract inline suppression comments from a module's source.

    Returns ``(per_line, whole_file)``: per-line rule names keyed by
    1-based line number (``# repro-lint: disable=rule1,rule2``) and the
    file-wide set (``# repro-lint: disable-file=rule``).  The special
    rule name ``all`` suppresses every rule.

    A suppression written on a comment-only line applies to the next
    code line (so a justification can precede the code it silences);
    consecutive comment lines chain, and a blank line breaks the chain.
    """
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    pending: Set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        match = _SUPPRESSION.search(line)
        rules: Set[str] = set()
        if match:
            # Everything after ``--`` is the human-readable justification.
            names = match.group(2).split("--", 1)[0]
            rules = {
                rule.strip() for rule in names.split(",") if rule.strip()
            }
            if match.group(1) == "disable-file":
                whole_file |= rules
                rules = set()
        if not stripped:
            pending = set()
            continue
        if stripped.startswith("#"):
            pending |= rules
            continue
        if rules or pending:
            per_line.setdefault(lineno, set()).update(rules | pending)
        pending = set()
    return per_line, whole_file


def iter_statement_names(body: list) -> Iterator[str]:
    """Names bound by a module body's top-level statements.

    Used by the export-consistency rule to check that every ``__all__``
    entry resolves.  Descends into ``if``/``try`` blocks (the usual
    optional-import pattern) but not into function or class bodies.
    """
    for node in body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            yield node.name
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                yield from _target_names(target)
        elif isinstance(node, ast.AnnAssign):
            yield from _target_names(node.target)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.asname or alias.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    yield alias.asname or alias.name
        elif isinstance(node, ast.If):
            yield from iter_statement_names(node.body)
            yield from iter_statement_names(node.orelse)
        elif isinstance(node, ast.Try):
            yield from iter_statement_names(node.body)
            for handler in node.handlers:
                yield from iter_statement_names(handler.body)
            yield from iter_statement_names(node.orelse)
            yield from iter_statement_names(node.finalbody)


def _target_names(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def string_list(node: ast.AST) -> Optional[list]:
    """The literal strings of a list/tuple expression, or None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(
            element.value, str
        ):
            return None
        values.append(element.value)
    return values
