"""The ``repro-lint`` engine: sources, findings, suppressions, baseline.

The engine is deliberately rule-agnostic: it loads the file set a
:class:`LintConfig` describes, parses each file once, applies every
:class:`Rule`, drops findings silenced by inline suppression comments,
subtracts the checked-in baseline, and formats what is left as
``file:line: rule: message`` lines with a meaningful exit code.  The
project-specific knowledge lives entirely in :mod:`repro.tooling.rules`.

Two kinds of source files flow through a run:

* **package** files — the library tree under ``LintConfig.package_root``
  (``src/repro``), each with a resolved dotted module name that rules
  use for scoping (allowlists, hot-path prefixes);
* **script** files — ``examples/``, ``benchmarks/``, ``tests/`` — linted
  only by the rules that police the package boundary (private deep
  imports).

Baseline semantics: an entry matches a finding by ``(path, rule,
message)`` — deliberately *not* by line number, so unrelated edits above
a grandfathered finding do not invalidate the baseline.  Matching is
multiset-aware (two identical findings need two entries), every entry
carries a one-line justification, and entries that no longer match
anything are reported as stale so the baseline cannot quietly rot.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.tooling.ast_utils import (
    attach_parents,
    build_import_map,
    parse_suppressions,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str  #: project-root-relative posix path (stable across hosts).
    line: int  #: 1-based line number.
    rule: str  #: rule id (``repro-lint --list-rules``).
    message: str  #: human-readable explanation, line-number free.

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.message)


class SourceFile:
    """One parsed source file plus the metadata rules need.

    Attributes:
        path: absolute filesystem path.
        rel: path relative to the project root (posix, used in reports).
        module: dotted module name for package files, ``None`` for
            scripts.
        kind: ``"package"`` or ``"script"``.
        tree: the parsed AST, with parent links attached.
        import_map: local alias → fully qualified name.
    """

    def __init__(
        self, path: Path, rel: str, module: Optional[str], kind: str
    ):
        self.path = path
        self.rel = rel
        self.module = module
        self.kind = kind
        self.text = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.text, filename=str(path))
        attach_parents(self.tree)
        self.import_map = build_import_map(self.tree)
        self._line_suppressions, self._file_suppressions = parse_suppressions(
            self.text
        )

    def suppressed(self, rule: str, line: int) -> bool:
        """True when an inline comment silences ``rule`` at ``line``."""
        if self._file_suppressions & {rule, "all"}:
            return True
        rules = self._line_suppressions.get(line, ())
        return rule in rules or "all" in rules

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SourceFile({self.rel!r}, module={self.module!r})"


class Rule:
    """Base class for lint rules.

    A rule implements :meth:`check` (called once per package file) or
    :meth:`finalize` (called once with every loaded source, for
    project-wide invariants like protocol exhaustiveness), or both.
    """

    #: Rule id used in reports, ``--select``, suppressions, baselines.
    name: str = ""
    #: One-line summary shown by ``repro-lint --list-rules``.
    description: str = ""

    def check(
        self, source: SourceFile, config: "LintConfig"
    ) -> List[Finding]:
        return []

    def finalize(
        self, sources: Sequence[SourceFile], config: "LintConfig"
    ) -> List[Finding]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass
class LintConfig:
    """What to lint and the per-rule policy knobs.

    The defaults encode this repository's invariants; the tests override
    them to point the same rules at fixture trees.  All paths are
    relative to ``root``.
    """

    #: Project root every relative path below is resolved against.
    root: Path = field(default_factory=Path.cwd)
    #: Directory holding the package to lint.
    package_root: str = "src/repro"
    #: Dotted name of the package at ``package_root``.
    package_name: str = "repro"
    #: Directories holding scripts policed for private deep imports.
    script_roots: Tuple[str, ...] = ("examples", "benchmarks", "tests")
    #: Relative path prefixes excluded everywhere (fixture trees with
    #: deliberate violations live under tests/fixtures).
    exclude: Tuple[str, ...] = ("tests/fixtures",)
    #: Modules allowed to import pickle (the documented, trusted-operator
    #: transport SETUP path; see the pickle-boundary rule).
    pickle_allowlist: Tuple[str, ...] = (
        "repro.fl.transport.worker",
        "repro.fl.transport.client",
        "repro.fl.collector",
    )
    #: Hot-path module prefixes where array allocations must pin a dtype.
    dtype_modules: Tuple[str, ...] = (
        "repro.aggregators",
        "repro.core",
        "repro.fl",
    )
    #: Module prefixes allowed to read the wall clock.
    wallclock_allowed: Tuple[str, ...] = ("repro.perf",)
    #: Modules audited to call the dense O(n²) GradientBatch accessors
    #: (``gram``/``sq_distances``/``distances``/``cosine_similarities``):
    #: the batch itself (internal memoization) and Bulyan, whose iterative
    #: sub-matrix selection is inherently dense and documented to refuse
    #: above the streaming threshold.  Everything else must use the
    #: blocked primitives (see the pairwise-discipline rule).
    pairwise_allowlist: Tuple[str, ...] = (
        "repro.utils.batch",
        "repro.aggregators.bulyan",
    )
    #: Module defining the transport's ``MSG_*`` constants.
    protocol_module: str = "repro.fl.transport.codec"
    #: Modules that must dispatch every message type (worker side).
    protocol_worker_modules: Tuple[str, ...] = ("repro.fl.transport.worker",)
    #: Modules that must dispatch every message type (caller side).
    protocol_caller_modules: Tuple[str, ...] = (
        "repro.fl.transport.client",
        "repro.fl.transport.protocol",
    )
    #: Checked-in baseline of grandfathered findings.
    baseline_path: str = "lint-baseline.json"

    def with_root(self, root: Path) -> "LintConfig":
        return replace(self, root=Path(root))

    def module_in(self, module: Optional[str], prefixes: Iterable[str]) -> bool:
        """True when ``module`` equals or lives under any of ``prefixes``."""
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in prefixes
        )


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, with its one-line justification."""

    path: str
    rule: str
    message: str
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.rule, self.message)


class Baseline:
    """The checked-in set of grandfathered findings."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries: List[BaselineEntry] = list(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValueError(
                f"baseline file {path} is not a repro-lint baseline "
                "(expected a JSON object with an 'entries' list)"
            )
        entries = [
            BaselineEntry(
                path=str(entry["path"]),
                rule=str(entry["rule"]),
                message=str(entry["message"]),
                justification=str(entry.get("justification", "")),
            )
            for entry in payload["entries"]
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "entries": [
                {
                    "path": entry.path,
                    "rule": entry.rule,
                    "message": entry.message,
                    "justification": entry.justification
                    or "TODO: justify this grandfathered finding",
                }
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into (active, baselined) + stale entries.

        Matching is by ``(path, rule, message)`` and multiset-aware: each
        baseline entry absorbs at most one finding, and entries left
        unmatched are returned as stale.
        """
        budget = Counter(entry.key for entry in self.entries)
        active: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if budget.get(finding.baseline_key, 0) > 0:
                budget[finding.baseline_key] -= 1
                baselined.append(finding)
            else:
                active.append(finding)
        stale = [entry for entry in self.entries if budget.get(entry.key, 0) > 0]
        # Each stale key is reported once per unmatched occurrence.
        reported: List[BaselineEntry] = []
        seen: Counter = Counter()
        for entry in stale:
            if seen[entry.key] < budget[entry.key]:
                seen[entry.key] += 1
                reported.append(entry)
        return active, baselined, reported


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding]  #: active findings (fail the run).
    baselined: List[Finding]  #: findings absorbed by the baseline.
    stale_baseline: List[BaselineEntry]  #: entries matching nothing.
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def all_findings(self) -> List[Finding]:
        """Active + baselined, in report order (for --update-baseline)."""
        return sorted(
            self.findings + self.baselined,
            key=lambda f: (f.path, f.line, f.rule),
        )


def _iter_python_files(base: Path) -> Iterable[Path]:
    if base.is_file():
        if base.suffix == ".py":
            yield base
        return
    yield from sorted(base.rglob("*.py"))


def collect_sources(
    config: LintConfig, paths: Optional[Sequence[str]] = None
) -> List[SourceFile]:
    """Load and parse the file set a config (or explicit paths) selects."""
    root = Path(config.root).resolve()
    package_base = root / config.package_root
    selected: Optional[List[Path]] = None
    if paths:
        selected = [(root / p).resolve() for p in paths]
    sources: List[SourceFile] = []
    seen: Set[Path] = set()

    def excluded(rel: str) -> bool:
        return any(
            rel == prefix or rel.startswith(prefix.rstrip("/") + "/")
            for prefix in config.exclude
        )

    def wanted(path: Path) -> bool:
        if selected is None:
            return True
        return any(
            path == choice or choice in path.parents for choice in selected
        )

    package_parent = package_base.parent
    for path in _iter_python_files(package_base):
        rel = path.relative_to(root).as_posix()
        if excluded(rel) or not wanted(path) or path in seen:
            continue
        module_parts = path.relative_to(package_parent).with_suffix("").parts
        if module_parts[-1] == "__init__":
            module_parts = module_parts[:-1]
        module = ".".join(module_parts)
        sources.append(SourceFile(path, rel, module, "package"))
        seen.add(path)
    for script_root in config.script_roots:
        base = root / script_root
        if not base.exists():
            continue
        for path in _iter_python_files(base):
            rel = path.relative_to(root).as_posix()
            if excluded(rel) or not wanted(path) or path in seen:
                continue
            sources.append(SourceFile(path, rel, None, "script"))
            seen.add(path)
    return sources


def run_rules(
    sources: Sequence[SourceFile],
    rules: Sequence[Rule],
    config: LintConfig,
) -> List[Finding]:
    """Apply every rule and drop inline-suppressed findings."""
    by_rel = {source.rel: source for source in sources}
    findings: List[Finding] = []
    for rule in rules:
        produced: List[Finding] = []
        for source in sources:
            if source.kind == "package":
                produced.extend(rule.check(source, config))
        produced.extend(rule.finalize(sources, config))
        for finding in produced:
            source = by_rel.get(finding.path)
            if source is not None and source.suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def run_lint(
    config: LintConfig,
    *,
    rules: Optional[Sequence[Rule]] = None,
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """One full lint run: collect, check, suppress, subtract the baseline."""
    if rules is None:
        # Function-scope import: rules import the engine's dataclasses.
        from repro.tooling.rules import default_rules

        rules = default_rules()
    sources = collect_sources(config, paths)
    findings = run_rules(sources, rules, config)
    if baseline is None:
        baseline = Baseline.load(Path(config.root) / config.baseline_path)
    active, baselined, stale = baseline.split(findings)
    return LintResult(
        findings=active,
        baselined=baselined,
        stale_baseline=stale,
        files_checked=len(sources),
    )
