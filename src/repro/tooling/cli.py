"""The ``repro-lint`` command line.

Usage (from the repository root)::

    repro-lint                      # lint the whole tree
    repro-lint src/repro/fl         # lint a subtree
    repro-lint --select rng-hygiene,dtype-discipline
    repro-lint --list-rules         # rule ids + one-line descriptions
    repro-lint --update-baseline    # grandfather the current findings

Exit codes: 0 — clean (possibly via baseline/suppressions); 1 — active
findings; 2 — usage error (unknown rule id, bad baseline file, path
outside the project root).  Stale baseline entries are reported on
stderr but do not fail the run — deleting them is housekeeping, not an
emergency.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.tooling.engine import Baseline, LintConfig, LintResult, run_lint
from repro.tooling.rules import all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for this repository: RNG "
            "hygiene, pickle boundaries, dtype discipline, wall-clock "
            "bans, exception hygiene, protocol exhaustiveness, and "
            "export consistency."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint, relative to --root "
            "(default: the configured package and script roots)"
        ),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root the configured paths resolve against",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: <root>/lint-baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to grandfather every current finding "
            "(full-tree runs only)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids with their descriptions and exit",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings absorbed by the baseline",
    )
    return parser


def _selected_rules(specs: Optional[List[str]]) -> Optional[list]:
    if specs is None:
        return None
    registry = all_rules()
    selected = []
    for spec in specs:
        for name in spec.split(","):
            name = name.strip()
            if not name:
                continue
            if name not in registry:
                known = ", ".join(sorted(registry))
                raise SystemExit(
                    f"repro-lint: unknown rule {name!r} (known: {known})"
                )
            selected.append(registry[name])
    if not selected:
        raise SystemExit("repro-lint: --select named no rules")
    return selected


def _print_report(result: LintResult, show_baselined: bool) -> None:
    for finding in result.findings:
        print(finding.format())
    if show_baselined:
        for finding in result.baselined:
            print(f"{finding.format()} [baselined]")
    for entry in result.stale_baseline:
        print(
            f"repro-lint: stale baseline entry: {entry.path}: "
            f"{entry.rule}: {entry.message}",
            file=sys.stderr,
        )
    noun = "file" if result.files_checked == 1 else "files"
    summary = (
        f"repro-lint: {result.files_checked} {noun} checked, "
        f"{len(result.findings)} finding(s)"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr" + (
            "y" if len(result.stale_baseline) == 1 else "ies"
        )
    print(summary, file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"{name:24s} {rule.description}")
        return 0

    root = Path(options.root).resolve()
    if not root.is_dir():
        print(f"repro-lint: root {root} is not a directory", file=sys.stderr)
        return 2
    config = LintConfig().with_root(root)
    if options.baseline is not None:
        config.baseline_path = options.baseline

    try:
        rules = _selected_rules(options.select)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    if options.update_baseline and options.paths:
        print(
            "repro-lint: --update-baseline requires a full-tree run "
            "(a subset run would drop entries for unchecked files)",
            file=sys.stderr,
        )
        return 2

    baseline_path = root / config.baseline_path
    try:
        baseline = Baseline.load(baseline_path)
    except (ValueError, KeyError, TypeError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    try:
        result = run_lint(
            config,
            rules=rules,
            paths=options.paths or None,
            baseline=baseline,
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro-lint: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    if options.update_baseline:
        from repro.tooling.engine import BaselineEntry

        existing = {entry.key: entry for entry in baseline.entries}
        entries = []
        for finding in result.all_findings():
            prior = existing.get(finding.baseline_key)
            entries.append(
                BaselineEntry(
                    path=finding.path,
                    rule=finding.rule,
                    message=finding.message,
                    justification=prior.justification if prior else "",
                )
            )
        Baseline(entries).save(baseline_path)
        print(
            f"repro-lint: baseline updated with {len(entries)} entr"
            + ("y" if len(entries) == 1 else "ies")
            + f" at {baseline_path}",
            file=sys.stderr,
        )
        return 0

    _print_report(result, options.show_baselined)
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
