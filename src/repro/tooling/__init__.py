"""Project-specific static analysis (``repro-lint``).

Every guarantee this repo makes — bit-identical results across all four
collect backends, a pickle-free wire, a dtype-preserving float32 round
path, deterministic fault injection — is an *invariant of the source*,
not just a property the test suite happens to witness.  This subsystem
checks those invariants statically, at CI time, on every line of the
package: a small AST-based lint framework (:mod:`repro.tooling.engine`)
plus the project rules ruff cannot express
(:mod:`repro.tooling.rules`).

Run it from the console script installed with the package::

    repro-lint                  # lint src/repro + examples/benchmarks/tests
    repro-lint --list-rules     # what is checked, and why

or programmatically through :func:`run_lint` with a :class:`LintConfig`
(the tests point the same engine at fixture trees with known
violations).

Findings are reported as ``file:line: rule: message``.  A finding can be
silenced two ways, both test-covered:

* inline, on the offending line::

      risky_call()  # repro-lint: disable=rule-name -- why it is fine

* or grandfathered in the checked-in baseline file
  (``lint-baseline.json``), each entry carrying a one-line
  justification.  ``repro-lint --update-baseline`` rewrites it; stale
  entries (fixed findings still listed) are reported so the baseline
  only ever shrinks deliberately.
"""

from __future__ import annotations

from repro.tooling.engine import (
    Baseline,
    BaselineEntry,
    Finding,
    LintConfig,
    LintResult,
    Rule,
    SourceFile,
    run_lint,
)
from repro.tooling.rules import all_rules, default_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "SourceFile",
    "all_rules",
    "default_rules",
    "run_lint",
]
