"""Data-poisoning transforms applied on the client side.

The label-flipping attack from the paper is a *data* poisoning attack: the
Byzantine client trains honestly but on corrupted labels, so the malicious
gradient is produced by the normal training code path over a flipped dataset.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset


def flip_labels(dataset: ArrayDataset) -> ArrayDataset:
    """Return a copy of ``dataset`` with every label ``l`` replaced by ``C-1-l``.

    This is the exact flipping rule from Section V-B of the paper, where ``C``
    is the number of classes.
    """
    num_classes = dataset.spec.num_classes
    flipped = (num_classes - 1) - dataset.labels
    return dataset.with_labels(flipped)


def flip_labels_pairwise(
    dataset: ArrayDataset, source: int, target: int
) -> ArrayDataset:
    """Targeted variant: relabel every ``source`` sample as ``target``.

    Not used by the paper's untargeted evaluation, but provided for backdoor
    style experiments on top of the same infrastructure.
    """
    num_classes = dataset.spec.num_classes
    for value, name in ((source, "source"), (target, "target")):
        if not 0 <= value < num_classes:
            raise ValueError(f"{name} class {value} out of range [0, {num_classes})")
    labels = dataset.labels.copy()
    labels[labels == source] = target
    return dataset.with_labels(labels)


def poison_fraction(original: ArrayDataset, poisoned: ArrayDataset) -> float:
    """Fraction of labels that differ between two views of the same inputs."""
    if len(original) != len(poisoned):
        raise ValueError("datasets must have the same length")
    if len(original) == 0:
        return 0.0
    return float(np.mean(original.labels != poisoned.labels))
