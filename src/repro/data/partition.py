"""Client partitioning schemes: IID, the paper's sort-and-partition, Dirichlet.

All partitioners return a list of index arrays (one per client) into the
training set; clients then construct their local dataset views from these.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_fraction


def iid_partition(
    dataset: ArrayDataset, num_clients: int, *, rng: RngLike = None
) -> List[np.ndarray]:
    """Shuffle the dataset and deal it out evenly to ``num_clients`` clients."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if len(dataset) < num_clients:
        raise ValueError(
            f"cannot partition {len(dataset)} samples among {num_clients} clients"
        )
    rng = as_rng(rng)
    permutation = rng.permutation(len(dataset))
    return [np.sort(chunk) for chunk in np.array_split(permutation, num_clients)]


def sort_and_partition(
    dataset: ArrayDataset,
    num_clients: int,
    *,
    iid_fraction: float = 0.5,
    shards_per_client: int = 2,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """The paper's synthetic non-IID scheme (Section VI-B).

    An ``iid_fraction`` (the paper's ``s``) of the data is spread uniformly
    across clients; the remaining ``1 - s`` fraction is sorted by label,
    split into ``num_clients * shards_per_client`` shards (each shard is
    label-homogeneous), and every client receives ``shards_per_client``
    random shards.  Smaller ``s`` therefore means more skew.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    check_fraction(iid_fraction, "iid_fraction")
    if shards_per_client < 1:
        raise ValueError(f"shards_per_client must be >= 1, got {shards_per_client}")
    rng = as_rng(rng)
    total = len(dataset)
    permutation = rng.permutation(total)
    num_iid = int(round(iid_fraction * total))
    iid_indices = permutation[:num_iid]
    skewed_indices = permutation[num_iid:]

    # Deal the IID portion evenly.
    assignments: List[List[int]] = [[] for _ in range(num_clients)]
    for client, chunk in enumerate(np.array_split(iid_indices, num_clients)):
        assignments[client].extend(chunk.tolist())

    # Sort the remaining portion by label and deal shards.
    if len(skewed_indices) > 0:
        sort_order = np.argsort(dataset.labels[skewed_indices], kind="stable")
        sorted_skewed = skewed_indices[sort_order]
        num_shards = num_clients * shards_per_client
        shards = np.array_split(sorted_skewed, num_shards)
        shard_order = rng.permutation(num_shards)
        for position, shard_index in enumerate(shard_order):
            client = position % num_clients
            assignments[client].extend(shards[shard_index].tolist())

    return [np.sort(np.asarray(indices, dtype=int)) for indices in assignments]


def dirichlet_partition(
    dataset: ArrayDataset,
    num_clients: int,
    *,
    alpha: float = 0.5,
    min_samples: int = 1,
    rng: RngLike = None,
    max_retries: int = 50,
) -> List[np.ndarray]:
    """Label-Dirichlet partitioning, the other standard non-IID benchmark.

    For each class, sample client proportions from ``Dirichlet(alpha)`` and
    split that class's samples accordingly.  Retries until every client has
    at least ``min_samples`` samples.
    """
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    rng = as_rng(rng)
    num_classes = dataset.spec.num_classes
    for _ in range(max_retries):
        assignments: List[List[int]] = [[] for _ in range(num_clients)]
        for cls in range(num_classes):
            class_indices = np.flatnonzero(dataset.labels == cls)
            if len(class_indices) == 0:
                continue
            class_indices = rng.permutation(class_indices)
            proportions = rng.dirichlet(alpha * np.ones(num_clients))
            boundaries = (np.cumsum(proportions)[:-1] * len(class_indices)).astype(int)
            for client, chunk in enumerate(np.split(class_indices, boundaries)):
                assignments[client].extend(chunk.tolist())
        sizes = [len(indices) for indices in assignments]
        if min(sizes) >= min_samples:
            return [np.sort(np.asarray(indices, dtype=int)) for indices in assignments]
    raise RuntimeError(
        f"failed to produce a Dirichlet partition with at least {min_samples} "
        f"samples per client after {max_retries} attempts"
    )


def partition_dataset(
    dataset: ArrayDataset,
    num_clients: int,
    *,
    scheme: str = "iid",
    iid_fraction: float = 1.0,
    shards_per_client: int = 2,
    dirichlet_alpha: float = 0.5,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Dispatch to a partitioning scheme by name (used by the experiment runner)."""
    if scheme == "iid":
        return iid_partition(dataset, num_clients, rng=rng)
    if scheme == "sort_and_partition":
        return sort_and_partition(
            dataset,
            num_clients,
            iid_fraction=iid_fraction,
            shards_per_client=shards_per_client,
            rng=rng,
        )
    if scheme == "dirichlet":
        return dirichlet_partition(dataset, num_clients, alpha=dirichlet_alpha, rng=rng)
    raise ValueError(f"unknown partition scheme {scheme!r}")


def partition_skew(dataset: ArrayDataset, partitions: List[np.ndarray]) -> float:
    """Quantify label skew of a partition: mean total-variation distance.

    Returns the average (over clients) total-variation distance between a
    client's label distribution and the global label distribution.  0 means
    perfectly IID, values near 1 mean each client sees essentially one class.
    """
    global_counts = dataset.class_counts().astype(float)
    global_dist = global_counts / global_counts.sum()
    distances = []
    for indices in partitions:
        if len(indices) == 0:
            continue
        local_counts = np.bincount(
            dataset.labels[indices], minlength=dataset.spec.num_classes
        ).astype(float)
        local_dist = local_counts / local_counts.sum()
        distances.append(0.5 * np.abs(local_dist - global_dist).sum())
    return float(np.mean(distances)) if distances else 0.0
