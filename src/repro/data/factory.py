"""Dataset factory: build a registered synthetic dataset by name."""

from __future__ import annotations

from typing import Any

from repro.data.datasets import TrainTestSplit
from repro.data.synthetic_images import (
    make_cifar_like,
    make_fashion_like,
    make_mnist_like,
)
from repro.data.synthetic_text import make_agnews_like
from repro.utils.registry import Registry
from repro.utils.rng import RngLike

DATASET_REGISTRY = Registry("datasets")

DATASET_REGISTRY.register("mnist_like", make_mnist_like)
DATASET_REGISTRY.register("fashion_like", make_fashion_like)
DATASET_REGISTRY.register("cifar_like", make_cifar_like)
DATASET_REGISTRY.register("agnews_like", make_agnews_like)
DATASET_REGISTRY.register_alias("mnist", "mnist_like")
DATASET_REGISTRY.register_alias("fashion_mnist", "fashion_like")
DATASET_REGISTRY.register_alias("cifar10", "cifar_like")
DATASET_REGISTRY.register_alias("ag_news", "agnews_like")


def build_dataset(
    name: str,
    *,
    num_train: int = 2000,
    num_test: int = 500,
    rng: RngLike = None,
    **overrides: Any,
) -> TrainTestSplit:
    """Instantiate the dataset registered under ``name``.

    The four registered names correspond to the paper's four tasks:
    ``mnist_like``, ``fashion_like``, ``cifar_like``, and ``agnews_like``.
    """
    return DATASET_REGISTRY.create(
        name, num_train=num_train, num_test=num_test, rng=rng, **overrides
    )
