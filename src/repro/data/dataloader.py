"""Mini-batch sampling from a client's local dataset."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import RngLike, as_rng


class BatchLoader:
    """Random mini-batch sampler over an :class:`ArrayDataset`.

    ``sample`` draws one random batch (the access pattern used by the
    federated clients, which run a single local iteration per round by
    default); ``epoch`` iterates over the full dataset once in shuffled
    order.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, *, rng: RngLike = None):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if len(dataset) == 0:
            raise ValueError("cannot build a loader over an empty dataset")
        self.dataset = dataset
        self.batch_size = min(batch_size, len(dataset))
        self._rng = as_rng(rng)

    def sample(self) -> Tuple[np.ndarray, np.ndarray]:
        """Draw one random mini-batch (without replacement within the batch)."""
        indices = self._rng.choice(
            len(self.dataset), size=self.batch_size, replace=False
        )
        return self.dataset[indices]

    @property
    def rng_state(self) -> dict:
        """Snapshot of the sampling stream (a plain, picklable dict).

        The loader's generator is its only mutable state, so restoring this
        snapshot into an identically-constructed loader resumes the exact
        batch sequence — which is how a restarted distributed-collect
        worker continues its clients' RNG streams bit-exactly.
        """
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    def epoch(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over the dataset once in shuffled order."""
        order = self._rng.permutation(len(self.dataset))
        for start in range(0, len(order), self.batch_size):
            batch = order[start : start + self.batch_size]
            yield self.dataset[batch]

    def __len__(self) -> int:
        """Number of batches per epoch."""
        return int(np.ceil(len(self.dataset) / self.batch_size))
