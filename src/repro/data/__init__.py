"""Synthetic datasets, client partitioning, and batching.

The paper's experiments run on MNIST, Fashion-MNIST, CIFAR-10, and AG-News;
none of those can be downloaded in this offline environment, so this package
provides synthetic generators that preserve the properties the defense
pipeline depends on (learnable class structure, configurable difficulty,
image vs. text modality), plus the paper's IID and sort-and-partition
non-IID client partitioning schemes.
"""

from repro.data.datasets import ArrayDataset, DataSpec, Dataset
from repro.data.dataloader import BatchLoader
from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    partition_dataset,
    sort_and_partition,
)
from repro.data.poisoning import flip_labels
from repro.data.synthetic_images import (
    make_cifar_like,
    make_fashion_like,
    make_mnist_like,
    make_synthetic_images,
)
from repro.data.synthetic_text import make_agnews_like, make_synthetic_text
from repro.data.factory import DATASET_REGISTRY, build_dataset

__all__ = [
    "ArrayDataset",
    "DataSpec",
    "Dataset",
    "BatchLoader",
    "iid_partition",
    "sort_and_partition",
    "dirichlet_partition",
    "partition_dataset",
    "flip_labels",
    "make_synthetic_images",
    "make_mnist_like",
    "make_fashion_like",
    "make_cifar_like",
    "make_synthetic_text",
    "make_agnews_like",
    "DATASET_REGISTRY",
    "build_dataset",
]
