"""Synthetic text classification dataset (AG-News stand-in).

Each class is a topic with its own unigram distribution over a shared
vocabulary: a small set of "topic words" is strongly over-represented in each
class, the rest of the vocabulary is shared background.  Documents are
fixed-length token sequences sampled from the class distribution, which gives
a recurrent model over embeddings the same kind of sparse, topic-driven
gradient structure as a real news-topic classifier.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset, DataSpec, TrainTestSplit
from repro.utils.rng import RngLike, as_rng


def _class_token_distributions(
    rng: np.random.Generator,
    num_classes: int,
    vocab_size: int,
    topic_words: int,
    topic_strength: float,
) -> np.ndarray:
    """One token distribution per class: shared background + boosted topic words."""
    if topic_words * num_classes > vocab_size:
        raise ValueError(
            f"vocab_size={vocab_size} is too small for {num_classes} classes with "
            f"{topic_words} topic words each"
        )
    background = rng.uniform(0.5, 1.5, size=vocab_size)
    distributions = np.tile(background, (num_classes, 1))
    # Assign disjoint topic-word blocks so classes are identifiable.
    for cls in range(num_classes):
        start = cls * topic_words
        distributions[cls, start : start + topic_words] *= topic_strength
    distributions /= distributions.sum(axis=1, keepdims=True)
    return distributions


def make_synthetic_text(
    *,
    num_train: int = 2000,
    num_test: int = 500,
    num_classes: int = 4,
    vocab_size: int = 100,
    seq_len: int = 12,
    topic_words: int = 8,
    topic_strength: float = 12.0,
    rng: RngLike = None,
) -> TrainTestSplit:
    """Generate a synthetic topic-classification train/test split."""
    rng = as_rng(rng)
    spec = DataSpec(
        kind="text",
        num_classes=num_classes,
        vocab_size=vocab_size,
        seq_len=seq_len,
    )
    distributions = _class_token_distributions(
        rng, num_classes, vocab_size, topic_words, topic_strength
    )

    def build(count: int) -> ArrayDataset:
        labels = rng.integers(0, num_classes, size=count)
        tokens = np.empty((count, seq_len), dtype=np.int64)
        for cls in range(num_classes):
            members = np.flatnonzero(labels == cls)
            if len(members) == 0:
                continue
            tokens[members] = rng.choice(
                vocab_size, size=(len(members), seq_len), p=distributions[cls]
            )
        return ArrayDataset(tokens, labels, spec)

    return TrainTestSplit(train=build(num_train), test=build(num_test), spec=spec)


def make_agnews_like(
    *, num_train: int = 2000, num_test: int = 500, rng: RngLike = None, **overrides
) -> TrainTestSplit:
    """AG-News stand-in: 4 topics over a shared vocabulary."""
    params = dict(
        num_classes=4,
        vocab_size=100,
        seq_len=12,
        topic_words=8,
        topic_strength=12.0,
    )
    params.update(overrides)
    return make_synthetic_text(
        num_train=num_train, num_test=num_test, rng=rng, **params
    )
