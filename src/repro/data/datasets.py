"""Dataset containers and the specification handed to the model factory."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DataSpec:
    """Static description of a dataset, consumed by the model factory.

    Attributes:
        kind: ``"image"`` (float arrays of shape ``(n, c, h, w)``) or
            ``"text"`` (integer token arrays of shape ``(n, seq_len)``).
        num_classes: number of target classes.
        channels, height, width: image geometry (image datasets only).
        vocab_size, seq_len: token vocabulary size and sequence length
            (text datasets only).
    """

    kind: str
    num_classes: int
    channels: int = 0
    height: int = 0
    width: int = 0
    vocab_size: int = 0
    seq_len: int = 0

    @property
    def input_dim(self) -> int:
        """Flattened input dimension (images) or sequence length (text)."""
        if self.kind == "image":
            return self.channels * self.height * self.width
        return self.seq_len

    def __post_init__(self) -> None:
        if self.kind not in {"image", "text"}:
            raise ValueError(f"kind must be 'image' or 'text', got {self.kind!r}")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.kind == "image" and min(self.channels, self.height, self.width) < 1:
            raise ValueError("image datasets require channels, height, width >= 1")
        if self.kind == "text" and min(self.vocab_size, self.seq_len) < 1:
            raise ValueError("text datasets require vocab_size and seq_len >= 1")


class Dataset:
    """Abstract container of (inputs, labels)."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset backed by numpy arrays.

    Indexing with an integer returns a single (input, label) pair; indexing
    with an array/slice returns batched arrays.
    """

    def __init__(self, inputs: np.ndarray, labels: np.ndarray, spec: DataSpec):
        inputs = np.asarray(inputs)
        labels = np.asarray(labels, dtype=int)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs and labels must have the same length, got "
                f"{len(inputs)} and {len(labels)}"
            )
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if labels.size and (labels.min() < 0 or labels.max() >= spec.num_classes):
            raise ValueError(
                f"labels must be in [0, {spec.num_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        self.inputs = inputs
        self.labels = labels
        self.spec = spec

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index):
        return self.inputs[index], self.labels[index]

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        """View of the dataset restricted to ``indices`` (copies the data)."""
        indices = np.asarray(indices, dtype=int)
        return ArrayDataset(self.inputs[indices], self.labels[indices], self.spec)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.spec.num_classes)

    def iter_classes(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield (class, indices of that class) pairs."""
        for cls in range(self.spec.num_classes):
            yield cls, np.flatnonzero(self.labels == cls)

    def with_labels(self, labels: np.ndarray) -> "ArrayDataset":
        """Copy of the dataset with replaced labels (used by label flipping)."""
        return ArrayDataset(self.inputs, labels, self.spec)


@dataclass
class TrainTestSplit:
    """A training set, a test set, and their shared specification."""

    train: ArrayDataset
    test: ArrayDataset
    spec: DataSpec

    def __iter__(self):
        return iter((self.train, self.test))
