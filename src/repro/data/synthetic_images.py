"""Synthetic image classification datasets.

Each class is defined by a structured prototype image (a smooth random field
plus a class-specific geometric pattern); samples are noisy, randomly shifted
copies of their class prototype.  The generator exposes two difficulty knobs:

* ``noise_std`` — per-pixel Gaussian noise (higher = harder).
* ``intra_class_variability`` — how far samples wander from the prototype
  (captures the difference between an MNIST-like task and a CIFAR-like one).

The defense pipeline only ever sees client gradients, so the essential
requirements on the data are: benign clients must produce informative,
low-variance gradients; the task must be learnable within tens of federated
rounds; and poisoning the aggregate must visibly destroy accuracy.  These
generators satisfy all three at laptop scale.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.datasets import ArrayDataset, DataSpec, TrainTestSplit
from repro.utils.rng import RngLike, as_rng


def _class_prototypes(
    rng: np.random.Generator,
    num_classes: int,
    channels: int,
    height: int,
    width: int,
) -> np.ndarray:
    """Build one structured prototype image per class.

    The prototype combines a smooth low-frequency random field (so nearby
    pixels are correlated, like natural images) with a class-indexed
    geometric stripe pattern (so classes are linearly separable enough for a
    small model to learn quickly).
    """
    prototypes = np.zeros((num_classes, channels, height, width))
    ys, xs = np.meshgrid(np.arange(height), np.arange(width), indexing="ij")
    for cls in range(num_classes):
        for channel in range(channels):
            # Smooth random field: sum of a few random low-frequency sinusoids.
            field = np.zeros((height, width))
            for _ in range(3):
                fy, fx = rng.uniform(0.5, 2.0, size=2)
                phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
                field += np.sin(2 * np.pi * fy * ys / height + phase_y) * np.cos(
                    2 * np.pi * fx * xs / width + phase_x
                )
            # Class-specific stripe orientation/frequency.
            angle = np.pi * cls / num_classes
            frequency = 1.0 + (cls % 3)
            orientation = np.cos(angle) * xs / width + np.sin(angle) * ys / height
            stripes = np.sin(2 * np.pi * frequency * orientation)
            prototypes[cls, channel] = 0.5 * field + stripes
    # Normalize each prototype to zero mean / unit scale.
    flat = prototypes.reshape(num_classes, -1)
    flat -= flat.mean(axis=1, keepdims=True)
    flat /= flat.std(axis=1, keepdims=True) + 1e-8
    return flat.reshape(prototypes.shape)


def _sample_images(
    rng: np.random.Generator,
    prototypes: np.ndarray,
    labels: np.ndarray,
    noise_std: float,
    intra_class_variability: float,
) -> np.ndarray:
    """Draw noisy, jittered samples around the class prototypes."""
    num_classes, channels, height, width = prototypes.shape
    samples = prototypes[labels].copy()
    if intra_class_variability > 0:
        # Random per-sample amplitude scaling and small spatial shifts.
        scales = 1.0 + intra_class_variability * rng.normal(size=(len(labels), 1, 1, 1))
        samples *= scales
        shifts = rng.integers(-1, 2, size=(len(labels), 2))
        for i, (dy, dx) in enumerate(shifts):
            if dy or dx:
                samples[i] = np.roll(samples[i], shift=(dy, dx), axis=(1, 2))
    samples += noise_std * rng.normal(size=samples.shape)
    return samples


def make_synthetic_images(
    *,
    num_train: int = 2000,
    num_test: int = 500,
    num_classes: int = 10,
    channels: int = 1,
    image_size: Tuple[int, int] = (14, 14),
    noise_std: float = 0.6,
    intra_class_variability: float = 0.1,
    rng: RngLike = None,
) -> TrainTestSplit:
    """Generate a synthetic image classification train/test split.

    Labels are drawn uniformly, so both splits are class-balanced in
    expectation.
    """
    rng = as_rng(rng)
    height, width = image_size
    spec = DataSpec(
        kind="image",
        num_classes=num_classes,
        channels=channels,
        height=height,
        width=width,
    )
    prototypes = _class_prototypes(rng, num_classes, channels, height, width)
    # Standardize inputs so the per-pixel scale is ~1 regardless of the noise
    # level (the synthetic analogue of the usual image-normalization step);
    # this keeps the initial loss and stable learning rates comparable across
    # difficulty settings.
    input_scale = float(np.sqrt(1.0 + noise_std**2))

    def build(count: int) -> ArrayDataset:
        labels = rng.integers(0, num_classes, size=count)
        inputs = _sample_images(
            rng, prototypes, labels, noise_std, intra_class_variability
        )
        return ArrayDataset(inputs / input_scale, labels, spec)

    return TrainTestSplit(train=build(num_train), test=build(num_test), spec=spec)


def make_mnist_like(
    *, num_train: int = 2000, num_test: int = 500, rng: RngLike = None, **overrides
) -> TrainTestSplit:
    """MNIST stand-in: 10-class grayscale images, easy (low noise)."""
    params = dict(
        num_classes=10,
        channels=1,
        image_size=(14, 14),
        noise_std=1.8,
        intra_class_variability=0.3,
    )
    params.update(overrides)
    return make_synthetic_images(
        num_train=num_train, num_test=num_test, rng=rng, **params
    )


def make_fashion_like(
    *, num_train: int = 2000, num_test: int = 500, rng: RngLike = None, **overrides
) -> TrainTestSplit:
    """Fashion-MNIST stand-in: same geometry as MNIST-like but harder."""
    params = dict(
        num_classes=10,
        channels=1,
        image_size=(14, 14),
        noise_std=2.4,
        intra_class_variability=0.4,
    )
    params.update(overrides)
    return make_synthetic_images(
        num_train=num_train, num_test=num_test, rng=rng, **params
    )


def make_cifar_like(
    *, num_train: int = 2000, num_test: int = 500, rng: RngLike = None, **overrides
) -> TrainTestSplit:
    """CIFAR-10 stand-in: 3-channel color images with high intra-class variance."""
    params = dict(
        num_classes=10,
        channels=3,
        image_size=(16, 16),
        noise_std=1.6,
        intra_class_variability=0.35,
    )
    params.update(overrides)
    return make_synthetic_images(
        num_train=num_train, num_test=num_test, rng=rng, **params
    )
