"""Attack interface and the per-round context handed to attacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_gradient_matrix


@dataclass
class AttackContext:
    """Everything an (omniscient) attacker can see in one round.

    Under partial participation the context is *cohort-scoped*: the attacker
    only controls the Byzantine clients that were sampled and reported this
    round, and every index refers to a row of the round's gradient matrix,
    not to a global client id.

    Attributes:
        round_index: current federated round (0-based).
        num_clients: number of gradient rows this round — the full
            population ``n`` under full participation, the active cohort
            size under sampling.
        byzantine_indices: row indices (within this round's gradient
            matrix) of the clients controlled by the attacker.
        rng: the attacker's random generator.
        global_gradient: previous round's aggregated gradient, if any.
        population_size: total number of clients in the federation (equals
            ``num_clients`` under full participation; ``None`` when the
            context was built outside the simulation).
        cohort_client_ids: global client id of each gradient row, so
            attacks that track clients across rounds can map row positions
            back to the population (``None`` outside the simulation).
        extra: free-form channel for attack-specific knowledge.
    """

    round_index: int
    num_clients: int
    byzantine_indices: np.ndarray
    rng: np.random.Generator
    global_gradient: Optional[np.ndarray] = None
    population_size: Optional[int] = None
    cohort_client_ids: Optional[np.ndarray] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_byzantine(self) -> int:
        return len(self.byzantine_indices)

    @classmethod
    def make(
        cls,
        *,
        round_index: int = 0,
        num_clients: int,
        byzantine_indices,
        rng: RngLike = None,
        global_gradient: Optional[np.ndarray] = None,
        population_size: Optional[int] = None,
        cohort_client_ids=None,
    ) -> "AttackContext":
        """Convenience constructor used by tests and the simulator."""
        return cls(
            round_index=round_index,
            num_clients=num_clients,
            byzantine_indices=np.asarray(byzantine_indices, dtype=int),
            rng=as_rng(rng),
            global_gradient=global_gradient,
            population_size=population_size,
            cohort_client_ids=(
                None
                if cohort_client_ids is None
                else np.asarray(cohort_client_ids, dtype=int)
            ),
        )


class Attack:
    """Base class for model-poisoning attacks.

    Subclasses override :meth:`craft`, which receives the *honest* gradients
    of every client (the omniscient threat model of the paper: the attacker
    knows all benign gradients and the Byzantine clients can collude) and
    returns the malicious gradients the Byzantine clients will submit.
    """

    name: str = "attack"
    #: True when the attack corrupts the local training data (label flipping)
    #: rather than the submitted gradient.
    poisons_data: bool = False

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        """Return malicious gradients of shape ``(num_byzantine, dim)``."""
        raise NotImplementedError

    def apply(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        """Return the full gradient matrix after replacing Byzantine rows.

        This is the entry point used by the federated server simulation; it
        validates shapes and leaves benign rows untouched.  The input dtype
        is preserved (float32 stays float32) so the simulation's
        reduced-precision round path survives the attack stage.
        """
        gradients = check_gradient_matrix(honest_gradients, preserve_dtype=True).copy()
        byzantine = np.asarray(context.byzantine_indices, dtype=int)
        if len(byzantine) == 0:
            return gradients
        if byzantine.min() < 0 or byzantine.max() >= len(gradients):
            raise ValueError(
                f"byzantine indices {byzantine} out of range for "
                f"{len(gradients)} clients"
            )
        malicious = np.atleast_2d(self.craft(gradients, context))
        if malicious.shape != (len(byzantine), gradients.shape[1]):
            raise ValueError(
                f"{self.name} produced malicious gradients of shape "
                f"{malicious.shape}, expected {(len(byzantine), gradients.shape[1])}"
            )
        gradients[byzantine] = malicious
        return gradients

    def benign_rows(
        self, honest_gradients: np.ndarray, context: AttackContext
    ) -> np.ndarray:
        """Honest gradients of the clients *not* controlled by the attacker.

        Under partial participation a sampled cohort can consist entirely
        of Byzantine clients, making this **empty** — callers that estimate
        statistics from it (mean/std) must handle that case themselves
        (sums over an empty matrix are legitimately zero, so e.g. ByzMean's
        Eq. 8 needs no special-casing).
        """
        mask = np.ones(len(honest_gradients), dtype=bool)
        mask[np.asarray(context.byzantine_indices, dtype=int)] = False
        return honest_gradients[mask]

    def state_dict(self) -> Dict[str, Any]:
        """Mutable cross-round state for checkpointing.

        Most attacks are pure functions of their per-round context and
        return ``{}``; stateful attacks (``TimeVaryingAttack``) override
        this together with :meth:`load_state_dict` so a resumed run
        replays their decisions bit-exactly.
        """
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but was handed "
                f"checkpointed attack state {sorted(state)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"
