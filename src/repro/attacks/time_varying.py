"""Time-varying attack strategy (Fig. 5 of the paper).

The attacker changes its attack randomly at every round/epoch, drawing from a
pool that includes the no-attack behaviour.  Defenses that rely on stable
attack signatures degrade badly under this strategy; SignGuard's per-round
filtering is unaffected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.attacks.byzmean import ByzMeanAttack
from repro.attacks.lie import LittleIsEnoughAttack
from repro.attacks.minmax_minsum import MinMaxAttack, MinSumAttack
from repro.attacks.simple import NoAttack, RandomAttack, SignFlipAttack
from repro.utils.rng import RngLike, as_rng


def default_attack_pool() -> List[Attack]:
    """The rotation used by the paper's Fig. 5 experiment (incl. no attack)."""
    return [
        NoAttack(),
        RandomAttack(),
        SignFlipAttack(),
        LittleIsEnoughAttack(z=0.3),
        ByzMeanAttack(),
        MinMaxAttack(),
        MinSumAttack(),
    ]


class TimeVaryingAttack(Attack):
    """Randomly switch the underlying attack every ``switch_every`` rounds."""

    name = "time_varying"

    def __init__(
        self,
        pool: Optional[Sequence[Attack]] = None,
        *,
        switch_every: int = 1,
        rng: RngLike = None,
    ):
        if switch_every < 1:
            raise ValueError(f"switch_every must be >= 1, got {switch_every}")
        self.pool: List[Attack] = (
            list(pool) if pool is not None else default_attack_pool()
        )
        if not self.pool:
            raise ValueError("attack pool must be non-empty")
        self.switch_every = switch_every
        self._rng = as_rng(rng)
        self._current: Attack = self.pool[0]
        self._current_round: int = -1

    @property
    def poisons_data(self) -> bool:  # type: ignore[override]
        # Data poisoning requires a decision before training starts, which is
        # incompatible with per-round switching, so pools never flip labels.
        return False

    def current_attack(self, round_index: int) -> Attack:
        """The attack in effect at ``round_index`` (switching if due)."""
        period = round_index // self.switch_every
        if period != self._current_round:
            self._current = self.pool[int(self._rng.integers(len(self.pool)))]
            self._current_round = period
        return self._current

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        attack = self.current_attack(context.round_index)
        return attack.craft(honest_gradients, context)

    def state_dict(self) -> dict:
        """Pool-selection RNG state plus the current pick (checkpointing)."""
        return {
            "rng_state": self._rng.bit_generator.state,
            "current_index": self.pool.index(self._current),
            "current_round": self._current_round,
        }

    def load_state_dict(self, state: dict) -> None:
        if not state:
            return  # a fresh checkpoint captured before any round
        self._rng.bit_generator.state = state["rng_state"]
        self._current = self.pool[int(state["current_index"])]
        self._current_round = int(state["current_round"])
