"""The ByzMean hybrid attack proposed in Section III of the SignGuard paper.

The Byzantine clients split into two groups: ``m1`` clients submit an
arbitrary target gradient ``g_m1`` (by default the LIE-crafted gradient),
and the remaining ``m2 = m - m1`` clients submit

    g_m2 = ((n - m1) * g_m1 - sum_{benign} g_i) / m2          (Eq. 8)

so that the *mean* of all submitted gradients equals ``g_m1`` exactly.  Any
defense that trusts the sample mean (or a mildly trimmed version of it) is
therefore steered to the attacker's chosen vector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.attacks.lie import LittleIsEnoughAttack


class ByzMeanAttack(Attack):
    """Hybrid attack that forces the gradient mean to an arbitrary vector.

    Args:
        inner: the attack used to produce the target gradient ``g_m1``.
            Defaults to the LIE attack (the paper's strongest configuration);
            any other :class:`Attack` can be plugged in, e.g.
            :class:`RandomAttack` for a noise target.
        m1_fraction: fraction of Byzantine clients in the first group; the
            paper uses ``m1 = floor(0.5 m)``.
    """

    name = "byzmean"

    def __init__(self, inner: Optional[Attack] = None, *, m1_fraction: float = 0.5):
        if not 0.0 <= m1_fraction <= 1.0:
            raise ValueError(f"m1_fraction must be in [0, 1], got {m1_fraction}")
        self.inner = inner if inner is not None else LittleIsEnoughAttack(z=0.3)
        self.m1_fraction = m1_fraction

    def _target_gradient(
        self, honest_gradients: np.ndarray, context: AttackContext
    ) -> np.ndarray:
        """The arbitrary gradient ``g_m1`` the attacker wants the mean to become."""
        if isinstance(self.inner, LittleIsEnoughAttack):
            return self.inner.malicious_gradient(honest_gradients, context)
        crafted = np.atleast_2d(self.inner.craft(honest_gradients, context))
        return crafted[0]

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        num_byzantine = context.num_byzantine
        num_clients = context.num_clients
        m1 = int(np.floor(self.m1_fraction * num_byzantine))
        m2 = num_byzantine - m1
        target = self._target_gradient(honest_gradients, context)
        benign = self.benign_rows(honest_gradients, context)

        if m2 == 0:
            # Degenerate split: every Byzantine client sends the target.
            return np.tile(target, (num_byzantine, 1))

        benign_sum = benign.sum(axis=0)
        # Eq. (8): choose g_m2 so that the overall mean equals the target.
        compensating = ((num_clients - m1) * target - benign_sum) / m2
        malicious = np.empty((num_byzantine, honest_gradients.shape[1]))
        malicious[:m1] = target
        malicious[m1:] = compensating
        return malicious
