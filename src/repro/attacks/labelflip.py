"""Label-flipping data-poisoning attack.

The Byzantine clients train honestly but on datasets whose labels have been
flipped with the rule ``l -> C - 1 - l`` (see
:func:`repro.data.poisoning.flip_labels`).  At the gradient level this attack
is the identity: the poisoned gradients are exactly the honest training
procedure applied to corrupted data, which is what makes the attack
stealthy against norm- and distance-based defenses.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext


class LabelFlipAttack(Attack):
    """Marker attack: gradient transform is the identity, data is poisoned."""

    name = "label_flip"
    poisons_data = True

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        # The "honest" gradients of Byzantine clients were already computed on
        # flipped labels by the client (see repro.fl.client.ByzantineClient),
        # so they are forwarded unchanged.
        byzantine = np.asarray(context.byzantine_indices, dtype=int)
        return honest_gradients[byzantine].copy()
