"""Model- and data-poisoning attacks evaluated in the paper.

Every attack implements :class:`~repro.attacks.base.Attack`: given the full
matrix of honestly computed gradients (the paper's omniscient threat model)
and the set of Byzantine client indices, it returns the malicious gradients
those clients submit instead.  The label-flipping attack is the exception —
it poisons the clients' *data*, so its gradient transform is the identity and
the federated clients apply :func:`repro.data.poisoning.flip_labels` locally.
"""

from repro.attacks.base import Attack, AttackContext
from repro.attacks.simple import (
    NoAttack,
    NoiseAttack,
    RandomAttack,
    ReverseScalingAttack,
    SignFlipAttack,
)
from repro.attacks.labelflip import LabelFlipAttack
from repro.attacks.lie import LittleIsEnoughAttack, lie_z_max
from repro.attacks.byzmean import ByzMeanAttack
from repro.attacks.minmax_minsum import MinMaxAttack, MinSumAttack
from repro.attacks.time_varying import TimeVaryingAttack
from repro.attacks.factory import ATTACK_REGISTRY, build_attack

__all__ = [
    "Attack",
    "AttackContext",
    "NoAttack",
    "RandomAttack",
    "NoiseAttack",
    "SignFlipAttack",
    "ReverseScalingAttack",
    "LabelFlipAttack",
    "LittleIsEnoughAttack",
    "lie_z_max",
    "ByzMeanAttack",
    "MinMaxAttack",
    "MinSumAttack",
    "TimeVaryingAttack",
    "ATTACK_REGISTRY",
    "build_attack",
]
