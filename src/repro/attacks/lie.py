"""The Little-Is-Enough (LIE) attack (Baruch et al., 2019).

Byzantine clients estimate the coordinate-wise mean ``mu_j`` and standard
deviation ``sigma_j`` of the honest gradients and submit

    (g_m)_j = mu_j - z * sigma_j

for a small positive attack factor ``z`` (Eq. 1 of the SignGuard paper).
The maximal stealthy ``z`` depends only on the number of clients and the
Byzantine fraction through the standard normal CDF (Eq. 2); the paper's
default experiments fix ``z = 0.3``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import norm

from repro.attacks.base import Attack, AttackContext


def lie_z_max(num_clients: int, num_byzantine: int) -> float:
    """Maximal attack factor from Eq. (2) of the paper.

    ``z_max = max_z { phi(z) < (n - floor(n/2 + 1)) / (n - m) }`` where
    ``phi`` is the standard normal CDF.  In words: the malicious value must
    still fall within the coordinate range covered by the benign majority.
    """
    if num_clients < 2:
        raise ValueError(f"num_clients must be >= 2, got {num_clients}")
    if not 0 <= num_byzantine < num_clients:
        raise ValueError(
            f"num_byzantine must be in [0, num_clients), got {num_byzantine}"
        )
    supporters = num_clients - int(np.floor(num_clients / 2 + 1))
    denominator = num_clients - num_byzantine
    quantile = supporters / denominator
    # Guard against degenerate setups where the quantile is not in (0, 1).
    quantile = float(np.clip(quantile, 1e-6, 1 - 1e-6))
    return float(norm.ppf(quantile))


class LittleIsEnoughAttack(Attack):
    """LIE attack: shift every coordinate by ``z`` benign standard deviations.

    Args:
        z: the attack factor.  ``None`` means "use the maximal stealthy value"
           computed by :func:`lie_z_max` each round; the paper's default
           experiments use the fixed value 0.3.
        use_benign_statistics: when True (default), the coordinate statistics
           are estimated on the benign gradients only (the attacker knows
           which clients it controls); when False they are estimated on all
           honest gradients, matching a weaker-knowledge attacker.
    """

    name = "lie"

    def __init__(self, z: Optional[float] = 0.3, *, use_benign_statistics: bool = True):
        if z is not None and z < 0:
            raise ValueError(f"z must be non-negative, got {z}")
        self.z = z
        self.use_benign_statistics = use_benign_statistics

    def attack_factor(self, context: AttackContext) -> float:
        """The ``z`` used this round."""
        if self.z is not None:
            return self.z
        if context.num_clients < 2 or context.num_byzantine >= context.num_clients:
            # Degenerate sampled cohorts (a single reporting client, or all
            # of them Byzantine) leave the z_max formula undefined — there
            # is no benign majority to hide among, so submit the plain mean
            # (z = 0) instead of crashing the run.
            return 0.0
        return lie_z_max(context.num_clients, context.num_byzantine)

    def malicious_gradient(
        self, honest_gradients: np.ndarray, context: AttackContext
    ) -> np.ndarray:
        """The single crafted vector that every Byzantine client submits."""
        if self.use_benign_statistics:
            reference = self.benign_rows(honest_gradients, context)
            if len(reference) == 0:
                # All-Byzantine cohort (possible under partial
                # participation): the colluders' own honest gradients are
                # the only statistics left to disguise the shift with.
                reference = honest_gradients
        else:
            reference = honest_gradients
        mu = reference.mean(axis=0)
        sigma = reference.std(axis=0)
        return mu - self.attack_factor(context) * sigma

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        crafted = self.malicious_gradient(honest_gradients, context)
        return np.tile(crafted, (context.num_byzantine, 1))
