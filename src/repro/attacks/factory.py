"""Attack factory: build registered attacks by name."""

from __future__ import annotations

from typing import Any, Dict

from repro.attacks.base import Attack
from repro.attacks.byzmean import ByzMeanAttack
from repro.attacks.labelflip import LabelFlipAttack
from repro.attacks.lie import LittleIsEnoughAttack
from repro.attacks.minmax_minsum import MinMaxAttack, MinSumAttack
from repro.attacks.simple import (
    NoAttack,
    NoiseAttack,
    RandomAttack,
    ReverseScalingAttack,
    SignFlipAttack,
)
from repro.attacks.time_varying import TimeVaryingAttack
from repro.utils.registry import Registry

ATTACK_REGISTRY = Registry("attacks")

ATTACK_REGISTRY.register("no_attack", NoAttack)
ATTACK_REGISTRY.register("random", RandomAttack)
ATTACK_REGISTRY.register("noise", NoiseAttack)
ATTACK_REGISTRY.register("sign_flip", SignFlipAttack)
ATTACK_REGISTRY.register("reverse_scaling", ReverseScalingAttack)
ATTACK_REGISTRY.register("label_flip", LabelFlipAttack)
ATTACK_REGISTRY.register("lie", LittleIsEnoughAttack)
ATTACK_REGISTRY.register("byzmean", ByzMeanAttack)
ATTACK_REGISTRY.register("min_max", MinMaxAttack)
ATTACK_REGISTRY.register("min_sum", MinSumAttack)
ATTACK_REGISTRY.register("time_varying", TimeVaryingAttack)

ATTACK_REGISTRY.register_alias("none", "no_attack")
ATTACK_REGISTRY.register_alias("little_is_enough", "lie")
ATTACK_REGISTRY.register_alias("alie", "lie")
ATTACK_REGISTRY.register_alias("signflip", "sign_flip")
ATTACK_REGISTRY.register_alias("labelflip", "label_flip")
ATTACK_REGISTRY.register_alias("minmax", "min_max")
ATTACK_REGISTRY.register_alias("minsum", "min_sum")


def build_attack(name: str, params: Dict[str, Any] = None) -> Attack:
    """Instantiate the attack registered under ``name`` with ``params``."""
    params = dict(params or {})
    return ATTACK_REGISTRY.create(name, **params)
