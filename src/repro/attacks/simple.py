"""Simple model-poisoning attacks.

No-attack, random, noise, sign-flip, and reverse-scaling transformations.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext


class NoAttack(Attack):
    """Byzantine clients behave honestly (the paper's benchmark column)."""

    name = "no_attack"

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        byzantine = np.asarray(context.byzantine_indices, dtype=int)
        return honest_gradients[byzantine].copy()


class RandomAttack(Attack):
    """Byzantine clients send pure Gaussian noise ``N(mu, sigma^2 I)``.

    The paper uses ``mu = 0`` and ``sigma = 0.5``.
    """

    name = "random"

    def __init__(self, mean: float = 0.0, std: float = 0.5):
        if std < 0:
            raise ValueError(f"std must be >= 0, got {std}")
        self.mean = mean
        self.std = std

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        dim = honest_gradients.shape[1]
        return context.rng.normal(
            self.mean, self.std, size=(context.num_byzantine, dim)
        )


class NoiseAttack(Attack):
    """Byzantine clients add Gaussian noise to their own honest gradients.

    ``g_m = g_b + N(mu, sigma^2 I)`` with the same noise parameters as
    :class:`RandomAttack`.
    """

    name = "noise"

    def __init__(self, mean: float = 0.0, std: float = 0.5):
        if std < 0:
            raise ValueError(f"std must be >= 0, got {std}")
        self.mean = mean
        self.std = std

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        byzantine = np.asarray(context.byzantine_indices, dtype=int)
        own = honest_gradients[byzantine]
        noise = context.rng.normal(self.mean, self.std, size=own.shape)
        return own + noise


class SignFlipAttack(Attack):
    """Byzantine clients send their reversed gradients ``g_m = -g_b`` (no scaling)."""

    name = "sign_flip"

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        byzantine = np.asarray(context.byzantine_indices, dtype=int)
        return -honest_gradients[byzantine]


class ReverseScalingAttack(Attack):
    """Reverse attack with scaling (Table III's "Reverse" row).

    The Byzantine clients send ``-r * g_b`` where the scaling coefficient
    ``r`` is chosen adversarially: the paper uses the norm-filter's upper
    bound ``R`` when thresholding/clipping is present, and ``r = 100`` when
    it is not.
    """

    name = "reverse_scaling"

    def __init__(self, scale: float = 100.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        byzantine = np.asarray(context.byzantine_indices, dtype=int)
        return -self.scale * honest_gradients[byzantine]
