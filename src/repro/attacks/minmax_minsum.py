"""Min-Max and Min-Sum optimization attacks (Shejwalkar & Houmansadr, NDSS 2021).

Both attacks craft a single malicious gradient

    g_m = f_avg(g_benign) + gamma * delta_p                     (Eq. 13)

where ``delta_p`` is a perturbation direction (the paper's default is the
negative coordinate-wise standard deviation) and ``gamma`` is maximized
subject to a stealth constraint:

* Min-Max (Eq. 14): the malicious gradient's maximal distance to any benign
  gradient stays within the maximal benign-to-benign distance.
* Min-Sum (Eq. 15): the malicious gradient's *sum of squared* distances to
  the benign gradients stays within the maximal such sum for any benign
  gradient.

``gamma`` is found by the standard halving/doubling search used in the
original attack implementation.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.utils.batch import MAX_DENSE_PAIRWISE, GradientBatch


def max_pairwise_sq_distance(gradients: np.ndarray) -> float:
    """Maximum squared distance between any two rows.

    At or below :data:`~repro.utils.batch.MAX_DENSE_PAIRWISE` rows this is
    the historical dense quadratic form, kept verbatim for bit-compatible
    stealth bounds; larger benign populations stream row-block tiles
    through :class:`~repro.utils.batch.GradientBatch` instead of
    materializing ``(n, n)``.
    """
    gradients = np.asarray(gradients)
    if len(gradients) > MAX_DENSE_PAIRWISE:
        return GradientBatch(gradients, validate=False).max_pairwise_sq_distance()
    sq_norms = np.sum(gradients**2, axis=1)
    squared = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (gradients @ gradients.T)
    np.maximum(squared, 0.0, out=squared)
    return float(squared.max())


def max_sum_sq_distance(gradients: np.ndarray) -> float:
    """Maximum over rows of the sum of squared distances to all other rows.

    Same dense/streamed split as :func:`max_pairwise_sq_distance`.  (The
    streamed tiles zero the self-distance exactly, while the dense form
    leaves the clamped ~0 diagonal in its row sums — a few-ulp difference
    that only exists above the threshold.)
    """
    gradients = np.asarray(gradients)
    if len(gradients) > MAX_DENSE_PAIRWISE:
        return GradientBatch(gradients, validate=False).max_sum_sq_distance()
    sq_norms = np.sum(gradients**2, axis=1)
    squared = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (gradients @ gradients.T)
    np.maximum(squared, 0.0, out=squared)
    return float(squared.sum(axis=1).max())


class _OptimizedPerturbationAttack(Attack):
    """Shared gamma-search machinery for Min-Max and Min-Sum."""

    #: perturbation choices: negative std (default), negative unit mean, negative sign
    perturbation: str = "std"

    def __init__(
        self,
        *,
        perturbation: str = "std",
        gamma_init: float = 10.0,
        tolerance: float = 1e-3,
        max_iterations: int = 50,
    ):
        if perturbation not in {"std", "unit", "sign"}:
            raise ValueError(
                f"perturbation must be 'std', 'unit', or 'sign', got {perturbation!r}"
            )
        if gamma_init <= 0:
            raise ValueError(f"gamma_init must be positive, got {gamma_init}")
        self.perturbation = perturbation
        self.gamma_init = gamma_init
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    def _perturbation_vector(self, benign: np.ndarray) -> np.ndarray:
        if self.perturbation == "std":
            vector = -benign.std(axis=0)
        elif self.perturbation == "unit":
            mean = benign.mean(axis=0)
            norm = np.linalg.norm(mean)
            vector = -mean / norm if norm > 0 else -mean
        else:  # sign
            vector = -np.sign(benign.mean(axis=0))
        if np.linalg.norm(vector) == 0:
            # Degenerate case (identical benign gradients): fall back to a
            # uniform negative direction so the attack is still well-defined.
            vector = -np.ones(benign.shape[1]) / np.sqrt(benign.shape[1])
        return vector

    def _constraint_satisfied(self, candidate: np.ndarray, benign: np.ndarray) -> bool:
        raise NotImplementedError

    def _optimize_gamma(self, benign: np.ndarray) -> float:
        """Largest gamma satisfying the stealth constraint (halving search)."""
        mean = benign.mean(axis=0)
        perturbation = self._perturbation_vector(benign)

        def satisfied(gamma: float) -> bool:
            return self._constraint_satisfied(mean + gamma * perturbation, benign)

        gamma = self.gamma_init
        step = self.gamma_init / 2.0
        best = 0.0
        for _ in range(self.max_iterations):
            if satisfied(gamma):
                best = gamma
                gamma = gamma + step
            else:
                gamma = gamma - step
            step /= 2.0
            if step < self.tolerance:
                break
            gamma = max(gamma, 0.0)
        return best

    def malicious_gradient(
        self, honest_gradients: np.ndarray, context: AttackContext
    ) -> np.ndarray:
        """The single crafted gradient shared by all Byzantine clients."""
        benign = self.benign_rows(honest_gradients, context)
        if len(benign) < 2:
            # Not enough benign gradients to estimate spread; send the mean.
            return benign.mean(axis=0) if len(benign) else np.zeros(
                honest_gradients.shape[1]
            )
        gamma = self._optimize_gamma(benign)
        return benign.mean(axis=0) + gamma * self._perturbation_vector(benign)

    def craft(self, honest_gradients: np.ndarray, context: AttackContext) -> np.ndarray:
        crafted = self.malicious_gradient(honest_gradients, context)
        return np.tile(crafted, (context.num_byzantine, 1))


class MinMaxAttack(_OptimizedPerturbationAttack):
    """Min-Max attack: stay within the benign clique's diameter (Eq. 14)."""

    name = "min_max"

    def _constraint_satisfied(self, candidate: np.ndarray, benign: np.ndarray) -> bool:
        max_benign_sq = max_pairwise_sq_distance(benign)
        distances_sq = np.sum((benign - candidate) ** 2, axis=1)
        return float(distances_sq.max()) <= max_benign_sq


class MinSumAttack(_OptimizedPerturbationAttack):
    """Min-Sum attack: bound the sum of squared distances to benign rows (Eq. 15)."""

    name = "min_sum"

    def _constraint_satisfied(self, candidate: np.ndarray, benign: np.ndarray) -> bool:
        max_benign_sum = max_sum_sq_distance(benign)
        distances_sq = np.sum((benign - candidate) ** 2, axis=1)
        return float(distances_sq.sum()) <= max_benign_sum
