"""Gradient-correctness tests for the recurrent layers."""

import numpy as np
import pytest

from repro.nn.recurrent import LSTM, RNN, BiRNN


def check_recurrent_input_gradient(layer, x, gradcheck, atol=1e-5):
    out = layer.forward(x)
    upstream = np.ones_like(out)
    layer.forward(x)
    analytic = layer.backward(upstream)

    def scalar(x_perturbed):
        return float(np.sum(layer.forward(x_perturbed)))

    numeric = gradcheck(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol)


def check_recurrent_parameter_gradients(layer, x, gradcheck, atol=1e-4):
    layer.zero_grad()
    out = layer.forward(x)
    layer.backward(np.ones_like(out))
    for param in layer.parameters():
        analytic = param.grad.copy()

        def scalar(values, param=param):
            original = param.data.copy()
            param.data[...] = values
            result = float(np.sum(layer.forward(x)))
            param.data[...] = original
            return result

        numeric = gradcheck(scalar, param.data.copy())
        np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestRNN:
    def test_output_shapes(self, rng):
        layer = RNN(3, 5, rng=rng)
        x = rng.normal(size=(2, 4, 3))
        assert layer(x).shape == (2, 5)
        seq_layer = RNN(3, 5, return_sequences=True, rng=rng)
        assert seq_layer(x).shape == (2, 4, 5)

    def test_input_gradient(self, rng, gradcheck):
        layer = RNN(2, 3, rng=rng)
        check_recurrent_input_gradient(layer, rng.normal(size=(2, 3, 2)), gradcheck)

    def test_parameter_gradients(self, rng, gradcheck):
        layer = RNN(2, 3, rng=rng)
        check_recurrent_parameter_gradients(
            layer, rng.normal(size=(2, 3, 2)), gradcheck
        )

    def test_reverse_processes_sequence_backwards(self, rng):
        forward = RNN(2, 3, rng=1)
        backward = RNN(2, 3, reverse=True, rng=1)
        x = rng.normal(size=(1, 4, 2))
        np.testing.assert_allclose(backward(x), forward(x[:, ::-1, :]))

    def test_rejects_wrong_feature_size(self, rng):
        with pytest.raises(ValueError):
            RNN(3, 4, rng=rng)(rng.normal(size=(1, 5, 2)))


class TestLSTM:
    def test_output_shape(self, rng):
        layer = LSTM(3, 4, rng=rng)
        assert layer(rng.normal(size=(2, 5, 3))).shape == (2, 4)

    def test_input_gradient(self, rng, gradcheck):
        layer = LSTM(2, 3, rng=rng)
        check_recurrent_input_gradient(layer, rng.normal(size=(2, 3, 2)), gradcheck)

    def test_parameter_gradients(self, rng, gradcheck):
        layer = LSTM(2, 2, rng=rng)
        check_recurrent_parameter_gradients(
            layer, rng.normal(size=(2, 3, 2)), gradcheck, atol=2e-4
        )

    def test_return_sequences_shape(self, rng):
        layer = LSTM(3, 4, return_sequences=True, rng=rng)
        assert layer(rng.normal(size=(2, 5, 3))).shape == (2, 5, 4)

    def test_forget_gate_bias_initialized_to_one(self, rng):
        layer = LSTM(3, 4, rng=rng)
        np.testing.assert_allclose(layer.bias.data[4:8], 1.0)


class TestBiRNN:
    @pytest.mark.parametrize("cell", ["rnn", "lstm"])
    def test_output_concatenates_directions(self, cell, rng):
        layer = BiRNN(3, 4, cell=cell, rng=rng)
        out = layer(rng.normal(size=(2, 5, 3)))
        assert out.shape == (2, 8)
        assert layer.output_size == 8

    def test_input_gradient(self, rng, gradcheck):
        layer = BiRNN(2, 3, cell="rnn", rng=rng)
        check_recurrent_input_gradient(layer, rng.normal(size=(2, 3, 2)), gradcheck)

    def test_rejects_unknown_cell(self):
        with pytest.raises(ValueError):
            BiRNN(2, 3, cell="gru")
