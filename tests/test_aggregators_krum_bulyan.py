"""Tests for Krum, Multi-Krum, and Bulyan."""

import numpy as np
import pytest

from repro.aggregators import BulyanAggregator, KrumAggregator, MultiKrumAggregator
from repro.aggregators.base import ServerContext
from repro.aggregators.krum import krum_scores


@pytest.fixture
def context(rng):
    return ServerContext.make(rng=rng, num_byzantine_hint=3)


@pytest.fixture
def population_with_outliers(rng):
    """17 tightly clustered honest gradients + 3 far-away malicious ones."""
    honest = rng.normal(1.0, 0.1, size=(17, 30))
    malicious = rng.normal(-8.0, 0.1, size=(3, 30))
    return np.vstack([malicious, honest])


class TestKrumScores:
    def test_outlier_scores_higher(self, population_with_outliers):
        scores = krum_scores(population_with_outliers, 3)
        assert scores[:3].min() > scores[3:].max()

    def test_scores_shape(self, benign_gradients):
        assert krum_scores(benign_gradients, 4).shape == (len(benign_gradients),)


class TestKrum:
    def test_selects_an_honest_gradient(self, population_with_outliers, context):
        result = KrumAggregator(num_byzantine=3)(population_with_outliers, context)
        assert result.selected_indices[0] >= 3
        assert result.num_selected == 1

    def test_output_is_one_of_the_inputs(self, population_with_outliers, context):
        result = KrumAggregator(num_byzantine=3)(population_with_outliers, context)
        matches = np.all(
            np.isclose(population_with_outliers, result.gradient[None, :]), axis=1
        )
        assert matches.any()

    def test_uses_context_hint_when_not_configured(
        self, population_with_outliers, context
    ):
        result = KrumAggregator()(population_with_outliers, context)
        assert result.info["num_byzantine"] == 3

    def test_invalid_byzantine_count_rejected(self):
        with pytest.raises(ValueError):
            KrumAggregator(num_byzantine=-1)


class TestMultiKrum:
    def test_excludes_malicious_gradients(self, population_with_outliers, context):
        result = MultiKrumAggregator(num_byzantine=3)(population_with_outliers, context)
        assert set(result.selected_indices).isdisjoint({0, 1, 2})
        assert result.num_selected == 17

    def test_aggregate_close_to_honest_mean(self, population_with_outliers, context):
        result = MultiKrumAggregator(num_byzantine=3)(population_with_outliers, context)
        honest_mean = population_with_outliers[3:].mean(axis=0)
        assert np.linalg.norm(result.gradient - honest_mean) < 0.2

    def test_explicit_selection_count(self, population_with_outliers, context):
        result = MultiKrumAggregator(num_byzantine=3, num_selected=5)(
            population_with_outliers, context
        )
        assert result.num_selected == 5

    def test_invalid_selection_count_rejected(self):
        with pytest.raises(ValueError):
            MultiKrumAggregator(num_selected=0)


class TestBulyan:
    def test_excludes_malicious_gradients(self, population_with_outliers, context):
        result = BulyanAggregator(num_byzantine=3)(population_with_outliers, context)
        honest_mean = population_with_outliers[3:].mean(axis=0)
        assert np.linalg.norm(result.gradient - honest_mean) < 0.5

    def test_handles_small_population(self, rng, context):
        gradients = rng.normal(size=(5, 10))
        result = BulyanAggregator(num_byzantine=1)(gradients, context)
        assert np.all(np.isfinite(result.gradient))

    def test_info_reports_selection_sizes(self, population_with_outliers, context):
        result = BulyanAggregator(num_byzantine=3)(population_with_outliers, context)
        assert result.info["theta"] >= 1
        assert result.info["beta"] >= 1

    def test_no_byzantine_behaves_like_trimmed_mean_center(
        self, benign_gradients, context
    ):
        result = BulyanAggregator(num_byzantine=0)(benign_gradients, context)
        mean = benign_gradients.mean(axis=0)
        assert np.linalg.norm(result.gradient - mean) < np.linalg.norm(mean)
