"""Gradient-correctness tests for the feed-forward layers.

Each layer's backward pass is checked against central finite differences on
both the input and the parameters — the strongest correctness guarantee a
hand-written backprop implementation can have.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Residual,
    Sequential,
)
from repro.nn.activations import ReLU


def check_input_gradient(layer, x, gradcheck, atol=1e-6):
    """Compare analytic input gradient with finite differences of sum(output)."""
    output = layer.forward(x)
    grad_input = layer.backward(np.ones_like(output))

    def scalar(x_perturbed):
        return float(np.sum(layer.forward(x_perturbed)))

    numeric = gradcheck(scalar, x.copy())
    np.testing.assert_allclose(grad_input, numeric, atol=atol)


def check_parameter_gradients(layer, x, gradcheck, atol=1e-5):
    """Compare analytic parameter gradients with finite differences."""
    layer.zero_grad()
    output = layer.forward(x)
    layer.backward(np.ones_like(output))
    for param in layer.parameters():
        analytic = param.grad.copy()

        def scalar(values, param=param):
            original = param.data.copy()
            param.data[...] = values
            result = float(np.sum(layer.forward(x)))
            param.data[...] = original
            return result

        numeric = gradcheck(scalar, param.data.copy())
        np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestLinear:
    def test_forward_shape_and_values(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(x)
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out, x @ layer.weight.data.T + layer.bias.data)

    def test_input_gradient(self, rng, gradcheck):
        layer = Linear(4, 3, rng=rng)
        check_input_gradient(layer, rng.normal(size=(5, 4)), gradcheck)

    def test_parameter_gradients(self, rng, gradcheck):
        layer = Linear(3, 2, rng=rng)
        check_parameter_gradients(layer, rng.normal(size=(4, 3)), gradcheck)

    def test_no_bias_option(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_rejects_wrong_input_width(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 3, rng=rng)(rng.normal(size=(2, 5)))


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(2, 5, 3, padding=1, rng=rng)
        assert layer(rng.normal(size=(3, 2, 8, 8))).shape == (3, 5, 8, 8)

    def test_strided_output_shape(self, rng):
        layer = Conv2d(1, 2, 3, stride=2, rng=rng)
        assert layer(rng.normal(size=(1, 1, 7, 7))).shape == (1, 2, 3, 3)

    def test_input_gradient(self, rng, gradcheck):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        check_input_gradient(layer, rng.normal(size=(2, 2, 4, 4)), gradcheck, atol=1e-5)

    def test_parameter_gradients(self, rng, gradcheck):
        layer = Conv2d(1, 2, 3, padding=1, rng=rng)
        check_parameter_gradients(layer, rng.normal(size=(2, 1, 4, 4)), gradcheck)

    def test_rejects_wrong_channel_count(self, rng):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, rng=rng)(rng.normal(size=(1, 2, 5, 5)))


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_input_gradient(self, rng, gradcheck):
        layer = MaxPool2d(2)
        check_input_gradient(layer, rng.normal(size=(2, 2, 4, 4)), gradcheck)

    def test_avgpool_forward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_input_gradient(self, rng, gradcheck):
        layer = AvgPool2d(2)
        check_input_gradient(layer, rng.normal(size=(2, 1, 4, 4)), gradcheck)

    def test_global_avgpool(self, rng, gradcheck):
        layer = GlobalAvgPool2d()
        x = rng.normal(size=(3, 4, 5, 5))
        assert layer(x).shape == (3, 4)
        check_input_gradient(layer, x, gradcheck)


class TestBatchNorm:
    def test_normalizes_in_training_mode(self, rng):
        layer = BatchNorm1d(6)
        out = layer(rng.normal(3.0, 2.0, size=(50, 6)))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_eval_mode_uses_running_statistics(self, rng):
        layer = BatchNorm1d(4, momentum=1.0)
        batch = rng.normal(2.0, 1.5, size=(64, 4))
        layer(batch)
        layer.eval()
        out = layer(batch)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-1)

    def test_input_gradient_training_mode(self, rng, gradcheck):
        layer = BatchNorm1d(3)
        x = rng.normal(size=(6, 3))
        output = layer.forward(x)
        upstream = rng.normal(size=output.shape)
        layer.forward(x)
        analytic = layer.backward(upstream)

        def scalar(x_perturbed):
            return float(np.sum(layer.forward(x_perturbed) * upstream))

        numeric = gradcheck(scalar, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_parameter_gradients(self, rng, gradcheck):
        layer = BatchNorm1d(3)
        check_parameter_gradients(layer, rng.normal(size=(6, 3)), gradcheck)

    def test_batchnorm2d_shapes(self, rng):
        layer = BatchNorm2d(4)
        out = layer(rng.normal(size=(2, 4, 3, 3)))
        assert out.shape == (2, 4, 3, 3)

    def test_batchnorm2d_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(4)(rng.normal(size=(2, 3, 3, 3)))


class TestDropoutFlattenEmbedding:
    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer(x), x)

    def test_dropout_training_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((2000, 10))
        out = layer(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_backward_uses_same_mask(self, rng):
        layer = Dropout(0.3, rng=rng)
        x = rng.normal(size=(5, 5))
        out = layer(x)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_dropout_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = layer(x)
        assert out.shape == (3, 32)
        assert layer.backward(out).shape == x.shape

    def test_embedding_lookup_and_gradient(self, rng):
        layer = Embedding(10, 4, rng=rng)
        tokens = np.array([[1, 2], [2, 3]])
        out = layer(tokens)
        assert out.shape == (2, 2, 4)
        layer.zero_grad()
        layer.backward(np.ones_like(out))
        # Token 2 appears twice, so its gradient row sums to 2.
        np.testing.assert_allclose(layer.weight.grad[2], 2.0)
        np.testing.assert_allclose(layer.weight.grad[0], 0.0)

    def test_embedding_rejects_out_of_vocab(self, rng):
        with pytest.raises(ValueError):
            Embedding(5, 3, rng=rng)(np.array([[7]]))


class TestSequentialAndResidual:
    def test_sequential_chains_forward_and_backward(self, rng, gradcheck):
        model = Sequential(Linear(4, 6, rng=rng), ReLU(), Linear(6, 2, rng=rng))
        check_input_gradient(model, rng.normal(size=(3, 4)), gradcheck)

    def test_sequential_indexing(self, rng):
        model = Sequential(Linear(2, 2, rng=rng), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_residual_identity_shortcut(self, rng, gradcheck):
        block = Residual(Sequential(Linear(4, 4, rng=rng), ReLU()))
        check_input_gradient(block, rng.normal(size=(3, 4)), gradcheck)

    def test_residual_output_is_sum(self, rng):
        inner = Linear(3, 3, rng=rng)
        block = Residual(inner)
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(block(x), inner(x) + x)
