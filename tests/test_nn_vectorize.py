"""Tests for parameter/gradient flattening (the FL gradient-vector interface)."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential
from repro.nn.activations import ReLU
from repro.nn.vectorize import (
    count_parameters,
    get_flat_gradients,
    get_flat_parameters,
    set_flat_gradients,
    set_flat_parameters,
)


@pytest.fixture
def small_model(rng):
    return Sequential(Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))


class TestVectorize:
    def test_count_matches_module(self, small_model):
        expected = 4 * 3 + 3 + 3 * 2 + 2
        assert count_parameters(small_model) == small_model.num_parameters() == expected

    def test_parameter_round_trip(self, small_model, rng):
        new_values = rng.normal(size=count_parameters(small_model))
        set_flat_parameters(small_model, new_values)
        np.testing.assert_allclose(get_flat_parameters(small_model), new_values)

    def test_gradient_round_trip(self, small_model, rng):
        new_grads = rng.normal(size=count_parameters(small_model))
        set_flat_gradients(small_model, new_grads)
        np.testing.assert_allclose(get_flat_gradients(small_model), new_grads)

    def test_set_parameters_rejects_wrong_size(self, small_model):
        with pytest.raises(ValueError):
            set_flat_parameters(small_model, np.zeros(3))

    def test_set_gradients_rejects_wrong_size(self, small_model):
        with pytest.raises(ValueError):
            set_flat_gradients(small_model, np.zeros(1000))

    def test_flat_gradients_reflect_backward(self, small_model, rng):
        x = rng.normal(size=(5, 4))
        out = small_model(x)
        small_model.zero_grad()
        small_model.backward(np.ones_like(out))
        flat = get_flat_gradients(small_model)
        assert flat.shape == (count_parameters(small_model),)
        assert np.any(flat != 0)

    def test_order_is_stable(self, small_model):
        first = get_flat_parameters(small_model)
        second = get_flat_parameters(small_model)
        np.testing.assert_array_equal(first, second)
