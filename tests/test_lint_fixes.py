"""Pinning tests for behavior touched while fixing ``repro-lint`` findings.

Most lint fixes were provably behavior-free (adding ``dtype=`` where the
default already produced that dtype, renaming private helpers).  The
ones that *could* differ are pinned here:

* ``ServerContext()`` built with no arguments now defaults to a *seeded*
  generator instead of an unseeded ``default_rng()`` — the zero-config
  path must be deterministic and stay that way;
* the dtype-pinned allocations still produce float64, bit-identical to
  NumPy's historical default.
"""

import numpy as np

from repro.aggregators.base import ServerContext
from repro.core.signguard import SignGuard
from repro.fl.metrics import selection_confusion
from repro.fl.participation import build_participation


class TestServerContextDefaultRng:
    def test_default_context_is_deterministic(self):
        draws_a = ServerContext().rng.random(8)
        draws_b = ServerContext().rng.random(8)
        np.testing.assert_array_equal(draws_a, draws_b)

    def test_default_seed_is_zero(self):
        np.testing.assert_array_equal(
            ServerContext().rng.random(8), np.random.default_rng(0).random(8)
        )

    def test_make_with_seed_overrides_default(self):
        context = ServerContext.make(rng=123)
        np.testing.assert_array_equal(
            context.rng.random(4), np.random.default_rng(123).random(4)
        )

    def test_signguard_zero_config_is_reproducible(self):
        rng = np.random.default_rng(7)
        gradients = rng.normal(size=(12, 40))
        first = SignGuard()(gradients, ServerContext())
        second = SignGuard()(gradients, ServerContext())
        np.testing.assert_array_equal(first.gradient, second.gradient)
        np.testing.assert_array_equal(
            first.selected_indices, second.selected_indices
        )


class TestDtypePinnedAllocations:
    def test_participation_weights_stay_float64(self):
        schedule = build_participation(
            "uniform", participation_fraction=0.5, rng=3
        )
        plan = schedule.plan(0, population_size=10)
        assert plan.weights.dtype == np.float64
        np.testing.assert_allclose(plan.weights.sum(), 1.0)

    def test_selection_confusion_accepts_plain_lists(self):
        confusion = selection_confusion(
            np.array([0, 1, 2]), np.array([2, 3]), num_clients=5
        )
        assert confusion == {
            "benign_selected": 2,
            "benign_total": 3,
            "byzantine_selected": 1,
            "byzantine_total": 2,
        }

    def test_selection_confusion_empty_selection(self):
        confusion = selection_confusion(
            np.array([], dtype=np.int64), np.array([1]), num_clients=3
        )
        assert confusion["benign_selected"] == 0
        assert confusion["byzantine_selected"] == 0
