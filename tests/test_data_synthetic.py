"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import build_dataset
from repro.data.datasets import ArrayDataset, DataSpec
from repro.data.synthetic_images import (
    make_cifar_like,
    make_mnist_like,
    make_synthetic_images,
)
from repro.data.synthetic_text import make_agnews_like, make_synthetic_text


class TestDataSpec:
    def test_image_input_dim(self):
        spec = DataSpec(kind="image", num_classes=10, channels=3, height=4, width=5)
        assert spec.input_dim == 60

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            DataSpec(kind="audio", num_classes=2)

    def test_rejects_image_without_geometry(self):
        with pytest.raises(ValueError):
            DataSpec(kind="image", num_classes=2)

    def test_rejects_text_without_vocab(self):
        with pytest.raises(ValueError):
            DataSpec(kind="text", num_classes=2)


class TestArrayDataset:
    def test_subset_and_class_counts(self, tiny_image_dataset):
        subset = tiny_image_dataset.subset(np.arange(10))
        assert len(subset) == 10
        assert tiny_image_dataset.class_counts().sum() == 60

    def test_label_range_checked(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            ArrayDataset(
                tiny_image_dataset.inputs,
                np.full(60, 7),
                tiny_image_dataset.spec,
            )

    def test_length_mismatch_rejected(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            ArrayDataset(
                tiny_image_dataset.inputs[:10],
                tiny_image_dataset.labels,
                tiny_image_dataset.spec,
            )


class TestSyntheticImages:
    def test_shapes_and_spec(self):
        split = make_synthetic_images(
            num_train=100,
            num_test=40,
            num_classes=5,
            channels=2,
            image_size=(9, 9),
            rng=0,
        )
        assert split.train.inputs.shape == (100, 2, 9, 9)
        assert split.test.inputs.shape == (40, 2, 9, 9)
        assert split.spec.num_classes == 5

    def test_reproducible_with_same_seed(self):
        a = make_synthetic_images(num_train=50, num_test=10, rng=7)
        b = make_synthetic_images(num_train=50, num_test=10, rng=7)
        np.testing.assert_array_equal(a.train.inputs, b.train.inputs)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        a = make_synthetic_images(num_train=50, num_test=10, rng=1)
        b = make_synthetic_images(num_train=50, num_test=10, rng=2)
        assert not np.array_equal(a.train.inputs, b.train.inputs)

    def test_classes_are_separable_by_nearest_prototype(self):
        """A nearest-class-mean classifier must beat chance by a wide margin."""
        split = make_mnist_like(num_train=400, num_test=200, rng=0)
        train_x = split.train.inputs.reshape(len(split.train), -1)
        test_x = split.test.inputs.reshape(len(split.test), -1)
        means = np.vstack(
            [train_x[split.train.labels == c].mean(axis=0) for c in range(10)]
        )
        predictions = np.argmin(
            np.linalg.norm(test_x[:, None, :] - means[None, :, :], axis=2), axis=1
        )
        accuracy = np.mean(predictions == split.test.labels)
        assert accuracy > 0.5

    def test_inputs_are_standardized(self):
        split = make_cifar_like(num_train=300, num_test=50, rng=0)
        std = split.train.inputs.std()
        assert 0.5 < std < 2.0

    def test_mnist_like_is_easier_than_fashion_like(self):
        from repro.data.synthetic_images import make_fashion_like

        mnist = make_mnist_like(num_train=10, num_test=5, rng=0)
        fashion = make_fashion_like(num_train=10, num_test=5, rng=0)
        assert mnist.spec == fashion.spec  # same geometry, different difficulty


class TestSyntheticText:
    def test_shapes_and_vocab(self):
        split = make_synthetic_text(
            num_train=80, num_test=20, num_classes=3, vocab_size=50, seq_len=7, rng=0
        )
        assert split.train.inputs.shape == (80, 7)
        assert split.train.inputs.max() < 50
        assert split.spec.kind == "text"

    def test_topic_words_predict_class(self):
        """Counting topic-block tokens must recover the label most of the time."""
        split = make_agnews_like(num_train=400, num_test=100, rng=0)
        tokens = split.train.inputs
        labels = split.train.labels
        topic_words = 8
        scores = np.zeros((len(tokens), 4))
        for cls in range(4):
            low, high = cls * topic_words, (cls + 1) * topic_words
            scores[:, cls] = ((tokens >= low) & (tokens < high)).sum(axis=1)
        predictions = scores.argmax(axis=1)
        assert np.mean(predictions == labels) > 0.7

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_synthetic_text(num_classes=4, vocab_size=10, topic_words=8, rng=0)


class TestDatasetFactory:
    @pytest.mark.parametrize(
        "name", ["mnist_like", "fashion_like", "cifar_like", "agnews_like", "cifar10"]
    )
    def test_build_registered_datasets(self, name):
        split = build_dataset(name, num_train=30, num_test=10, rng=0)
        assert len(split.train) == 30
        assert len(split.test) == 10

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            build_dataset("imagenet")
