"""dtype-awareness tests for repro.nn.

``TrainingConfig(dtype="float32")`` must make the clients *compute* in
float32 — parameters, activations, scratch buffers, and gradients — not
merely store float64 results in a float32 round buffer.  These tests pin
that contract layer by layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init
from repro.nn.activations import ReLU
from repro.nn.functional import floating_dtype, im2col, one_hot, sigmoid, softmax
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Linear,
    MaxPool2d,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models.mlp import MLP
from repro.nn.models.simple_cnn import SimpleCNN
from repro.nn.module import Module, Parameter
from repro.nn.recurrent import LSTM, RNN
from repro.nn.vectorize import get_flat_gradients, set_flat_parameters


class TestParameter:
    def test_default_dtype_is_float64(self):
        param = Parameter(np.arange(3))
        assert param.data.dtype == np.float64
        assert param.grad.dtype == np.float64

    def test_explicit_float32(self):
        param = Parameter(np.arange(3), dtype=np.float32)
        assert param.data.dtype == np.float32
        assert param.grad.dtype == np.float32

    def test_rejects_non_float_dtype(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            Parameter(np.arange(3), dtype=np.int32)

    def test_astype_casts_data_and_grad(self):
        param = Parameter(np.arange(3))
        param.grad[:] = 1.5
        param.astype(np.float32)
        assert param.data.dtype == np.float32
        assert param.grad.dtype == np.float32
        assert param.grad[0] == np.float32(1.5)


class TestModuleAstype:
    def test_astype_walks_the_tree(self):
        model = MLP(8, 3, hidden_dims=(4,), rng=0)
        model.astype(np.float32)
        assert model.dtype == np.float32
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_astype_casts_batchnorm_running_stats(self):
        bn = BatchNorm2d(4)
        bn.astype(np.float32)
        assert bn.running_mean.dtype == np.float32
        assert bn.running_var.dtype == np.float32

    def test_dtype_of_parameterless_module_is_float64(self):
        assert Module().dtype == np.float64

    def test_init_draws_match_across_dtypes(self):
        # Same seed, different dtype: float32 weights are the float64 draw
        # rounded, so both precisions start from the same initialization.
        w64 = init.kaiming_normal((4, 3), rng=np.random.default_rng(0))
        w32 = init.kaiming_normal(
            (4, 3), rng=np.random.default_rng(0), dtype=np.float32
        )
        assert w32.dtype == np.float32
        assert np.array_equal(w32, w64.astype(np.float32))


class TestFunctional:
    def test_floating_dtype(self):
        assert floating_dtype(np.float32) == np.float32
        assert floating_dtype(np.float64) == np.float64
        assert floating_dtype(np.int64) == np.float64

    def test_softmax_preserves_float32(self):
        x = np.random.default_rng(0).normal(size=(4, 5)).astype(np.float32)
        assert softmax(x).dtype == np.float32

    def test_sigmoid_preserves_float32(self):
        x = np.random.default_rng(0).normal(size=7).astype(np.float32)
        assert sigmoid(x).dtype == np.float32

    def test_one_hot_dtype(self):
        assert one_hot(np.array([0, 1]), 3).dtype == np.float64
        assert one_hot(np.array([0, 1]), 3, dtype=np.float32).dtype == np.float32

    def test_im2col_preserves_float32(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 6, 6)).astype(np.float32)
        columns, _, _ = im2col(x, kernel=3, stride=1, padding=1)
        assert columns.dtype == np.float32


LAYER_CASES = [
    (lambda: Linear(6, 4, rng=0, dtype=np.float32), (5, 6)),
    (lambda: Conv2d(2, 3, 3, padding=1, rng=0, dtype=np.float32), (2, 2, 6, 6)),
    (lambda: MaxPool2d(2), (2, 2, 6, 6)),
    (lambda: AvgPool2d(2), (2, 2, 6, 6)),
    (lambda: Dropout(0.3, rng=0), (4, 6)),
    (lambda: BatchNorm2d(2, dtype=np.float32), (3, 2, 4, 4)),
    (lambda: ReLU(), (4, 6)),
]


class TestLayers:
    @pytest.mark.parametrize("factory,shape", LAYER_CASES)
    def test_forward_backward_stay_float32(self, factory, shape):
        layer = factory()
        x = np.random.default_rng(0).normal(size=shape).astype(np.float32)
        out = layer(x)
        assert out.dtype == np.float32
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.dtype == np.float32
        for param in layer.parameters():
            assert param.grad.dtype == np.float32

    def test_embedding_float32(self):
        layer = Embedding(10, 4, rng=0, dtype=np.float32)
        tokens = np.array([[1, 2, 3], [4, 5, 6]])
        out = layer(tokens)
        assert out.dtype == np.float32
        grad_in = layer.backward(np.ones_like(out))
        assert layer.weight.grad.dtype == np.float32
        assert grad_in.dtype == np.float32

    @pytest.mark.parametrize("cell_cls", [RNN, LSTM])
    def test_recurrent_float32(self, cell_cls):
        cell = cell_cls(5, 4, rng=0, dtype=np.float32)
        x = np.random.default_rng(0).normal(size=(3, 6, 5)).astype(np.float32)
        out = cell(x)
        assert out.dtype == np.float32
        grad_in = cell.backward(np.ones_like(out))
        assert grad_in.dtype == np.float32
        for param in cell.parameters():
            assert param.grad.dtype == np.float32


class TestLosses:
    def test_cross_entropy_backward_preserves_float32(self):
        loss = CrossEntropyLoss()
        logits = np.random.default_rng(0).normal(size=(6, 4)).astype(np.float32)
        value = loss(logits, np.array([0, 1, 2, 3, 0, 1]))
        assert isinstance(value, float)
        assert loss.backward().dtype == np.float32

    def test_mse_backward_preserves_float32(self):
        loss = MSELoss()
        predictions = np.random.default_rng(0).normal(size=(5, 2)).astype(np.float32)
        targets = np.zeros((5, 2))
        loss(predictions, targets)
        assert loss.backward().dtype == np.float32


class TestVectorize:
    def test_flat_gradients_follow_model_dtype(self):
        model = MLP(8, 3, hidden_dims=(4,), rng=0)
        model.astype(np.float32)
        x = np.random.default_rng(0).normal(size=(4, 8)).astype(np.float32)
        loss = CrossEntropyLoss()
        loss(model(x), np.array([0, 1, 2, 0]))
        model.backward(loss.backward())
        assert get_flat_gradients(model).dtype == np.float32

    def test_set_flat_parameters_keeps_model_dtype(self):
        model = MLP(8, 3, hidden_dims=(4,), rng=0)
        model.astype(np.float32)
        flat = np.zeros(model.num_parameters(), dtype=np.float64)
        set_flat_parameters(model, flat)
        assert model.dtype == np.float32
        assert all(float(p.data.sum()) == 0.0 for p in model.parameters())


class TestEndToEnd:
    def test_float32_gradient_close_to_float64(self):
        def gradient(dtype):
            model = SimpleCNN(1, (14, 14), 10, rng=np.random.default_rng(2))
            if dtype is not None:
                model.astype(dtype)
            x = np.random.default_rng(3).normal(size=(8, 1, 14, 14))
            if dtype is not None:
                x = x.astype(dtype)
            labels = np.arange(8) % 10
            loss = CrossEntropyLoss()
            loss(model(x), labels)
            model.backward(loss.backward())
            return get_flat_gradients(model)

        g64 = gradient(None)
        g32 = gradient(np.float32)
        assert g64.dtype == np.float64
        assert g32.dtype == np.float32
        scale = max(np.abs(g64).max(), 1e-12)
        assert np.abs(g64 - g32).max() / scale < 1e-5
