"""Tests for SignGuard's norm-threshold and sign-clustering filters."""

import numpy as np
import pytest

from repro.core.filters import FilterDecision, NormThresholdFilter, SignClusteringFilter


class TestFilterDecision:
    def test_intersection(self):
        a = FilterDecision(selected_indices=[0, 1, 2, 3], info={"a": 1})
        b = FilterDecision(selected_indices=[2, 3, 4], info={"b": 2})
        merged = a.intersect(b)
        np.testing.assert_array_equal(merged.selected_indices, [2, 3])
        assert merged.info == {"a": 1, "b": 2}

    def test_indices_coerced_to_int_array(self):
        decision = FilterDecision(selected_indices=[1.0, 2.0])
        assert decision.selected_indices.dtype.kind == "i"


class TestNormThresholdFilter:
    def test_paper_bounds_keep_normal_gradients(self, benign_gradients):
        decision = NormThresholdFilter(lower=0.1, upper=3.0).apply(benign_gradients)
        assert len(decision.selected_indices) == len(benign_gradients)

    def test_huge_norm_gradient_rejected(self, benign_gradients):
        gradients = benign_gradients.copy()
        gradients[0] *= 100.0
        decision = NormThresholdFilter(upper=3.0).apply(gradients)
        assert 0 not in decision.selected_indices

    def test_tiny_norm_gradient_rejected(self, benign_gradients):
        gradients = benign_gradients.copy()
        gradients[0] *= 1e-4
        decision = NormThresholdFilter(lower=0.1).apply(gradients)
        assert 0 not in decision.selected_indices

    def test_all_zero_gradients_trusted(self):
        decision = NormThresholdFilter().apply(np.zeros((5, 10)))
        assert len(decision.selected_indices) == 5

    def test_info_contains_reference_norm(self, benign_gradients):
        decision = NormThresholdFilter().apply(benign_gradients)
        assert decision.info["norm_reference"] > 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            NormThresholdFilter(lower=-1.0)
        with pytest.raises(ValueError):
            NormThresholdFilter(lower=2.0, upper=1.0)


class TestSignClusteringDegenerateInputs:
    """Degenerate feature geometries must never crash or empty the round.

    Identical gradient rows produce identical feature rows — the zero-
    bandwidth case for Mean-Shift (``estimate_bandwidth``'s positive floor)
    and the single-dense-cluster case for DBSCAN — and mutually distant
    feature rows exercise DBSCAN's all-noise fallback.
    """

    @pytest.mark.parametrize("clustering", ["meanshift", "dbscan", "kmeans"])
    def test_identical_gradients_select_everyone(self, clustering):
        gradients = np.tile(np.linspace(-1.0, 1.0, 50), (6, 1))
        decision = SignClusteringFilter(clustering=clustering).apply(
            gradients, rng=np.random.default_rng(0)
        )
        np.testing.assert_array_equal(decision.selected_indices, np.arange(6))

    def test_identical_gradients_with_similarity_feature(self):
        gradients = np.tile(np.linspace(-1.0, 1.0, 50), (5, 1))
        decision = SignClusteringFilter(similarity="cosine").apply(
            gradients, rng=np.random.default_rng(1)
        )
        np.testing.assert_array_equal(decision.selected_indices, np.arange(5))

    def test_dbscan_all_noise_keeps_everyone(self):
        # All-positive / all-negative / all-zero gradients map to the three
        # corners of the sign-fraction simplex — mutually farther apart than
        # the spread-derived eps, so DBSCAN labels every client noise and
        # the largest-cluster fallback keeps the whole round.
        dim = 90
        gradients = np.vstack([np.ones(dim), -np.ones(dim), np.zeros(dim)])
        decision = SignClusteringFilter(clustering="dbscan").apply(
            gradients, rng=np.random.default_rng(0)
        )
        np.testing.assert_array_equal(decision.selected_indices, np.arange(3))


class TestSignClusteringFilter:
    @pytest.fixture
    def gradients_with_sign_flipped(self, rng):
        """16 honest gradients with a clear sign skew + 4 sign-flipped copies."""
        signal = rng.normal(0.3, 1.0, size=400)
        honest = signal[None, :] + rng.normal(0, 0.2, size=(16, 400))
        flipped = -honest[:4]
        return np.vstack([honest, flipped])

    @pytest.mark.parametrize("clustering", ["meanshift", "kmeans", "dbscan"])
    def test_majority_cluster_is_honest(
        self, gradients_with_sign_flipped, clustering, rng
    ):
        decision = SignClusteringFilter(
            clustering=clustering, coordinate_fraction=0.5
        ).apply(gradients_with_sign_flipped, rng=rng)
        selected = set(decision.selected_indices)
        honest = set(range(16))
        assert len(selected & honest) >= 12
        assert len(selected - honest) <= 1

    def test_lie_gradients_detected_with_large_z(self, rng):
        honest = rng.normal(0.2, 0.8, size=(16, 800))
        mean, std = honest.mean(axis=0), honest.std(axis=0)
        malicious = np.tile(mean - 2.0 * std, (4, 1))
        decision = SignClusteringFilter(coordinate_fraction=0.5).apply(
            np.vstack([honest, malicious]), rng=rng
        )
        assert set(decision.selected_indices).isdisjoint(set(range(16, 20)))

    def test_small_population_trusted_entirely(self, rng):
        decision = SignClusteringFilter().apply(rng.normal(size=(2, 50)), rng=rng)
        assert len(decision.selected_indices) == 2

    def test_similarity_feature_separates_orthogonal_noise(self, rng):
        """Random-noise gradients share sign stats (~50/50) with balanced honest
        gradients, but the cosine feature to a reference exposes them."""
        signal = rng.normal(0.0, 1.0, size=600)
        honest = signal[None, :] + rng.normal(0, 0.1, size=(16, 600))
        noise = rng.normal(0, 1.0, size=(4, 600))
        gradients = np.vstack([honest, noise])
        sign_filter = SignClusteringFilter(similarity="cosine", coordinate_fraction=0.5)
        decision = sign_filter.apply(gradients, reference=signal, rng=rng)
        selected = set(decision.selected_indices)
        assert len(selected & set(range(16))) >= 12
        assert len(selected & set(range(16, 20))) <= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SignClusteringFilter(clustering="spectral")

    def test_info_exposes_features(self, benign_gradients, rng):
        decision = SignClusteringFilter().apply(benign_gradients, rng=rng)
        assert decision.info["features"].shape[0] == len(benign_gradients)
