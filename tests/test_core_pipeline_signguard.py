"""Tests for the SignGuard pipeline and the SignGuard aggregator variants."""

import numpy as np
import pytest

from repro.aggregators.base import ServerContext
from repro.attacks import AttackContext, build_attack
from repro.core import SignGuard, SignGuardDist, SignGuardSim, SignGuardPipeline


@pytest.fixture
def server_context(rng):
    return ServerContext.make(rng=rng)


@pytest.fixture
def realistic_gradients(rng):
    """Honest gradients with positive-skewed signs and moderate client noise."""
    signal = rng.normal(0.15, 0.8, size=600)
    return signal[None, :] + rng.normal(0, 0.25, size=(20, 600))


def attacked(gradients, attack_name, rng, num_byzantine=4, params=None):
    if attack_name == "byzmean":
        # Use an aggressive inner LIE target so the hybrid attack is actually
        # harmful on this synthetic population (std/mean is smaller here than
        # for real training gradients, so z = 0.3 would be a no-op attack).
        from repro.attacks import ByzMeanAttack, LittleIsEnoughAttack

        attack = ByzMeanAttack(inner=LittleIsEnoughAttack(z=1.5))
    else:
        attack = build_attack(attack_name, params or {})
    context = AttackContext.make(
        num_clients=len(gradients), byzantine_indices=np.arange(num_byzantine), rng=rng
    )
    return attack.apply(gradients, context)


class TestSignGuardPipeline:
    def test_requires_at_least_one_component(self):
        with pytest.raises(ValueError):
            SignGuardPipeline(
                use_norm_threshold=False,
                use_sign_clustering=False,
                use_norm_clipping=False,
            )

    def test_aggregate_returns_expected_keys(self, realistic_gradients, rng):
        outcome = SignGuardPipeline().aggregate(realistic_gradients, rng=rng)
        assert set(outcome) == {"gradient", "selected_indices", "info"}
        assert outcome["gradient"].shape == (600,)

    def test_clipping_bound_recorded(self, realistic_gradients, rng):
        outcome = SignGuardPipeline().aggregate(realistic_gradients, rng=rng)
        assert outcome["info"]["clip_bound"] > 0

    def test_norm_threshold_removes_scaled_reverse_attack(
        self, realistic_gradients, rng
    ):
        submitted = attacked(
            realistic_gradients, "reverse_scaling", rng, params={"scale": 100.0}
        )
        pipeline = SignGuardPipeline(use_sign_clustering=False)
        decision = pipeline.filter(submitted, rng=rng)
        assert set(decision.selected_indices).isdisjoint(set(range(4)))

    def test_clustering_only_misses_scaled_reverse_but_clipping_bounds_it(
        self, realistic_gradients, rng
    ):
        """Table III: single components are weak, combinations are strong."""
        submitted = attacked(
            realistic_gradients, "reverse_scaling", rng, params={"scale": 100.0}
        )
        full = SignGuardPipeline().aggregate(submitted, rng=rng)
        benign_mean = realistic_gradients[4:].mean(axis=0)
        assert np.linalg.norm(full["gradient"] - benign_mean) < np.linalg.norm(
            benign_mean
        )

    def test_never_returns_empty_selection(self, rng):
        """Even for pathological inputs some gradient must be selected."""
        pathological = np.vstack([np.full((3, 50), 1000.0), np.full((3, 50), -1000.0)])
        outcome = SignGuardPipeline().aggregate(pathological, rng=rng)
        assert len(outcome["selected_indices"]) >= 1


class TestSignGuardAggregators:
    @pytest.mark.parametrize("attack_name", ["lie", "byzmean", "min_max", "min_sum"])
    def test_filters_stealthy_attacks(
        self, realistic_gradients, rng, server_context, attack_name
    ):
        params = {"z": 1.5} if attack_name == "lie" else None
        submitted = attacked(realistic_gradients, attack_name, rng, params=params)
        result = SignGuard()(submitted, server_context)
        byzantine_selected = set(result.selected_indices) & set(range(4))
        assert len(byzantine_selected) == 0
        benign_mean = realistic_gradients[4:].mean(axis=0)
        assert np.linalg.norm(result.gradient - benign_mean) < 0.5 * np.linalg.norm(
            benign_mean
        )

    def test_random_attack_filtered_by_norm_or_cluster(
        self, realistic_gradients, rng, server_context
    ):
        submitted = attacked(realistic_gradients, "random", rng, params={"std": 0.5})
        result = SignGuard()(submitted, server_context)
        benign_mean = realistic_gradients[4:].mean(axis=0)
        # Aggregate must stay closer to the benign mean than the undefended mean.
        undefended = submitted.mean(axis=0)
        assert np.linalg.norm(result.gradient - benign_mean) < np.linalg.norm(
            undefended - benign_mean
        )

    def test_no_attack_keeps_most_honest_gradients(
        self, realistic_gradients, server_context
    ):
        result = SignGuard()(realistic_gradients, server_context)
        assert len(result.selected_indices) >= 0.6 * len(realistic_gradients)

    def test_does_not_use_byzantine_hint(self, realistic_gradients, rng):
        """SignGuard must behave identically with and without the hint."""
        with_hint = SignGuard()(
            realistic_gradients, ServerContext.make(rng=7, num_byzantine_hint=4)
        )
        without_hint = SignGuard()(realistic_gradients, ServerContext.make(rng=7))
        np.testing.assert_allclose(with_hint.gradient, without_hint.gradient)

    def test_sim_variant_uses_previous_gradient(self, realistic_gradients, rng):
        reference = realistic_gradients.mean(axis=0)
        submitted = attacked(realistic_gradients, "sign_flip", rng)
        context = ServerContext.make(rng=rng, previous_gradient=reference)
        result = SignGuardSim()(submitted, context)
        byzantine_selected = set(result.selected_indices) & set(range(4))
        assert len(byzantine_selected) <= 1

    def test_variant_names_and_similarity(self):
        assert SignGuard().similarity == "none"
        assert SignGuardSim().similarity == "cosine"
        assert SignGuardDist().similarity == "euclidean"
        assert SignGuardSim.name == "signguard_sim"

    def test_ablation_toggles_accepted(self, realistic_gradients, server_context):
        for toggles in (
            {"use_norm_threshold": False},
            {"use_sign_clustering": False},
            {"use_norm_clipping": False},
        ):
            result = SignGuard(**toggles)(realistic_gradients, server_context)
            assert np.all(np.isfinite(result.gradient))

    def test_result_info_names_rule(self, realistic_gradients, server_context):
        result = SignGuard()(realistic_gradients, server_context)
        assert result.info["rule"] == "signguard"
