"""Tests for run recording."""

import math

from repro.utils.recording import RoundRecord, RunRecorder


def make_record(i, acc=None, benign=(8, 10), byz=(0, 2)):
    return RoundRecord(
        round_index=i,
        train_loss=1.0 / (i + 1),
        test_accuracy=acc,
        benign_selected=benign[0],
        benign_total=benign[1],
        byzantine_selected=byz[0],
        byzantine_total=byz[1],
    )


class TestRoundRecord:
    def test_selection_rates(self):
        record = make_record(0, benign=(9, 10), byz=(1, 2))
        assert record.benign_selection_rate == 0.9
        assert record.byzantine_selection_rate == 0.5

    def test_rates_nan_when_no_population(self):
        record = make_record(0, benign=(0, 0), byz=(0, 0))
        assert math.isnan(record.benign_selection_rate)
        assert math.isnan(record.byzantine_selection_rate)

    def test_to_dict_contains_core_fields(self):
        payload = make_record(3, acc=0.5).to_dict()
        assert payload["round_index"] == 3
        assert payload["test_accuracy"] == 0.5


class TestRunRecorder:
    def test_best_and_final_accuracy(self):
        recorder = RunRecorder("demo")
        for i, acc in enumerate([0.2, 0.8, 0.6]):
            recorder.add(make_record(i, acc))
        assert recorder.best_accuracy() == 0.8
        assert recorder.final_accuracy() == 0.6

    def test_accuracies_skip_unevaluated_rounds(self):
        recorder = RunRecorder()
        recorder.add(make_record(0, None))
        recorder.add(make_record(1, 0.4))
        assert recorder.accuracies == [0.4]

    def test_empty_recorder_returns_nan(self):
        recorder = RunRecorder()
        assert math.isnan(recorder.best_accuracy())
        assert math.isnan(recorder.final_accuracy())

    def test_mean_selection_rates(self):
        recorder = RunRecorder()
        recorder.add(make_record(0, benign=(10, 10), byz=(0, 2)))
        recorder.add(make_record(1, benign=(5, 10), byz=(2, 2)))
        assert recorder.mean_benign_selection_rate() == 0.75
        assert recorder.mean_byzantine_selection_rate() == 0.5

    def test_len_and_iteration(self):
        recorder = RunRecorder()
        recorder.add(make_record(0))
        recorder.add(make_record(1))
        assert len(recorder) == 2
        assert [r.round_index for r in recorder] == [0, 1]

    def test_summary_and_to_dict(self):
        recorder = RunRecorder("exp")
        recorder.add(make_record(0, 0.9))
        assert "exp" in recorder.summary()
        payload = recorder.to_dict()
        assert payload["best_accuracy"] == 0.9
        assert len(payload["rounds"]) == 1


class TestRecoverySerialization:
    """Round-trip fidelity of the fault-tolerance bookkeeping fields."""

    def make_recovery_record(self):
        record = make_record(4, acc=0.7)
        record.num_redispatched = 3
        record.num_reconnects = 1
        record.num_retries = 2
        record.quorum_met = False
        record.selected_clients = (0, 2, 5)
        record.extra = {"note": "degraded"}
        return record

    def test_recovery_fields_survive_to_dict(self):
        payload = self.make_recovery_record().to_dict()
        assert payload["num_redispatched"] == 3
        assert payload["num_reconnects"] == 1
        assert payload["num_retries"] == 2
        assert payload["quorum_met"] is False

    def test_round_record_from_dict_round_trips(self):
        original = self.make_recovery_record()
        restored = RoundRecord.from_dict(original.to_dict())
        assert restored == original

    def test_from_dict_defaults_missing_recovery_fields(self):
        # Checkpoints written before these fields existed must stay
        # readable: absent keys fall back to the healthy-round defaults.
        restored = RoundRecord.from_dict({"round_index": 1, "train_loss": 0.5})
        assert restored.num_redispatched == 0
        assert restored.num_reconnects == 0
        assert restored.num_retries == 0
        assert restored.quorum_met is True

    def test_recorder_recovery_totals(self):
        recorder = RunRecorder()
        for redispatched, reconnects, retries in [(4, 1, 0), (0, 0, 2), (2, 1, 1)]:
            record = make_record(len(recorder))
            record.num_redispatched = redispatched
            record.num_reconnects = reconnects
            record.num_retries = retries
            recorder.add(record)
        assert recorder.total_redispatched() == 6
        assert recorder.total_reconnects() == 2
        assert recorder.total_retries() == 3

    def test_recorder_from_dict_round_trips(self):
        recorder = RunRecorder("chaos run")
        recorder.metadata = {"config": {"seed": 3}}
        recorder.add(self.make_recovery_record())
        recorder.add(make_record(5, acc=0.8))
        restored = RunRecorder.from_dict(recorder.to_dict())
        assert restored.description == "chaos run"
        assert restored.metadata == {"config": {"seed": 3}}
        assert restored.rounds == recorder.rounds
        assert restored.total_redispatched() == 3
        assert restored.to_dict() == recorder.to_dict()

    def test_recorder_from_dict_tolerates_empty_payload(self):
        restored = RunRecorder.from_dict({})
        assert restored.description == ""
        assert len(restored) == 0
