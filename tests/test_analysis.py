"""Tests for the theory/analysis utilities (Section III, Lemma 1, Theorem 1)."""

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceBound,
    SignStatisticsTrace,
    lemma1_deviation_bound,
    lie_sign_reversal_threshold,
    lie_stealthiness_report,
    max_stable_learning_rate,
    sign_statistics_of_vector,
    theorem1_bound,
)


class TestLieSignReversalThreshold:
    def test_median_rule_matches_equation_three(self):
        assert lie_sign_reversal_threshold(0.5, 2.0, rule="median") == pytest.approx(
            0.25
        )

    def test_mean_rule_needs_larger_z(self):
        median_z = lie_sign_reversal_threshold(0.5, 2.0, rule="median")
        mean_z = lie_sign_reversal_threshold(0.5, 2.0, rule="mean", n=50, m=10)
        assert mean_z == pytest.approx(5 * median_z)
        assert mean_z > median_z

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            lie_sign_reversal_threshold(0.5, 0.0)
        with pytest.raises(ValueError):
            lie_sign_reversal_threshold(0.5, 1.0, rule="mean", n=5, m=5)
        with pytest.raises(ValueError):
            lie_sign_reversal_threshold(0.5, 1.0, rule="mode")


class TestLieStealthinessReport:
    @pytest.fixture
    def report(self, rng):
        honest = rng.normal(0.05, 1.0, size=(40, 500))
        return lie_stealthiness_report(honest, z=0.2)

    def test_proposition1_distance_claim(self, report):
        """Eq. (6): some honest gradient is farther from the mean than the LIE one."""
        assert report.satisfies_distance_claim

    def test_proposition1_cosine_claim(self, report):
        """Eq. (7): the LIE gradient is more similar than some honest gradient."""
        assert report.satisfies_cosine_claim

    def test_sign_disagreement_positive(self, report):
        """The SignGuard observation: the stealthy gradient still flips signs."""
        assert report.sign_disagreement > 0.05

    def test_shapes(self, report):
        assert len(report.honest_distances) == 40
        assert len(report.honest_cosines) == 40

    def test_larger_z_increases_sign_disagreement(self, rng):
        honest = rng.normal(0.05, 1.0, size=(40, 500))
        small = lie_stealthiness_report(honest, z=0.1).sign_disagreement
        large = lie_stealthiness_report(honest, z=2.0).sign_disagreement
        assert large > small


class TestSignStatisticsTrace:
    def test_record_and_series(self, rng):
        trace = SignStatisticsTrace(z=0.3)
        for _ in range(5):
            trace.record(rng.normal(0.1, 0.5, size=(10, 300)))
        assert len(trace) == 5
        assert trace.series("honest", "positive").shape == (5,)

    def test_malicious_trace_is_more_negative(self, rng):
        """Fig. 2's qualitative content."""
        trace = SignStatisticsTrace(z=1.0)
        for _ in range(10):
            trace.record(rng.normal(0.1, 0.5, size=(20, 1000)))
        summary = trace.summary()
        assert summary["malicious_negative"] > summary["honest_negative"]
        assert summary["honest_positive"] > 0.5

    def test_vector_sign_statistics(self):
        stats = sign_statistics_of_vector(np.array([1.0, -2.0, 0.0, 3.0]))
        assert stats == {"positive": 0.5, "zero": 0.25, "negative": 0.25}

    def test_series_validation(self):
        trace = SignStatisticsTrace()
        with pytest.raises(ValueError):
            trace.series("attacker", "positive")
        with pytest.raises(ValueError):
            trace.series("honest", "imaginary")


class TestLemma1:
    def test_zero_when_no_byzantine_and_infinite_clients(self):
        bound = lemma1_deviation_bound(beta=0.0, kappa=1.0, sigma=0.0, num_clients=100)
        assert bound == 0.0

    def test_increases_with_beta(self):
        low = lemma1_deviation_bound(beta=0.1, kappa=1.0, sigma=1.0, num_clients=50)
        high = lemma1_deviation_bound(beta=0.4, kappa=1.0, sigma=1.0, num_clients=50)
        assert high > low

    def test_iid_data_has_no_kappa_term(self):
        bound = lemma1_deviation_bound(beta=0.2, kappa=0.0, sigma=1.0, num_clients=50)
        assert bound == pytest.approx(1.0 / (0.8 * 50))

    def test_matches_closed_form(self):
        beta, kappa, sigma, n = 0.2, 2.0, 1.5, 50
        expected = beta**2 * kappa**2 / (1 - beta) ** 2 + sigma**2 / ((1 - beta) * n)
        assert lemma1_deviation_bound(
            beta=beta, kappa=kappa, sigma=sigma, num_clients=n
        ) == pytest.approx(expected)


class TestTheorem1:
    def test_learning_rate_condition(self):
        eta = max_stable_learning_rate(delta=0.0, beta=0.2, smoothness=1.0)
        assert eta == pytest.approx((2 - 0.4) / 4)

    def test_no_stable_rate_for_extreme_settings(self):
        with pytest.raises(ValueError):
            max_stable_learning_rate(delta=1.0, beta=0.5, smoothness=1.0)

    def test_bound_decreases_with_more_rounds(self):
        common = dict(
            initial_gap=10.0,
            learning_rate=0.05,
            smoothness=1.0,
            sigma=1.0,
            kappa=0.5,
            beta=0.2,
            delta=0.05,
        )
        short = theorem1_bound(rounds=10, **common)
        long = theorem1_bound(rounds=1000, **common)
        assert long.total < short.total
        assert long.delta2 == pytest.approx(short.delta2)

    def test_remark2_nonzero_floor_with_byzantine_noniid(self):
        """Remark 2: beta > 0 with non-IID data leaves a bias floor at delta = 0."""
        bound = theorem1_bound(
            initial_gap=1.0,
            learning_rate=0.05,
            rounds=100,
            smoothness=1.0,
            sigma=1.0,
            kappa=1.0,
            beta=0.2,
            delta=0.0,
        )
        assert bound.delta2 > 0

    def test_remark2_zero_floor_when_no_byzantine(self):
        bound = theorem1_bound(
            initial_gap=1.0,
            learning_rate=0.05,
            rounds=100,
            smoothness=1.0,
            sigma=1.0,
            kappa=1.0,
            beta=0.0,
            delta=0.0,
        )
        assert bound.delta2 == pytest.approx(0.0)

    def test_learning_rate_violation_rejected(self):
        with pytest.raises(ValueError, match="condition"):
            theorem1_bound(
                initial_gap=1.0,
                learning_rate=10.0,
                rounds=10,
                smoothness=1.0,
                sigma=1.0,
                kappa=1.0,
                beta=0.2,
                delta=0.1,
            )

    def test_delta_cannot_exceed_beta(self):
        with pytest.raises(ValueError):
            theorem1_bound(
                initial_gap=1.0,
                learning_rate=0.01,
                rounds=10,
                smoothness=1.0,
                sigma=1.0,
                kappa=1.0,
                beta=0.1,
                delta=0.2,
            )

    def test_total_is_sum_of_terms(self):
        bound = ConvergenceBound(optimality_term=1.0, delta1=2.0, delta2=3.0)
        assert bound.total == 6.0
