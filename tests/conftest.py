"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import ArrayDataset, DataSpec


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def benign_gradients(rng):
    """A small population of 'honest' gradients: common signal + per-client noise."""
    num_clients, dim = 20, 150
    signal = rng.normal(0.2, 1.0, size=dim)
    noise = rng.normal(0.0, 0.3, size=(num_clients, dim))
    return signal[None, :] + noise


@pytest.fixture
def tiny_image_dataset(rng):
    """A 60-sample, 3-class, 6x6 single-channel image dataset."""
    spec = DataSpec(kind="image", num_classes=3, channels=1, height=6, width=6)
    labels = np.repeat(np.arange(3), 20)
    prototypes = rng.normal(size=(3, 1, 6, 6))
    inputs = prototypes[labels] + 0.3 * rng.normal(size=(60, 1, 6, 6))
    return ArrayDataset(inputs, labels, spec)


@pytest.fixture
def tiny_text_dataset(rng):
    """A 40-sample, 2-class token-sequence dataset."""
    spec = DataSpec(kind="text", num_classes=2, vocab_size=20, seq_len=6)
    labels = np.repeat(np.arange(2), 20)
    tokens = np.where(
        labels[:, None] == 0,
        rng.integers(0, 10, size=(40, 6)),
        rng.integers(10, 20, size=(40, 6)),
    )
    return ArrayDataset(tokens, labels, spec)


def numerical_gradient(func, x, epsilon=1e-5):
    """Central-difference numerical gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func(x)
        flat[index] = original - epsilon
        minus = func(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


@pytest.fixture
def gradcheck():
    """Expose the numerical gradient helper as a fixture."""
    return numerical_gradient
