"""Integration tests for the high-level experiment runner."""

import pytest

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
)
from repro.fl import run_experiment, run_grid


def fast_config(attack="no_attack", defense="mean", **overrides):
    """A deliberately tiny configuration so integration tests stay fast."""
    config = ExperimentConfig(
        num_clients=8,
        seed=3,
        data=DataConfig(dataset="mnist_like", num_train=240, num_test=80),
        training=TrainingConfig(
            model="mlp", rounds=6, batch_size=16, learning_rate=0.1, eval_every=2
        ),
        attack=AttackConfig(name=attack, byzantine_fraction=0.25),
        defense=DefenseConfig(name=defense),
    )
    return config.replace(**overrides)


class TestRunExperiment:
    def test_returns_populated_recorder(self):
        recorder = run_experiment(fast_config())
        assert len(recorder) == 6
        assert recorder.best_accuracy() > 0.1
        assert "config" in recorder.metadata

    def test_reproducible_with_same_seed(self):
        a = run_experiment(fast_config())
        b = run_experiment(fast_config())
        assert a.best_accuracy() == pytest.approx(b.best_accuracy())
        assert a.losses == pytest.approx(b.losses)

    def test_different_seeds_differ(self):
        a = run_experiment(fast_config())
        b = run_experiment(fast_config(seed=9))
        assert a.losses != pytest.approx(b.losses)

    def test_byzantine_indices_recorded(self):
        recorder = run_experiment(fast_config(attack="sign_flip", defense="signguard"))
        assert len(recorder.metadata["byzantine_indices"]) == 2

    def test_label_flip_attack_uses_data_poisoning_path(self):
        recorder = run_experiment(fast_config(attack="label_flip", defense="median"))
        assert recorder.best_accuracy() > 0.1

    def test_non_iid_partition(self):
        config = fast_config()
        config.data.partition = "sort_and_partition"
        config.data.iid_fraction = 0.3
        recorder = run_experiment(config)
        assert len(recorder) == 6

    def test_text_task(self):
        config = fast_config()
        config.data = DataConfig(dataset="agnews_like", num_train=240, num_test=80)
        config.training = TrainingConfig(
            model="textrnn", rounds=5, batch_size=16, learning_rate=0.5, eval_every=5
        )
        recorder = run_experiment(config)
        assert recorder.best_accuracy() > 0.2

    def test_invalid_config_rejected_before_running(self):
        config = fast_config()
        config.attack.byzantine_fraction = 0.6
        with pytest.raises(ValueError):
            run_experiment(config)


class TestRunGrid:
    def test_grid_keys_and_values(self):
        results = run_grid(
            fast_config(),
            attacks=["no_attack", "sign_flip"],
            defenses=["mean", "signguard"],
        )
        assert set(results) == {
            ("no_attack", "mean"),
            ("no_attack", "signguard"),
            ("sign_flip", "mean"),
            ("sign_flip", "signguard"),
        }
        for recorder in results.values():
            assert len(recorder) == 6

    def test_grid_forwards_params(self):
        results = run_grid(
            fast_config(),
            attacks=["lie"],
            defenses=["trimmed_mean"],
            attack_params={"lie": {"z": 0.8}},
            defense_params={"trimmed_mean": {"trim": 1}},
        )
        recorder = results[("lie", "trimmed_mean")]
        assert recorder.metadata["config"]["attack"]["params"] == {"z": 0.8}
