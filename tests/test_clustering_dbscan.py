"""Tests for DBSCAN clustering."""

import numpy as np
import pytest

from repro.clustering import DBSCAN


@pytest.fixture
def blobs_with_outlier(rng):
    dense = rng.normal(0.0, 0.1, size=(20, 2))
    other = rng.normal(3.0, 0.1, size=(10, 2))
    outlier = np.array([[10.0, 10.0]])
    return np.vstack([dense, other, outlier])


class TestDBSCAN:
    def test_finds_two_clusters_and_noise(self, blobs_with_outlier):
        model = DBSCAN(eps=0.5, min_samples=3).fit(blobs_with_outlier)
        assert model.n_clusters_ == 2
        assert model.labels_[-1] == -1

    def test_largest_cluster_is_densest(self, blobs_with_outlier):
        model = DBSCAN(eps=0.5, min_samples=3).fit(blobs_with_outlier)
        assert set(model.largest_cluster()) == set(range(20))

    def test_all_noise_falls_back_to_everything(self, rng):
        spread = rng.uniform(-100, 100, size=(8, 2))
        model = DBSCAN(eps=0.01, min_samples=3).fit(spread)
        assert model.n_clusters_ == 0
        assert len(model.largest_cluster()) == len(spread)

    def test_all_noise_labels_and_fallback_order(self, rng):
        # Every sample is labeled noise (-1) and the fallback returns the
        # full index range in order, so a defense never discards the round.
        spread = rng.uniform(-50, 50, size=(6, 3))
        model = DBSCAN(eps=1e-6, min_samples=2).fit(spread)
        assert np.all(model.labels_ == -1)
        np.testing.assert_array_equal(model.largest_cluster(), np.arange(6))

    def test_identical_points_form_single_cluster(self):
        model = DBSCAN(eps=0.5, min_samples=3).fit(np.ones((9, 4)))
        assert model.n_clusters_ == 1
        assert np.all(model.labels_ == 0)
        np.testing.assert_array_equal(model.largest_cluster(), np.arange(9))

    def test_core_samples_identified(self, blobs_with_outlier):
        model = DBSCAN(eps=0.5, min_samples=3).fit(blobs_with_outlier)
        assert 30 not in model.core_sample_indices_

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)
        with pytest.raises(ValueError):
            DBSCAN(min_samples=0)

    def test_largest_cluster_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DBSCAN().largest_cluster()

    def test_single_dense_cluster(self, rng):
        points = rng.normal(size=(12, 3)) * 0.05
        model = DBSCAN(eps=0.5, min_samples=3).fit(points)
        assert model.n_clusters_ == 1
        assert np.all(model.labels_ == 0)
