"""Tests for KMeans clustering."""

import numpy as np
import pytest

from repro.clustering import KMeans, kmeans_plus_plus_init


@pytest.fixture
def two_blobs(rng):
    a = rng.normal(0.0, 0.2, size=(15, 2))
    b = rng.normal(5.0, 0.2, size=(10, 2))
    return np.vstack([a, b])


class TestKMeansPlusPlusInit:
    def test_returns_requested_number_of_centroids(self, two_blobs, rng):
        centroids = kmeans_plus_plus_init(two_blobs, 3, rng)
        assert centroids.shape == (3, 2)

    def test_rejects_more_clusters_than_samples(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_init(np.zeros((2, 2)), 3, rng)

    def test_handles_duplicate_points(self, rng):
        data = np.zeros((5, 2))
        centroids = kmeans_plus_plus_init(data, 2, rng)
        np.testing.assert_allclose(centroids, 0.0)


class TestKMeans:
    def test_separates_two_blobs(self, two_blobs):
        labels = KMeans(n_clusters=2, rng=0).fit_predict(two_blobs)
        first, second = labels[:15], labels[15:]
        assert len(np.unique(first)) == 1
        assert len(np.unique(second)) == 1
        assert first[0] != second[0]

    def test_inertia_decreases_with_more_clusters(self, two_blobs):
        inertia_1 = KMeans(n_clusters=1, rng=0).fit(two_blobs).inertia_
        inertia_2 = KMeans(n_clusters=2, rng=0).fit(two_blobs).inertia_
        assert inertia_2 < inertia_1

    def test_predict_assigns_nearest_centroid(self, two_blobs):
        model = KMeans(n_clusters=2, rng=0).fit(two_blobs)
        prediction = model.predict(np.array([[5.0, 5.0]]))
        cluster_of_b = model.labels_[15]
        assert prediction[0] == cluster_of_b

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((1, 2)))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=3).fit(np.zeros((2, 2)))

    def test_rejects_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)

    def test_single_cluster_centroid_is_mean(self, two_blobs):
        model = KMeans(n_clusters=1, rng=0).fit(two_blobs)
        np.testing.assert_allclose(model.cluster_centers_[0], two_blobs.mean(axis=0))
