"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngFactory,
    as_rng,
    choice_without_replacement,
    spawn_rngs,
    split_indices,
)


class TestAsRng:
    def test_accepts_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_accepts_int_and_is_deterministic(self):
        a = as_rng(7).integers(0, 1000, size=5)
        b = as_rng(7).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**6, size=10)
        b = children[1].integers(0, 10**6, size=10)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(3, 4)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestRngFactory:
    def test_same_name_sequence_is_reproducible(self):
        values_a = [RngFactory(1).make("clients").integers(0, 10**6) for _ in range(1)]
        values_b = [RngFactory(1).make("clients").integers(0, 10**6) for _ in range(1)]
        assert values_a == values_b

    def test_different_names_differ(self):
        factory = RngFactory(1)
        a = factory.make("alpha").integers(0, 10**6, size=8)
        b = factory.make("beta").integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_repeated_requests_advance(self):
        factory = RngFactory(1)
        a = factory.make("x").integers(0, 10**6, size=8)
        b = factory.make("x").integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_reset_restarts_streams(self):
        factory = RngFactory(1)
        first = factory.make("x").integers(0, 10**6, size=4)
        factory.reset()
        again = factory.make("x").integers(0, 10**6, size=4)
        np.testing.assert_array_equal(first, again)

    def test_make_many(self):
        factory = RngFactory(0)
        assert len(factory.make_many("clients", 7)) == 7


class TestChoiceWithoutReplacement:
    def test_sorted_and_unique(self, rng):
        picked = choice_without_replacement(rng, 50, 10)
        assert len(np.unique(picked)) == 10
        assert np.all(np.diff(picked) > 0)

    def test_rejects_oversized_sample(self, rng):
        with pytest.raises(ValueError):
            choice_without_replacement(rng, 5, 6)


class TestSplitIndices:
    def test_partitions_everything(self, rng):
        groups = split_indices(rng, 100, [0.5, 0.3, 0.2])
        combined = np.concatenate(groups)
        assert len(combined) == 100
        assert len(np.unique(combined)) == 100

    def test_fraction_validation(self, rng):
        with pytest.raises(ValueError):
            split_indices(rng, 10, [0.5, 0.2])
