"""Distributed collect transport: framing, codec, handshake, equivalence, faults.

The contracts under test:

* framing rejects truncated and oversized frames (a hostile or corrupted
  length prefix can never cause unbounded allocation or a half-message);
* the handshake refuses protocol-version and model-signature mismatches;
* a healthy localhost fleet is **bit-identical** to the sequential
  backend at any worker count, including sampled ``rows=`` cohorts and
  BatchNorm models;
* a worker that dies or times out mid-round degrades to
  ``RoundPlan`` dropouts — the round completes, the run continues, and a
  replacement worker resumes the lost clients' RNG streams bit-exactly
  (proven against a sequential run with the same dropout trace).
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
)
from repro.data.factory import build_dataset
from repro.fl.client import BenignClient
from repro.fl.collector import SequentialCollector, build_collector
from repro.fl.experiment import run_experiment
from repro.fl.faults import FaultSchedule
from repro.fl.participation import ParticipationSchedule, RoundPlan
from repro.fl.server import FederatedServer
from repro.fl.simulation import FederatedSimulation
from repro.fl.transport import (
    CodecError,
    DistributedCollector,
    HandshakeError,
    OversizedFrameError,
    RemoteWorkerError,
    TransportError,
    TruncatedFrameError,
    WorkerConnection,
    WorkerServer,
    build_codec,
    model_signature,
    parse_address,
    spawn_worker_process,
    start_thread_fleet,
    wire_codec_names,
)
from repro.fl.transport.codec import (
    MSG_ERROR,
    MSG_HELLO,
    MSG_SHARD,
    MSG_TRAILER,
    MSG_WELCOME,
    encode_state_dict,
    pack_message,
    unpack_message,
)
from repro.fl.transport.framing import (
    FrameError,
    recv_frame,
    recv_frame_into,
    send_frame,
)
from repro.fl.transport.protocol import PROTOCOL_VERSION, hello_header
from repro.utils.rng import RngFactory
from repro.utils.serialization import arrays_to_blob, blob_to_arrays
from tests.test_fl_parallel_collect import (
    BatchNormMLP,
    make_clients,
    make_model,
    run_batchnorm_rounds,
)


# ---------------------------------------------------------------------------
# framing + codec units
# ---------------------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, b"hello ", b"world")
            assert recv_frame(b) == b"hello world"
        finally:
            a.close()
            b.close()

    def test_empty_frame(self):
        a, b = socket.socketpair()
        try:
            send_frame(a)
            assert recv_frame(b) == b""
        finally:
            a.close()
            b.close()

    def test_truncated_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            # Announce 100 bytes, deliver 10, hang up.
            a.sendall((100).to_bytes(8, "big") + b"x" * 10)
            a.close()
            with pytest.raises(TruncatedFrameError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            a.sendall((2**62).to_bytes(8, "big"))
            with pytest.raises(OversizedFrameError):
                recv_frame(b, max_bytes=1024)
        finally:
            a.close()
            b.close()

    def test_recv_into_requires_exact_size(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, b"12345")
            target = bytearray(3)
            with pytest.raises(FrameError, match="3-byte"):
                recv_frame_into(b, memoryview(target))
        finally:
            a.close()
            b.close()

    def test_recv_into_zero_copy(self):
        a, b = socket.socketpair()
        try:
            payload = np.arange(6, dtype=np.float64)
            send_frame(a, payload.tobytes())
            target = np.zeros(6)
            recv_frame_into(b, memoryview(target).cast("B"))
            assert np.array_equal(target, payload)
        finally:
            a.close()
            b.close()


class TestCodec:
    def test_message_roundtrip(self):
        payload = pack_message(MSG_HELLO, {"a": 1}, b"body")
        assert unpack_message(payload) == (MSG_HELLO, {"a": 1}, b"body")

    def test_state_dict_blob_roundtrip(self):
        state = {
            "w": np.arange(6, dtype=np.float64).reshape(2, 3),
            "b": np.array([1.5, -2.5], dtype=np.float32),
            "count": np.array(7, dtype=np.int64),
        }
        decoded = blob_to_arrays(arrays_to_blob(state))
        assert list(decoded) == list(state)
        for name in state:
            assert decoded[name].dtype == state[name].dtype
            assert np.array_equal(decoded[name], state[name])

    def test_truncated_blob_rejected(self):
        blob = arrays_to_blob({"w": np.zeros(10)})
        with pytest.raises(ValueError, match="truncated"):
            blob_to_arrays(blob[:-8])

    def test_trailing_garbage_rejected(self):
        blob = arrays_to_blob({"w": np.zeros(4)})
        with pytest.raises(ValueError, match="trailing"):
            blob_to_arrays(blob + b"xx")

    def test_model_signature_tracks_architecture_not_values(self):
        a = make_model(seed=1)
        b = make_model(seed=2)  # same architecture, different weights
        assert model_signature(a) == model_signature(b)
        assert model_signature(a) != model_signature(BatchNormMLP())

    def test_parse_address(self):
        assert parse_address("localhost:9000") == ("localhost", 9000)
        assert parse_address("[::1]:80") == ("::1", 80)
        with pytest.raises(ValueError):
            parse_address("no-port")
        with pytest.raises(ValueError):
            parse_address("host:notaport")


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------


def _raw_hello(address, header):
    """Open a raw connection, send a HELLO with ``header``, return the reply."""
    host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=10) as sock:
        send_frame(sock, pack_message(MSG_HELLO, header))
        return unpack_message(recv_frame(sock))


class TestHandshake:
    def test_welcome_on_matching_version(self):
        with start_thread_fleet(1) as fleet:
            msg, header, _ = _raw_hello(
                fleet.addresses[0], hello_header(model_signature(make_model()))
            )
            assert msg == MSG_WELCOME
            assert header["protocol"] == PROTOCOL_VERSION
            assert header["has_shard"] is False

    def test_refuses_protocol_version_mismatch(self):
        with start_thread_fleet(1) as fleet:
            bad = hello_header(model_signature(make_model()))
            bad["protocol"] = PROTOCOL_VERSION + 999
            msg, header, _ = _raw_hello(fleet.addresses[0], bad)
            assert msg == MSG_ERROR
            assert "version mismatch" in header["error"]

    def test_refuses_wrong_magic(self):
        with start_thread_fleet(1) as fleet:
            msg, header, _ = _raw_hello(fleet.addresses[0], {"magic": "nope"})
            assert msg == MSG_ERROR

    def test_refuses_signature_mismatch_against_held_shard(self):
        with start_thread_fleet(1) as fleet:
            clients = make_clients(4)
            model = make_model()
            out = np.empty((4, model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            collector.collect(clients, model, out)
            collector.close()
            # The worker now holds a shard for `model`'s architecture; a
            # caller announcing a different model must be refused.
            other = BatchNormMLP()
            conn = WorkerConnection(fleet.addresses[0])
            from repro.fl.transport.protocol import HandshakeError

            with pytest.raises(HandshakeError, match="signature mismatch"):
                conn.connect(other)

    def test_refuses_setup_not_matching_announced_signature(self):
        with start_thread_fleet(1) as fleet:
            conn = WorkerConnection(fleet.addresses[0])
            conn.connect(make_model())  # announce the MLP's signature
            clients = make_clients(2)
            with pytest.raises(RemoteWorkerError, match="does not match"):
                conn.setup(BatchNormMLP(), [0, 1], clients)  # ship another
            conn.drop()

    def test_round_before_setup_refused(self):
        with start_thread_fleet(1) as fleet:
            model = make_model()
            conn = WorkerConnection(fleet.addresses[0])
            conn.connect(model)
            conn.begin_round(b"", [0], np.float64, model.num_parameters())
            with pytest.raises(RemoteWorkerError, match="before SETUP"):
                conn.finish_round(np.empty((1, model.num_parameters())))
            conn.drop()

    def test_worker_survives_garbage_connection(self):
        with start_thread_fleet(1) as fleet:
            host, port = parse_address(fleet.addresses[0])
            # An oversized frame: the worker must drop the connection...
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall((2**61).to_bytes(8, "big"))
                assert sock.recv(1) == b""  # worker hung up
            # ...and keep serving the next caller.
            msg, _, _ = _raw_hello(
                fleet.addresses[0], hello_header(model_signature(make_model()))
            )
            assert msg == MSG_WELCOME

    def test_heartbeat(self):
        with start_thread_fleet(2) as fleet:
            clients = make_clients(4)
            model = make_model()
            out = np.empty((4, model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            collector.collect(clients, model, out)
            assert collector.heartbeat() == {
                address: True for address in fleet.addresses
            }
            collector.close()


# ---------------------------------------------------------------------------
# bit-equality with the sequential backend
# ---------------------------------------------------------------------------


class TestBitEquality:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_full_round_bit_identical_to_sequential(self, n_workers):
        n_clients = 9
        sequential = make_clients(n_clients)
        model = make_model()
        reference = np.empty((n_clients, model.num_parameters()))
        SequentialCollector().collect(sequential, model, reference)

        with start_thread_fleet(n_workers) as fleet:
            clients = make_clients(n_clients)
            out = np.empty((n_clients, model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            try:
                collector.collect(clients, model, out)
            finally:
                collector.close()
        assert np.array_equal(reference, out)

    def test_sampled_rows_bit_identical_to_sequential(self):
        n_clients = 10
        rows = [0, 3, 4, 8]
        sequential = make_clients(n_clients)
        model = make_model()
        reference = np.empty((n_clients, model.num_parameters()))
        SequentialCollector().collect(sequential, model, reference)

        with start_thread_fleet(3) as fleet:
            clients = make_clients(n_clients)
            out = np.empty((len(rows), model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            try:
                collector.collect(clients, model, out, rows=rows)
            finally:
                collector.close()
        assert np.array_equal(reference[rows], out)

    def test_multi_round_streams_advance_in_worker(self):
        """Across rounds the in-worker RNG streams advance exactly once."""
        n_clients, rounds = 6, 3
        sequential = make_clients(n_clients)
        model = make_model()
        reference = np.empty((n_clients, model.num_parameters()))
        for _ in range(rounds):
            SequentialCollector().collect(sequential, model, reference)

        with start_thread_fleet(2) as fleet:
            clients = make_clients(n_clients)
            out = np.empty((n_clients, model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            try:
                for _ in range(rounds):
                    collector.collect(clients, model, out)
            finally:
                collector.close()
        assert np.array_equal(reference, out)

    def test_losses_mirrored_to_caller_clients(self):
        n_clients = 6
        sequential = make_clients(n_clients)
        model = make_model()
        buffer = np.empty((n_clients, model.num_parameters()))
        SequentialCollector().collect(sequential, model, buffer)

        with start_thread_fleet(2) as fleet:
            clients = make_clients(n_clients)
            collector = DistributedCollector(fleet.addresses)
            try:
                collector.collect(clients, model, buffer)
            finally:
                collector.close()
        assert [c.last_loss for c in clients] == [c.last_loss for c in sequential]

    def test_batchnorm_parity_with_sequential(self):
        seq_out, seq_acc, seq_loss, seq_buffers = run_batchnorm_rounds(
            SequentialCollector
        )
        with start_thread_fleet(2) as fleet:
            dist_out, dist_acc, dist_loss, dist_buffers = run_batchnorm_rounds(
                lambda: DistributedCollector(fleet.addresses)
            )
        assert np.array_equal(seq_out, dist_out)
        assert seq_acc == dist_acc and seq_loss == dist_loss
        for name in seq_buffers:
            assert np.array_equal(seq_buffers[name], dist_buffers[name])

    def test_float32_round_buffer(self):
        n_clients = 5
        model = make_model(dtype="float32")
        sequential = make_clients(n_clients)
        reference = np.empty((n_clients, model.num_parameters()), dtype=np.float32)
        SequentialCollector().collect(sequential, model, reference)

        with start_thread_fleet(2) as fleet:
            clients = make_clients(n_clients)
            out = np.empty((n_clients, model.num_parameters()), dtype=np.float32)
            collector = DistributedCollector(fleet.addresses)
            try:
                collector.collect(clients, model, out)
            finally:
                collector.close()
        assert np.array_equal(reference, out)

    def test_more_workers_than_clients(self):
        n_clients = 2
        sequential = make_clients(n_clients)
        model = make_model()
        reference = np.empty((n_clients, model.num_parameters()))
        SequentialCollector().collect(sequential, model, reference)

        with start_thread_fleet(4) as fleet:
            clients = make_clients(n_clients)
            out = np.empty((n_clients, model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            try:
                collector.collect(clients, model, out)
            finally:
                collector.close()
        assert np.array_equal(reference, out)

    def test_run_experiment_end_to_end_equivalence(self):
        base = dict(
            num_clients=10,
            seed=3,
            data=DataConfig(dataset="mnist_like", num_train=200, num_test=50),
            defense=DefenseConfig(name="mean"),
        )
        training = dict(model="mlp", rounds=3, batch_size=8)
        sequential = run_experiment(
            ExperimentConfig(
                training=TrainingConfig(collect_backend="sequential", **training),
                **base,
            )
        )
        with start_thread_fleet(2) as fleet:
            distributed = run_experiment(
                ExperimentConfig(
                    training=TrainingConfig(
                        collect_backend="distributed",
                        workers=fleet.addresses,
                        **training,
                    ),
                    **base,
                )
            )
        assert [r.train_loss for r in sequential.rounds] == [
            r.train_loss for r in distributed.rounds
        ]
        assert [r.test_accuracy for r in sequential.rounds] == [
            r.test_accuracy for r in distributed.rounds
        ]

    def test_sampled_cohort_experiment_equivalence(self):
        base = dict(
            num_clients=10,
            seed=4,
            data=DataConfig(dataset="mnist_like", num_train=200, num_test=50),
            defense=DefenseConfig(name="mean"),
        )
        training = dict(
            model="mlp",
            rounds=3,
            batch_size=8,
            participation="uniform",
            participation_fraction=0.5,
        )
        sequential = run_experiment(
            ExperimentConfig(
                training=TrainingConfig(collect_backend="sequential", **training),
                **base,
            )
        )
        with start_thread_fleet(3) as fleet:
            distributed = run_experiment(
                ExperimentConfig(
                    training=TrainingConfig(
                        collect_backend="distributed",
                        workers=fleet.addresses,
                        **training,
                    ),
                    **base,
                )
            )
        assert [r.train_loss for r in sequential.rounds] == [
            r.train_loss for r in distributed.rounds
        ]

    def test_bytes_on_wire_reported(self):
        with start_thread_fleet(2) as fleet:
            clients = make_clients(4)
            model = make_model()
            out = np.empty((4, model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            try:
                collector.collect(clients, model, out)
                sent, received = collector.last_round_bytes
            finally:
                collector.close()
        # The reply traffic must carry at least the gradient payload, the
        # broadcast at least one encoded state dict per worker.
        assert received >= out.nbytes
        assert sent >= model.num_parameters() * 8


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------


class ExplodingClient(BenignClient):
    """Module-level so it pickles through the SETUP message."""

    def compute_gradient(self, model):
        raise RuntimeError("client bug, not a dropout")


class PlannedSchedule(ParticipationSchedule):
    """Replays a fixed list of round plans (test double)."""

    name = "planned"

    def __init__(self, plans):
        self.plans = list(plans)

    def plan(self, round_index, population_size):
        return self.plans[round_index]


def make_plan(round_index, population, active, dropped=()):
    active = np.asarray(active, dtype=int)
    return RoundPlan(
        round_index=round_index,
        population_size=population,
        cohort=np.sort(np.concatenate([active, np.asarray(dropped, dtype=int)])),
        active=active,
        dropped=np.asarray(dropped, dtype=int),
        stragglers=np.array([], dtype=int),
        weights=np.full(len(active), 1.0 / len(active)),
    )


def build_simulation(collector, *, n_clients=8, seed=5, schedule=None):
    """A tiny no-attack simulation over a deterministic population."""
    from repro.aggregators.factory import build_aggregator
    from repro.attacks.factory import build_attack
    from repro.data.partition import partition_dataset
    from repro.fl.simulation import build_clients
    from repro.nn.models.factory import build_model as build_nn_model

    factory = RngFactory(seed)
    split = build_dataset(
        "mnist_like", num_train=160, num_test=40, rng=factory.make("data")
    )
    partitions = partition_dataset(
        split.train, n_clients, scheme="iid", rng=factory.make("partition")
    )
    clients = build_clients(
        split.train, partitions, [], batch_size=8, rng_factory=factory
    )
    model = build_nn_model(
        "mlp", split.spec, rng=factory.make("model"), params={"hidden_dims": (12,)}
    )
    server = FederatedServer(
        model,
        build_aggregator("mean", {}),
        num_byzantine_hint=0,
        rng=factory.make("server"),
    )
    return FederatedSimulation(
        server,
        clients,
        build_attack("no_attack", {}),
        split.test,
        attack_rng=factory.make("attack"),
        collector=collector,
        participation=schedule if schedule is not None else "full",
        seed=seed,
    )


class TestFaultInjection:
    def test_stalled_worker_times_out_into_dropouts(self):
        # Worker 0 sleeps through its second round request: the round must
        # complete with its 4 clients recorded as dropouts, not crash.
        # (redispatch off: this test pins the demote rung of the ladder.)
        stall = FaultSchedule.from_args(["stall@2"])
        with start_thread_fleet(2, fault_schedule=stall) as fleet:
            collector = DistributedCollector(
                fleet.addresses, round_timeout=2.0, redispatch=False
            )
            simulation = build_simulation(collector)
            try:
                healthy = simulation.run_round(0)
                degraded = simulation.run_round(1)
            finally:
                simulation.close()
        assert healthy.num_dropped == 0
        assert degraded.num_dropped == 4
        assert np.isfinite(degraded.train_loss)

    def test_killed_worker_mid_round_becomes_dropouts(self):
        # A real subprocess worker exits hard upon receiving its second
        # round request — the caller sees a dead connection mid-round.
        crashing = spawn_worker_process(extra_args=["--fault", "crash@2"])
        healthy = spawn_worker_process()
        try:
            collector = DistributedCollector(
                [crashing.address, healthy.address],
                connect_timeout=5.0,
                round_timeout=30.0,
                redispatch=False,
            )
            simulation = build_simulation(collector)
            try:
                first = simulation.run_round(0)
                second = simulation.run_round(1)
            finally:
                simulation.close()
            assert first.num_dropped == 0
            assert second.num_dropped == 4
            # The caller can finish the round before the OS reaps the
            # crashed child — wait for the exit instead of racing poll().
            crashing.process.wait(timeout=10)
            assert not crashing.alive
        finally:
            crashing.terminate()
            healthy.terminate()

    def test_reconnect_after_dead_round_resumes_streams_bit_exactly(self):
        # The acceptance story: kill a worker, let rounds degrade to
        # dropouts, bring a replacement up on the same port, and the whole
        # run stays bit-identical to a sequential run with the same
        # dropout trace (dropped rounds never advance client RNG streams).
        n, rounds = 8, 4
        first_chunk = list(range(4))  # worker 0's contiguous chunk
        plans = [
            make_plan(0, n, active=range(n)),
            make_plan(1, n, active=range(4, 8), dropped=first_chunk),
            make_plan(2, n, active=range(4, 8), dropped=first_chunk),
            make_plan(3, n, active=range(n)),
        ]
        reference = build_simulation(
            SequentialCollector(), schedule=PlannedSchedule(plans)
        )
        reference_losses = [
            reference.run_round(index).train_loss for index in range(rounds)
        ]
        reference_state = reference.model.state_dict()
        reference.close()

        crashing = spawn_worker_process(extra_args=["--fault", "crash@2"])
        port = parse_address(crashing.address)[1]
        healthy = spawn_worker_process()
        replacement = None
        try:
            collector = DistributedCollector(
                [crashing.address, healthy.address],
                connect_timeout=5.0,
                round_timeout=30.0,
                redispatch=False,
            )
            simulation = build_simulation(collector)
            try:
                losses = [simulation.run_round(0).train_loss]
                losses.append(simulation.run_round(1).train_loss)  # crash
                losses.append(simulation.run_round(2).train_loss)  # still dead
                # Bring a replacement worker up on the same port; the next
                # round re-ships the chunk with resumed RNG states.
                replacement = spawn_worker_process(port=port)
                record = simulation.run_round(3)
                losses.append(record.train_loss)
                assert record.num_dropped == 0
            finally:
                simulation.close()
            assert losses == reference_losses
            state = simulation.model.state_dict()
            for name in reference_state:
                assert np.array_equal(reference_state[name], state[name])
        finally:
            crashing.terminate()
            healthy.terminate()
            if replacement is not None:
                replacement.terminate()

    def test_whole_fleet_unreachable_raises(self):
        # Two never-started addresses: a fleet outage is a deployment
        # error, not a dropout.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        collector = DistributedCollector(
            [f"127.0.0.1:{dead_port}"], connect_timeout=0.5
        )
        clients = make_clients(4)
        model = make_model()
        out = np.empty((4, model.num_parameters()))
        with pytest.raises(TransportError, match="no distributed-collect worker"):
            collector.collect(clients, model, out)
        collector.close()

    def test_client_exception_inside_worker_propagates(self):
        clients = make_clients(4)
        exploding = ExplodingClient(
            99,
            clients[0].dataset,
            batch_size=8,
            rng=np.random.default_rng(0),
        )
        clients[2] = exploding
        model = make_model()
        out = np.empty((4, model.num_parameters()))
        with start_thread_fleet(2) as fleet:
            collector = DistributedCollector(fleet.addresses)
            try:
                with pytest.raises(RuntimeError, match="client bug"):
                    collector.collect(clients, model, out)
            finally:
                collector.close()

    def test_failed_rows_empty_on_healthy_fleet(self):
        with start_thread_fleet(2) as fleet:
            clients = make_clients(4)
            model = make_model()
            out = np.empty((4, model.num_parameters()))
            collector = DistributedCollector(fleet.addresses)
            try:
                collector.collect(clients, model, out)
                assert collector.failed_rows == ()
            finally:
                collector.close()


class TestDemoteToDropped:
    def test_moves_active_to_dropped_and_renormalizes(self):
        plan = make_plan(0, 10, active=range(10))
        demoted = plan.demote_to_dropped([2, 5])
        assert demoted.num_active == 8
        assert np.array_equal(demoted.dropped, [2, 5])
        assert np.isclose(demoted.weights.sum(), 1.0)
        assert np.array_equal(demoted.cohort, plan.cohort)

    def test_demoting_everyone_rejected(self):
        plan = make_plan(0, 4, active=range(4))
        with pytest.raises(ValueError, match="at least one report"):
            plan.demote_to_dropped(range(4))

    def test_demoting_non_active_rejected(self):
        plan = make_plan(0, 6, active=[0, 1, 2], dropped=[3, 4, 5])
        with pytest.raises(ValueError, match="not active"):
            plan.demote_to_dropped([3])

    def test_empty_demotion_is_identity(self):
        plan = make_plan(0, 4, active=range(4))
        assert plan.demote_to_dropped([]) is plan


class TestConfigValidation:
    def test_distributed_requires_workers(self):
        with pytest.raises(ValueError, match="requires workers"):
            TrainingConfig(collect_backend="distributed").validate()

    def test_workers_only_for_distributed(self):
        with pytest.raises(ValueError, match="only meaningful"):
            TrainingConfig(
                collect_backend="thread", workers=["h:1"]
            ).validate()

    def test_bad_worker_spec_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            TrainingConfig(
                collect_backend="distributed", workers=["nocolon"]
            ).validate()

    def test_build_collector_distributed(self):
        collector = build_collector(1, "distributed", workers=["127.0.0.1:1"])
        assert isinstance(collector, DistributedCollector)
        with pytest.raises(ValueError, match="requires workers"):
            build_collector(1, "distributed")

    def test_duplicate_workers_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DistributedCollector(["h:1", "h:1"])


class TestWorkerProcessLifecycle:
    def test_worker_cli_spawns_and_serves(self):
        worker = spawn_worker_process()
        try:
            clients = make_clients(3)
            model = make_model()
            out = np.empty((3, model.num_parameters()))
            reference = np.empty_like(out)
            SequentialCollector().collect(make_clients(3), model, reference)
            collector = DistributedCollector([worker.address])
            try:
                collector.collect(clients, model, out)
            finally:
                collector.close()
            assert np.array_equal(reference, out)
        finally:
            worker.terminate()

    def test_worker_survives_caller_disconnect(self):
        worker = spawn_worker_process()
        try:
            model = make_model()
            for _ in range(2):  # two sequential callers, same worker
                clients = make_clients(3)
                out = np.empty((3, model.num_parameters()))
                collector = DistributedCollector([worker.address])
                try:
                    collector.collect(clients, model, out)
                finally:
                    collector.close()
                time.sleep(0.1)
            assert worker.alive
        finally:
            worker.terminate()


# ---------------------------------------------------------------------------
# gradient wire codecs
# ---------------------------------------------------------------------------


ALL_CODECS = ("fp16", "int8", "raw", "sign1bit", "topk")
LOSSY_CODECS = ("sign1bit", "int8", "fp16", "topk")
#: Shapes every codec must round-trip, including the degenerate ones and a
#: dim that is not a multiple of 8 (exercises sign1bit's packbits padding).
CODEC_SHAPES = [(0, 5), (3, 0), (0, 0), (1, 1), (4, 7), (2, 33)]


def _shard(shape, dtype=np.float64, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(shape) * scale).astype(dtype)


def _make_codec(name):
    # density=0.5 keeps topk lossy but non-trivial on tiny test shards.
    return build_codec(name, density=0.5) if name == "topk" else build_codec(name)


def _roundtrip(codec, shard):
    payload = codec.encode(shard, list(range(shard.shape[0])))
    out = np.empty_like(shard)
    codec.decode(payload, out)
    return out


class TestCodecRegistry:
    def test_registered_names(self):
        assert wire_codec_names() == ALL_CODECS

    def test_unknown_codec_is_value_error(self):
        with pytest.raises(ValueError, match="unknown wire codec"):
            build_codec("gzip")

    def test_flags(self):
        for name in ALL_CODECS:
            codec = _make_codec(name)
            assert codec.name == name
            assert codec.lossless == (name == "raw")
            assert codec.stateful == (name == "topk")

    def test_topk_density_validated(self):
        assert build_codec("topk", density=0.25).density == 0.25
        with pytest.raises(ValueError, match="density"):
            build_codec("topk", density=0.0)
        with pytest.raises(ValueError, match="density"):
            build_codec("topk", density=1.5)


class TestCodecRoundtrip:
    @pytest.mark.parametrize("name", ALL_CODECS)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", CODEC_SHAPES)
    def test_shapes_and_dtypes(self, name, dtype, shape):
        shard = _shard(shape, dtype=dtype, seed=3)
        out = _roundtrip(_make_codec(name), shard)
        assert out.shape == shard.shape and out.dtype == shard.dtype
        assert np.all(np.isfinite(out))
        if shard.size == 0:  # empty and zero-row shards round-trip exactly
            assert np.array_equal(out, shard)

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_wire_bytes_deterministic_across_instances(self, name):
        shard = _shard((3, 17), seed=9)
        ids = [4, 0, 11]
        assert _make_codec(name).encode(shard, ids) == _make_codec(name).encode(
            shard, ids
        )

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_non_contiguous_and_readonly_inputs(self, name):
        base = _shard((4, 22), seed=5)
        strided = base[:, ::2]  # non-C-contiguous view
        assert not strided.flags["C_CONTIGUOUS"]
        readonly = np.ascontiguousarray(strided)
        readonly.setflags(write=False)
        ids = list(range(4))
        codec = _make_codec(name)
        reference = codec.encode(np.array(strided, copy=True), ids)
        assert _make_codec(name).encode(strided, ids) == reference
        assert _make_codec(name).encode(readonly, ids) == reference

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_non_2d_or_non_float_refused(self, name):
        codec = _make_codec(name)
        with pytest.raises(CodecError, match="2-D"):
            codec.encode(np.zeros(6), [0])
        with pytest.raises(CodecError, match="float"):
            codec.encode(np.zeros((2, 3), dtype=np.int64), [0, 1])

    @pytest.mark.parametrize("name", LOSSY_CODECS)
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_lossy_codecs_refuse_non_finite(self, name, bad):
        shard = _shard((2, 8), seed=1)
        shard[1, 3] = bad
        with pytest.raises(CodecError, match="non-finite"):
            _make_codec(name).encode(shard, [0, 1])

    def test_raw_ships_non_finite_bit_exactly(self):
        shard = _shard((2, 8), seed=1)
        shard[0, 0] = np.nan
        shard[1, 5] = np.inf
        out = _roundtrip(build_codec("raw"), shard)
        assert np.array_equal(out, shard, equal_nan=True)
        assert build_codec("raw").encode(shard) == shard.tobytes()

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_decode_into_wrong_shape_refused(self, name):
        codec = _make_codec(name)
        payload = codec.encode(_shard((2, 6)), [0, 1])
        with pytest.raises(CodecError):
            _make_codec(name).decode(payload, np.empty((3, 6)))

    @pytest.mark.parametrize("name", ALL_CODECS)
    def test_truncated_payload_refused(self, name):
        codec = _make_codec(name)
        payload = codec.encode(_shard((2, 6)), [0, 1])
        with pytest.raises(CodecError):
            _make_codec(name).decode(payload[:-1], np.empty((2, 6)))
        with pytest.raises(CodecError):
            _make_codec(name).decode(b"", np.empty((2, 6)))

    def test_sign1bit_formula(self):
        shard = _shard((5, 19), seed=7)
        out = _roundtrip(build_codec("sign1bit"), shard)
        scales = np.mean(np.abs(shard), axis=1, dtype=np.float64).astype(np.float32)
        expected = np.where(shard >= 0.0, 1.0, -1.0) * scales[:, None].astype(
            shard.dtype
        )
        assert np.array_equal(out, expected)

    def test_int8_error_within_half_a_quantization_step(self):
        shard = _shard((6, 40), seed=11, scale=3.0)
        out = _roundtrip(build_codec("int8"), shard)
        scales = (np.max(np.abs(shard), axis=1) / 127.0).astype(np.float32)
        assert np.all(np.abs(out - shard) <= scales[:, None] * 0.5 + 1e-5)

    def test_int8_zero_rows_stay_zero(self):
        shard = np.zeros((3, 10))
        assert np.array_equal(_roundtrip(build_codec("int8"), shard), shard)

    def test_fp16_matches_float16_cast_exactly(self):
        shard = _shard((4, 12), seed=2)
        out = _roundtrip(build_codec("fp16"), shard)
        assert np.array_equal(out, shard.astype(np.float16).astype(shard.dtype))
        # fp16-representable values round-trip bit-exactly.
        exact = shard.astype(np.float16).astype(np.float64)
        assert np.array_equal(_roundtrip(build_codec("fp16"), exact), exact)

    def test_fp16_overflow_refused(self):
        shard = np.array([[1.0, 1e5]])
        with pytest.raises(CodecError, match="overflows"):
            build_codec("fp16").encode(shard, [0])

    def test_topk_requires_client_ids(self):
        codec = _make_codec("topk")
        with pytest.raises(CodecError, match="client ids"):
            codec.encode(_shard((2, 8)))
        with pytest.raises(CodecError, match="client ids"):
            codec.encode(_shard((2, 8)), [0])  # one id for two rows

    def test_topk_full_density_is_exact(self):
        shard = _shard((3, 9), seed=4)
        codec = build_codec("topk", density=1.0)
        out = _roundtrip(codec, shard)
        assert np.array_equal(out, shard)
        for residual in codec.state_dict().values():
            assert np.array_equal(residual, np.zeros(9))

    def test_topk_sparsity_bound(self):
        codec = build_codec("topk", density=1.0 / 16.0)
        shard = _shard((4, 100), seed=6)
        out = _roundtrip(codec, shard)
        k = 7  # ceil(100 / 16)
        assert np.all(np.count_nonzero(out, axis=1) <= k)

    def test_topk_stable_tie_break_prefers_low_indices(self):
        codec = build_codec("topk", density=0.5)
        out = _roundtrip(codec, np.ones((1, 4)))
        assert np.array_equal(out, [[1.0, 1.0, 0.0, 0.0]])

    def test_topk_error_feedback_telescopes(self):
        # Round 1 ships the two largest entries; round 2 (zero gradient)
        # ships the carried residual — the two rounds sum to the gradient.
        codec = build_codec("topk", density=0.5)
        gradient = np.array([[4.0, -3.0, 2.0, 1.0]])
        first = _roundtrip(codec, gradient)
        assert np.array_equal(first, [[4.0, -3.0, 0.0, 0.0]])
        assert np.array_equal(codec.state_dict()[0], [0.0, 0.0, 2.0, 1.0])
        second = _roundtrip(codec, np.zeros((1, 4)))
        assert np.array_equal(second, [[0.0, 0.0, 2.0, 1.0]])
        assert np.array_equal(first + second, gradient)
        assert np.array_equal(codec.state_dict()[0], np.zeros(4))

    def test_topk_state_dict_roundtrip_copies(self):
        codec = build_codec("topk", density=0.5)
        codec.encode(_shard((2, 8), seed=8), [3, 9])
        state = codec.state_dict()
        assert sorted(state) == [3, 9]
        state[3][...] = 99.0  # mutating the copy must not touch the codec
        assert not np.array_equal(codec.residuals[3], state[3])
        other = build_codec("topk", density=0.5)
        other.load_state_dict(state)
        assert np.array_equal(other.residuals[3], state[3])
        state[9][...] = -1.0
        assert not np.array_equal(other.residuals[9], state[9])

    def test_topk_discards_mismatched_residual(self):
        # A residual from another model shape (or dtype) must not poison
        # the stream: the codec restarts that client from zero.
        codec = build_codec("topk", density=1.0)
        codec.load_state_dict({0: np.ones(5)})
        shard = _shard((1, 8), seed=10)
        out = _roundtrip(codec, shard)
        assert np.array_equal(out, shard)


# ---------------------------------------------------------------------------
# codec negotiation + wire compatibility
# ---------------------------------------------------------------------------


class TestCodecNegotiation:
    def test_welcome_echoes_negotiated_codec(self):
        with start_thread_fleet(1) as fleet:
            header = hello_header(model_signature(make_model()), wire_codec="int8")
            msg, reply, _ = _raw_hello(fleet.addresses[0], header)
            assert msg == MSG_WELCOME
            assert reply["wire_codec"] == "int8"

    def test_unknown_codec_refused_with_supported_list(self):
        with start_thread_fleet(1) as fleet:
            header = hello_header(model_signature(make_model()), wire_codec="gzip")
            msg, reply, _ = _raw_hello(fleet.addresses[0], header)
            assert msg == MSG_ERROR
            assert "unsupported wire codec 'gzip'" in reply["error"]
            for name in ALL_CODECS:
                assert name in reply["error"]

    def test_restricted_worker_refuses_connection(self):
        with start_thread_fleet(1, supported_codecs=("raw",)) as fleet:
            conn = WorkerConnection(fleet.addresses[0], wire_codec="sign1bit")
            with pytest.raises(HandshakeError, match="unsupported wire codec"):
                conn.connect(make_model())
            # The same worker still serves raw callers.
            raw_conn = WorkerConnection(fleet.addresses[0])
            raw_conn.connect(make_model())
            raw_conn.close()

    def test_collector_surfaces_codec_refusal(self):
        with start_thread_fleet(1, supported_codecs=("raw",)) as fleet:
            collector = DistributedCollector(
                fleet.addresses, wire_codec="sign1bit", connect_timeout=2.0
            )
            clients = make_clients(2)
            model = make_model()
            out = np.empty((2, model.num_parameters()))
            with pytest.raises(TransportError, match="last refusal") as excinfo:
                collector.collect(clients, model, out)
            collector.close()
            assert "unsupported wire codec" in str(excinfo.value)


class TestWireCompatibility:
    def _begin_manual_round(self, conn, clients, model):
        """Drive one round by hand up to the SHARD announcement."""
        ids = list(range(len(clients)))
        conn.connect(model)
        conn.setup(model, ids, clients)
        conn.begin_round(
            encode_state_dict(model.state_dict()),
            ids,
            np.float64,
            model.num_parameters(),
        )
        return conn._channel

    def test_raw_wire_is_byte_identical_to_pre_codec_protocol(self):
        # The compatibility contract of the default codec: the SHARD
        # announcement carries exactly the pre-codec header fields (no
        # "codec" key) and the gradient frame is the shard's bytes,
        # verbatim — a pre-codec capture of this conversation would match
        # byte for byte.
        n = 3
        model = make_model()
        reference = np.empty((n, model.num_parameters()))
        SequentialCollector().collect(make_clients(n), model, reference)
        with start_thread_fleet(1) as fleet:
            conn = WorkerConnection(fleet.addresses[0])
            channel = self._begin_manual_round(conn, make_clients(n), model)
            try:
                header, _ = channel.expect(MSG_SHARD)
                assert set(header) == {"rows", "nbytes"}
                assert header["rows"] == n
                assert header["nbytes"] == reference.nbytes
                assert channel.recv_raw() == reference.tobytes()
                channel.expect(MSG_TRAILER)
            finally:
                conn.drop()

    def test_encoded_shard_announces_its_codec(self):
        n = 3
        model = make_model()
        reference = np.empty((n, model.num_parameters()))
        SequentialCollector().collect(make_clients(n), model, reference)
        with start_thread_fleet(1) as fleet:
            conn = WorkerConnection(fleet.addresses[0], wire_codec="sign1bit")
            channel = self._begin_manual_round(conn, make_clients(n), model)
            try:
                header, _ = channel.expect(MSG_SHARD)
                assert set(header) == {"rows", "nbytes", "codec"}
                assert header["codec"] == "sign1bit"
                payload = channel.recv_raw()
                assert len(payload) == header["nbytes"]
                assert len(payload) < reference.nbytes / 16
                out = np.empty_like(reference)
                build_codec("sign1bit").decode(payload, out)
                expected = np.empty_like(reference)
                build_codec("sign1bit").decode(
                    build_codec("sign1bit").encode(reference), expected
                )
                assert np.array_equal(out, expected)
                channel.expect(MSG_TRAILER)
            finally:
                conn.drop()


# ---------------------------------------------------------------------------
# codecs end to end
# ---------------------------------------------------------------------------


def _codec_bench_bytes(wire_codec):
    """Steady-state received bytes for one collect round under a codec."""
    with start_thread_fleet(2) as fleet:
        clients = make_clients(8)
        model = make_model()
        out = np.empty((8, model.num_parameters()))
        collector = DistributedCollector(fleet.addresses, wire_codec=wire_codec)
        try:
            collector.collect(clients, model, out)  # handshake + setup round
            collector.collect(clients, model, out)  # steady state
            _, received = collector.last_round_bytes
        finally:
            collector.close()
    return received


class TestCodecEndToEnd:
    @pytest.fixture(scope="class")
    def signguard_runs(self):
        base = dict(
            num_clients=10,
            seed=7,
            data=DataConfig(dataset="mnist_like", num_train=200, num_test=50),
            attack=AttackConfig(name="sign_flip", byzantine_fraction=0.2),
            defense=DefenseConfig(name="signguard"),
        )
        training = dict(model="mlp", rounds=3, batch_size=8)
        sequential = run_experiment(
            ExperimentConfig(
                training=TrainingConfig(collect_backend="sequential", **training),
                **base,
            )
        )
        return base, training, sequential

    def _run_with_codec(self, signguard_runs, wire_codec):
        base, training, sequential = signguard_runs
        with start_thread_fleet(2) as fleet:
            distributed = run_experiment(
                ExperimentConfig(
                    training=TrainingConfig(
                        collect_backend="distributed",
                        workers=fleet.addresses,
                        wire_codec=wire_codec,
                        **training,
                    ),
                    **base,
                )
            )
        return sequential, distributed

    def test_raw_is_bit_identical_under_attack(self, signguard_runs):
        sequential, distributed = self._run_with_codec(signguard_runs, "raw")
        assert [r.train_loss for r in sequential.rounds] == [
            r.train_loss for r in distributed.rounds
        ]
        assert [r.test_accuracy for r in sequential.rounds] == [
            r.test_accuracy for r in distributed.rounds
        ]

    @pytest.mark.parametrize("wire_codec", LOSSY_CODECS)
    def test_lossy_codecs_track_the_uncompressed_defense(
        self, signguard_runs, wire_codec
    ):
        # Compression must not break SignGuard: the compressed run's final
        # accuracy stays within a few points of the uncompressed run on
        # the same attacked federation.
        sequential, distributed = self._run_with_codec(signguard_runs, wire_codec)
        assert all(np.isfinite(r.train_loss) for r in distributed.rounds)
        delta = abs(
            sequential.rounds[-1].test_accuracy
            - distributed.rounds[-1].test_accuracy
        )
        assert delta <= 0.15

    def test_bytes_on_wire_shrink_as_promised(self):
        raw = _codec_bench_bytes("raw")
        sign1bit = _codec_bench_bytes("sign1bit")
        int8 = _codec_bench_bytes("int8")
        # The ISSUE's acceptance floors: >= 16x for sign1bit and >= 4x for
        # int8 on the shard traffic; the fixed per-round overhead (message
        # envelopes, pickled trailers with RNG states) is shared by every
        # codec, so allow it on top of the ratio.
        overhead = 8 * 1024
        assert sign1bit <= raw / 16 + overhead
        assert int8 <= raw / 4 + overhead
        assert sign1bit < int8 < raw


class TestTopkCheckpointResume:
    def test_codec_states_survive_the_checkpoint_file(self, tmp_path):
        from repro.fl.checkpoint import load_checkpoint, save_checkpoint

        with start_thread_fleet(2) as fleet:
            simulation = build_simulation(
                DistributedCollector(fleet.addresses, wire_codec="topk")
            )
            try:
                simulation.run(2)
                checkpoint = simulation.capture_checkpoint()
            finally:
                simulation.close()
        assert sorted(checkpoint.codec_states) == list(range(8))
        path = tmp_path / "topk.ckpt"
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert sorted(loaded.codec_states) == sorted(checkpoint.codec_states)
        for client_id, residual in checkpoint.codec_states.items():
            assert np.array_equal(loaded.codec_states[client_id], residual)

    def test_topk_resume_onto_a_new_fleet_is_bit_identical(self):
        # The stateful-codec acceptance story: the error-feedback residuals
        # ride the checkpoint, so a topk run restored onto a brand-new
        # fleet continues bit-identically to the run that never stopped.
        with start_thread_fleet(2) as fleet:
            simulation = build_simulation(
                DistributedCollector(fleet.addresses, wire_codec="topk")
            )
            try:
                simulation.run(2)
                checkpoint = simulation.capture_checkpoint()
                simulation.run(4, start_round=2)
                reference = simulation.recorder.to_dict()
                reference_state = simulation.model.state_dict()
            finally:
                simulation.close()
        assert sorted(checkpoint.codec_states) == list(range(8))

        with start_thread_fleet(2) as fleet:
            replacement = build_simulation(
                DistributedCollector(fleet.addresses, wire_codec="topk")
            )
            try:
                assert replacement.restore_checkpoint(checkpoint) == 2
                replacement.run(4, start_round=2)
                resumed = replacement.recorder.to_dict()
                resumed_state = replacement.model.state_dict()
            finally:
                replacement.close()
        assert resumed == reference
        for name in reference_state:
            assert np.array_equal(resumed_state[name], reference_state[name])
