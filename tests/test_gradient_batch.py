"""Tests for the round-level GradientBatch compute cache."""

import numpy as np
import pytest

from repro.aggregators.base import ServerContext
from repro.utils.batch import GradientBatch, as_batch, resolve_batch


@pytest.fixture
def matrix(rng):
    return rng.normal(size=(12, 40))


class TestConstruction:
    def test_wrap_is_idempotent(self, matrix):
        batch = GradientBatch.wrap(matrix)
        assert GradientBatch.wrap(batch) is batch
        assert as_batch(batch) is batch

    def test_validates_input(self):
        bad = np.ones((2, 3))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            GradientBatch(bad)

    def test_preserves_float32(self, matrix):
        batch = GradientBatch(matrix.astype(np.float32))
        assert batch.dtype == np.float32
        assert batch.norms().dtype == np.float32

    def test_coerces_non_float_to_float64(self):
        batch = GradientBatch(np.ones((2, 3), dtype=int))
        assert batch.dtype == np.float64

    def test_shape_helpers(self, matrix):
        batch = GradientBatch(matrix)
        assert batch.n_clients == 12
        assert batch.dim == 40
        assert batch.shape == (12, 40)
        assert len(batch) == 12
        np.testing.assert_array_equal(np.asarray(batch), matrix)


class TestDerivedQuantities:
    def test_norms_match_linalg(self, matrix):
        batch = GradientBatch(matrix)
        np.testing.assert_allclose(
            batch.norms(), np.linalg.norm(matrix, axis=1), rtol=1e-13
        )

    def test_median_norm(self, matrix):
        batch = GradientBatch(matrix)
        assert batch.median_norm() == pytest.approx(
            float(np.median(np.linalg.norm(matrix, axis=1))), rel=1e-13
        )

    def test_sq_norms_match_sum_of_squares(self, matrix):
        batch = GradientBatch(matrix)
        np.testing.assert_array_equal(batch.sq_norms(), np.sum(matrix**2, axis=1))

    def test_gram_matches_matmul(self, matrix):
        batch = GradientBatch(matrix)
        np.testing.assert_array_equal(batch.gram(), matrix @ matrix.T)

    def test_sq_distances_match_quadratic_form(self, matrix):
        batch = GradientBatch(matrix)
        expected = np.sum((matrix[:, None, :] - matrix[None, :, :]) ** 2, axis=-1)
        np.testing.assert_allclose(batch.sq_distances(), expected, atol=1e-9)
        assert np.all(np.diag(batch.sq_distances()) == 0.0)

    def test_distances_are_sqrt_of_sq_distances(self, matrix):
        batch = GradientBatch(matrix)
        np.testing.assert_array_equal(batch.distances(), np.sqrt(batch.sq_distances()))

    def test_cosine_similarities(self, matrix):
        batch = GradientBatch(matrix)
        normalized = matrix / np.linalg.norm(matrix, axis=1)[:, None]
        np.testing.assert_allclose(
            batch.cosine_similarities(), normalized @ normalized.T, atol=1e-12
        )

    def test_sign_counts(self):
        batch = GradientBatch(np.array([[1.0, -2.0, 0.0, 3.0]]))
        np.testing.assert_array_equal(batch.sign_counts(), [[2, 1, 1]])

    def test_sign_counts_with_tolerance(self):
        batch = GradientBatch(np.array([[1e-6, -1e-6, 1.0]]))
        np.testing.assert_array_equal(batch.sign_counts(1e-3), [[1, 2, 0]])
        # Cached per tolerance value.
        assert batch.compute_count("sign_counts") == 1
        batch.sign_counts(1e-3)
        assert batch.compute_count("sign_counts") == 1


class TestMemoization:
    def test_each_quantity_computed_once(self, matrix):
        batch = GradientBatch(matrix)
        for _ in range(3):
            batch.norms()
            batch.sq_norms()
            batch.gram()
            batch.sq_distances()
            batch.distances()
        for name in ("norms", "sq_norms", "gram", "sq_distances", "distances"):
            assert batch.compute_count(name) == 1

    def test_laziness(self, matrix):
        batch = GradientBatch(matrix)
        assert batch.compute_counts == {}
        batch.norms()
        assert batch.compute_counts == {"norms": 1}


class TestResolveBatch:
    def test_reuses_context_batch_for_same_matrix(self, matrix):
        batch = GradientBatch(matrix)
        context = ServerContext(batch=batch)
        assert resolve_batch(batch.matrix, context) is batch

    def test_rewraps_for_different_matrix(self, matrix, rng):
        batch = GradientBatch(matrix)
        context = ServerContext(batch=batch)
        other = rng.normal(size=(5, 40))
        resolved = resolve_batch(other, context)
        assert resolved is not batch
        np.testing.assert_array_equal(resolved.matrix, other)

    def test_handles_missing_context(self, matrix):
        resolved = resolve_batch(matrix, None)
        np.testing.assert_array_equal(resolved.matrix, matrix)

    def test_aggregator_call_populates_context(self, matrix):
        from repro.aggregators.krum import KrumAggregator

        context = ServerContext(num_byzantine_hint=2)
        KrumAggregator()(matrix, context)
        assert isinstance(context.batch, GradientBatch)
        # Krum consumed the cached distance matrix exactly once.
        assert context.batch.compute_count("sq_distances") == 1
