"""Tests for client partitioning schemes."""

import numpy as np
import pytest

from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    partition_dataset,
    partition_skew,
    sort_and_partition,
)
from repro.data.synthetic_images import make_mnist_like


@pytest.fixture(scope="module")
def dataset():
    return make_mnist_like(num_train=600, num_test=10, rng=0).train


def assert_valid_partition(partitions, total):
    combined = np.concatenate(partitions)
    assert len(combined) == total
    assert len(np.unique(combined)) == total


class TestIIDPartition:
    def test_covers_dataset_without_overlap(self, dataset):
        partitions = iid_partition(dataset, 10, rng=0)
        assert len(partitions) == 10
        assert_valid_partition(partitions, len(dataset))

    def test_sizes_are_balanced(self, dataset):
        partitions = iid_partition(dataset, 7, rng=0)
        sizes = [len(p) for p in partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_low_label_skew(self, dataset):
        partitions = iid_partition(dataset, 10, rng=0)
        assert partition_skew(dataset, partitions) < 0.25

    def test_more_clients_than_samples_rejected(self, dataset):
        with pytest.raises(ValueError):
            iid_partition(dataset.subset(np.arange(3)), 10)


class TestSortAndPartition:
    def test_covers_dataset_without_overlap(self, dataset):
        partitions = sort_and_partition(dataset, 10, iid_fraction=0.5, rng=0)
        assert_valid_partition(partitions, len(dataset))

    def test_skew_increases_as_s_decreases(self, dataset):
        """The paper's s parameter: smaller s -> more skewed clients."""
        skews = []
        for s in (0.8, 0.5, 0.3, 0.0):
            partitions = sort_and_partition(dataset, 10, iid_fraction=s, rng=0)
            skews.append(partition_skew(dataset, partitions))
        assert skews == sorted(skews)

    def test_s_equal_one_is_nearly_iid(self, dataset):
        partitions = sort_and_partition(dataset, 10, iid_fraction=1.0, rng=0)
        assert partition_skew(dataset, partitions) < 0.25

    def test_invalid_fraction_rejected(self, dataset):
        with pytest.raises(ValueError):
            sort_and_partition(dataset, 10, iid_fraction=1.5)


class TestDirichletPartition:
    def test_covers_dataset_without_overlap(self, dataset):
        partitions = dirichlet_partition(dataset, 10, alpha=0.5, rng=0)
        assert_valid_partition(partitions, len(dataset))

    def test_small_alpha_is_more_skewed(self, dataset):
        skew_small = partition_skew(
            dataset, dirichlet_partition(dataset, 10, alpha=0.1, rng=0)
        )
        skew_large = partition_skew(
            dataset, dirichlet_partition(dataset, 10, alpha=100.0, rng=0)
        )
        assert skew_small > skew_large

    def test_every_client_gets_min_samples(self, dataset):
        partitions = dirichlet_partition(dataset, 10, alpha=0.3, min_samples=5, rng=0)
        assert min(len(p) for p in partitions) >= 5

    def test_invalid_alpha_rejected(self, dataset):
        with pytest.raises(ValueError):
            dirichlet_partition(dataset, 10, alpha=0.0)


class TestPartitionDispatch:
    @pytest.mark.parametrize("scheme", ["iid", "sort_and_partition", "dirichlet"])
    def test_known_schemes(self, dataset, scheme):
        partitions = partition_dataset(dataset, 5, scheme=scheme, rng=0)
        assert_valid_partition(partitions, len(dataset))

    def test_unknown_scheme_rejected(self, dataset):
        with pytest.raises(ValueError):
            partition_dataset(dataset, 5, scheme="by_zipcode")
