"""Tests for mean, trimmed-mean, median, geometric-median aggregation and norms."""

import numpy as np
import pytest

from repro.aggregators import (
    CoordinateMedianAggregator,
    GeometricMedianAggregator,
    MeanAggregator,
    TrimmedMeanAggregator,
    build_aggregator,
    clip_gradients_to_norm,
    geometric_median,
    median_norm,
)
from repro.aggregators.base import ServerContext


@pytest.fixture
def context(rng):
    return ServerContext.make(rng=rng, num_byzantine_hint=4)


class TestMean:
    def test_matches_numpy_mean(self, benign_gradients, context):
        result = MeanAggregator()(benign_gradients, context)
        np.testing.assert_allclose(result.gradient, benign_gradients.mean(axis=0))
        assert result.num_selected == len(benign_gradients)

    def test_vector_input_promoted(self, context):
        result = MeanAggregator()(np.ones(5), context)
        np.testing.assert_array_equal(result.gradient, np.ones(5))

    def test_default_context_created_when_missing(self, benign_gradients):
        result = MeanAggregator()(benign_gradients)
        assert result.gradient.shape == (benign_gradients.shape[1],)


class TestTrimmedMean:
    def test_removes_extreme_values(self, context):
        gradients = np.vstack(
            [np.ones((8, 3)), 100.0 * np.ones((1, 3)), -100.0 * np.ones((1, 3))]
        )
        result = TrimmedMeanAggregator(trim=1)(gradients, context)
        np.testing.assert_allclose(result.gradient, 1.0)

    def test_uses_byzantine_hint_when_trim_not_given(self, benign_gradients, context):
        result = TrimmedMeanAggregator()(benign_gradients, context)
        assert result.info["trim"] == 4

    def test_trim_zero_equals_mean(self, benign_gradients, context):
        result = TrimmedMeanAggregator(trim=0)(benign_gradients, context)
        np.testing.assert_allclose(result.gradient, benign_gradients.mean(axis=0))

    def test_trim_capped_to_keep_at_least_one_row(self, context):
        gradients = np.arange(6, dtype=float).reshape(3, 2)
        result = TrimmedMeanAggregator(trim=10)(gradients, context)
        assert np.all(np.isfinite(result.gradient))

    def test_negative_trim_rejected(self):
        with pytest.raises(ValueError):
            TrimmedMeanAggregator(trim=-1)


class TestMedian:
    def test_matches_numpy_median(self, benign_gradients, context):
        result = CoordinateMedianAggregator()(benign_gradients, context)
        np.testing.assert_allclose(result.gradient, np.median(benign_gradients, axis=0))

    def test_robust_to_one_huge_outlier(self, context):
        gradients = np.vstack([np.zeros((9, 4)), 1e9 * np.ones((1, 4))])
        result = CoordinateMedianAggregator()(gradients, context)
        np.testing.assert_allclose(result.gradient, 0.0)


class TestGeometricMedian:
    def test_collinear_points(self):
        points = np.array([[0.0], [1.0], [10.0]])
        estimate = geometric_median(points)
        assert estimate[0] == pytest.approx(1.0, abs=1e-3)

    def test_robust_to_outlier(self, rng, context):
        cluster = rng.normal(0, 0.1, size=(15, 3))
        outlier = 1000.0 * np.ones((1, 3))
        result = GeometricMedianAggregator()(np.vstack([cluster, outlier]), context)
        assert np.linalg.norm(result.gradient) < 1.0

    def test_single_point_is_fixed_point(self, context):
        point = np.array([[3.0, -2.0]])
        result = GeometricMedianAggregator()(point, context)
        np.testing.assert_allclose(result.gradient, point[0], atol=1e-6)

    def test_exact_duplicate_rows_stay_finite(self):
        # Regression: a duplicated majority point puts the estimate exactly
        # on a data point mid-iteration.  The scaled distance floor keeps
        # the Weiszfeld weights finite instead of dividing by zero, and
        # the estimate lands on the majority point.
        point = np.array([2.0, -1.0, 0.5])
        points = np.vstack([np.tile(point, (6, 1)), [[10.0, 10.0, 10.0]]])
        estimate = geometric_median(points)
        assert np.all(np.isfinite(estimate))
        np.testing.assert_allclose(estimate, point, atol=1e-4)

    def test_all_rows_identical(self):
        points = np.tile([1.0, 2.0], (5, 1))
        np.testing.assert_allclose(
            geometric_median(points), [1.0, 2.0], atol=1e-8
        )

    def test_scale_invariance(self):
        # The distance floor is scaled to the data (median row norm), so
        # huge-magnitude gradients converge exactly like unit-scale ones.
        rng = np.random.default_rng(0)
        points = rng.normal(size=(20, 4))
        small = geometric_median(points)
        large = geometric_median(points * 1e6)
        np.testing.assert_allclose(large, small * 1e6, rtol=1e-6)


class TestNormUtilities:
    def test_median_norm(self):
        gradients = np.diag([3.0, 4.0, 5.0])
        assert median_norm(gradients) == pytest.approx(4.0)

    def test_clipping_reduces_large_norms_only(self):
        gradients = np.array([[3.0, 4.0], [0.3, 0.4]])
        clipped = clip_gradients_to_norm(gradients, 1.0)
        assert np.linalg.norm(clipped[0]) == pytest.approx(1.0)
        np.testing.assert_allclose(clipped[1], gradients[1])

    def test_zero_gradient_unchanged(self):
        clipped = clip_gradients_to_norm(np.zeros((2, 3)), 1.0)
        np.testing.assert_array_equal(clipped, 0.0)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            clip_gradients_to_norm(np.ones((1, 2)), -1.0)


class TestAggregatorFactory:
    @pytest.mark.parametrize(
        "name",
        [
            "mean",
            "trimmed_mean",
            "trmean",
            "median",
            "geomed",
            "krum",
            "multi_krum",
            "bulyan",
            "dnc",
            "signsgd",
            "centered_clipping",
            "fltrust",
            "signguard",
            "signguard_sim",
            "signguard_dist",
        ],
    )
    def test_build_every_registered_rule(self, name, benign_gradients, context):
        aggregator = build_aggregator(name)
        result = aggregator(benign_gradients, context)
        assert result.gradient.shape == (benign_gradients.shape[1],)
        assert np.all(np.isfinite(result.gradient))

    def test_unknown_rule_rejected(self):
        with pytest.raises(KeyError):
            build_aggregator("blockchain")

    def test_params_forwarded(self):
        aggregator = build_aggregator("trimmed_mean", {"trim": 2})
        assert aggregator.trim == 2
