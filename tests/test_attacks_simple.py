"""Tests for the simple model-poisoning attacks and the attack interface."""

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_REGISTRY,
    AttackContext,
    NoAttack,
    NoiseAttack,
    RandomAttack,
    ReverseScalingAttack,
    SignFlipAttack,
    build_attack,
)
from repro.attacks.labelflip import LabelFlipAttack


@pytest.fixture
def context(rng):
    return AttackContext.make(num_clients=20, byzantine_indices=np.arange(4), rng=rng)


class TestAttackInterface:
    def test_apply_only_replaces_byzantine_rows(self, benign_gradients, context):
        submitted = SignFlipAttack().apply(benign_gradients, context)
        np.testing.assert_array_equal(submitted[4:], benign_gradients[4:])
        np.testing.assert_array_equal(submitted[:4], -benign_gradients[:4])

    def test_apply_with_no_byzantine_clients_is_identity(self, benign_gradients, rng):
        context = AttackContext.make(num_clients=20, byzantine_indices=[], rng=rng)
        submitted = RandomAttack().apply(benign_gradients, context)
        np.testing.assert_array_equal(submitted, benign_gradients)

    def test_apply_rejects_out_of_range_indices(self, benign_gradients, rng):
        context = AttackContext.make(num_clients=20, byzantine_indices=[25], rng=rng)
        with pytest.raises(ValueError):
            NoAttack().apply(benign_gradients, context)

    def test_benign_rows_helper(self, benign_gradients, context):
        benign = NoAttack().benign_rows(benign_gradients, context)
        assert benign.shape == (16, benign_gradients.shape[1])

    def test_context_num_byzantine(self, context):
        assert context.num_byzantine == 4


class TestNoAttack:
    def test_everything_unchanged(self, benign_gradients, context):
        submitted = NoAttack().apply(benign_gradients, context)
        np.testing.assert_array_equal(submitted, benign_gradients)


class TestRandomAttack:
    def test_statistics_match_parameters(self, benign_gradients, context):
        attack = RandomAttack(mean=0.0, std=0.5)
        malicious = attack.craft(benign_gradients, context)
        assert malicious.shape == (4, benign_gradients.shape[1])
        assert abs(malicious.mean()) < 0.1
        assert abs(malicious.std() - 0.5) < 0.1

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            RandomAttack(std=-1.0)


class TestNoiseAttack:
    def test_centered_on_own_gradient(self, benign_gradients, context):
        attack = NoiseAttack(std=0.1)
        malicious = attack.craft(benign_gradients, context)
        deviation = malicious - benign_gradients[:4]
        assert abs(deviation.mean()) < 0.05
        assert abs(deviation.std() - 0.1) < 0.05


class TestSignFlip:
    def test_exact_negation(self, benign_gradients, context):
        malicious = SignFlipAttack().craft(benign_gradients, context)
        np.testing.assert_array_equal(malicious, -benign_gradients[:4])


class TestReverseScaling:
    def test_scaled_negation(self, benign_gradients, context):
        malicious = ReverseScalingAttack(scale=10.0).craft(benign_gradients, context)
        np.testing.assert_allclose(malicious, -10.0 * benign_gradients[:4])

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ReverseScalingAttack(scale=0.0)


class TestLabelFlipAttack:
    def test_marks_data_poisoning_and_keeps_gradients(self, benign_gradients, context):
        attack = LabelFlipAttack()
        assert attack.poisons_data is True
        submitted = attack.apply(benign_gradients, context)
        np.testing.assert_array_equal(submitted, benign_gradients)


class TestAttackRegistry:
    @pytest.mark.parametrize(
        "name",
        [
            "no_attack",
            "random",
            "noise",
            "sign_flip",
            "label_flip",
            "lie",
            "byzmean",
            "min_max",
            "min_sum",
            "reverse_scaling",
            "time_varying",
            "alie",  # alias
        ],
    )
    def test_build_all_registered_attacks(self, name):
        attack = build_attack(name)
        assert hasattr(attack, "craft")

    def test_params_forwarded(self):
        attack = build_attack("lie", {"z": 1.0})
        assert attack.z == 1.0

    def test_unknown_attack_rejected(self):
        with pytest.raises(KeyError):
            build_attack("gradient_inversion")

    def test_registry_has_expected_size(self):
        assert len(ATTACK_REGISTRY) >= 11
