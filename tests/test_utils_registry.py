"""Tests for the name -> factory registry."""

import pytest

from repro.utils.registry import Registry


@pytest.fixture
def registry():
    reg = Registry("widgets")

    @reg.register("alpha")
    class Alpha:
        def __init__(self, value=1):
            self.value = value

    reg.register("beta", lambda: "beta-instance")
    return reg


class TestRegistry:
    def test_create_by_name(self, registry):
        assert registry.create("alpha").value == 1

    def test_create_with_kwargs(self, registry):
        assert registry.create("alpha", value=5).value == 5

    def test_name_normalization(self, registry):
        assert "ALPHA" in registry
        assert "Alpha " in registry
        assert registry.create("Alpha").value == 1

    def test_dash_and_underscore_equivalent(self):
        reg = Registry("x")
        reg.register("multi_krum", lambda: 1)
        assert "multi-krum" in reg

    def test_unknown_name_lists_known(self, registry):
        with pytest.raises(KeyError, match="alpha"):
            registry.get("gamma")

    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.register("alpha", lambda: None)

    def test_alias(self, registry):
        registry.register_alias("first", "alpha")
        assert registry.create("first").value == 1

    def test_alias_of_unknown_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.register_alias("x", "does_not_exist")

    def test_alias_collision_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.register_alias("beta", "alpha")

    def test_names_sorted(self, registry):
        assert registry.names() == ["alpha", "beta"]

    def test_len_and_iter(self, registry):
        assert len(registry) == 2
        assert list(registry) == ["alpha", "beta"]
