"""Tests for batch loading and label poisoning."""

import numpy as np
import pytest

from repro.data.dataloader import BatchLoader
from repro.data.poisoning import flip_labels, flip_labels_pairwise, poison_fraction


class TestBatchLoader:
    def test_sample_shapes(self, tiny_image_dataset):
        loader = BatchLoader(tiny_image_dataset, batch_size=8, rng=0)
        inputs, labels = loader.sample()
        assert inputs.shape == (8, 1, 6, 6)
        assert labels.shape == (8,)

    def test_batch_larger_than_dataset_is_capped(self, tiny_image_dataset):
        loader = BatchLoader(tiny_image_dataset, batch_size=1000, rng=0)
        inputs, _ = loader.sample()
        assert len(inputs) == len(tiny_image_dataset)

    def test_epoch_covers_every_sample_once(self, tiny_image_dataset):
        loader = BatchLoader(tiny_image_dataset, batch_size=7, rng=0)
        seen = sum((len(labels) for _, labels in loader.epoch()), 0)
        assert seen == len(tiny_image_dataset)

    def test_len_is_number_of_batches(self, tiny_image_dataset):
        assert len(BatchLoader(tiny_image_dataset, batch_size=7, rng=0)) == 9

    def test_sampling_is_seed_deterministic(self, tiny_image_dataset):
        a = BatchLoader(tiny_image_dataset, 8, rng=5).sample()[1]
        b = BatchLoader(tiny_image_dataset, 8, rng=5).sample()[1]
        np.testing.assert_array_equal(a, b)

    def test_empty_dataset_rejected(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            BatchLoader(tiny_image_dataset.subset([]), 4)

    def test_invalid_batch_size_rejected(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            BatchLoader(tiny_image_dataset, 0)


class TestLabelPoisoning:
    def test_flip_labels_rule(self, tiny_image_dataset):
        flipped = flip_labels(tiny_image_dataset)
        np.testing.assert_array_equal(flipped.labels, 2 - tiny_image_dataset.labels)

    def test_flip_is_involution(self, tiny_image_dataset):
        twice = flip_labels(flip_labels(tiny_image_dataset))
        np.testing.assert_array_equal(twice.labels, tiny_image_dataset.labels)

    def test_inputs_unchanged(self, tiny_image_dataset):
        flipped = flip_labels(tiny_image_dataset)
        np.testing.assert_array_equal(flipped.inputs, tiny_image_dataset.inputs)

    def test_pairwise_flip(self, tiny_image_dataset):
        poisoned = flip_labels_pairwise(tiny_image_dataset, source=0, target=2)
        assert not np.any(poisoned.labels == 0)
        assert np.sum(poisoned.labels == 2) == 40

    def test_pairwise_flip_validates_classes(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            flip_labels_pairwise(tiny_image_dataset, source=0, target=9)

    def test_poison_fraction(self, tiny_image_dataset):
        flipped = flip_labels(tiny_image_dataset)
        fraction = poison_fraction(tiny_image_dataset, flipped)
        # Class 1 maps to itself (C-1-1 == 1 for C == 3), so 2/3 change.
        assert fraction == pytest.approx(2 / 3)

    def test_poison_fraction_length_mismatch(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            poison_fraction(tiny_image_dataset, tiny_image_dataset.subset(np.arange(5)))
