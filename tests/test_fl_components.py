"""Tests for federated clients, the server, and evaluation metrics."""

import numpy as np
import pytest

from repro.aggregators import MeanAggregator
from repro.core import SignGuard
from repro.fl.client import BenignClient, ByzantineClient
from repro.fl.metrics import attack_impact, evaluate_model, selection_confusion
from repro.fl.server import FederatedServer
from repro.nn.models import build_model
from repro.nn.vectorize import count_parameters, get_flat_parameters


@pytest.fixture
def spec(tiny_image_dataset):
    return tiny_image_dataset.spec


@pytest.fixture
def model(spec):
    return build_model("mlp", spec, rng=0, params={"hidden_dims": (8,)})


class TestBenignClient:
    def test_gradient_has_model_dimension(self, tiny_image_dataset, model):
        client = BenignClient(0, tiny_image_dataset, batch_size=8, rng=0)
        gradient = client.compute_gradient(model)
        assert gradient.shape == (count_parameters(model),)
        assert np.all(np.isfinite(gradient))
        assert np.isfinite(client.last_loss)

    def test_model_parameters_unchanged_by_gradient_computation(
        self, tiny_image_dataset, model
    ):
        before = get_flat_parameters(model).copy()
        BenignClient(0, tiny_image_dataset, batch_size=8, rng=0).compute_gradient(model)
        np.testing.assert_array_equal(get_flat_parameters(model), before)

    def test_local_iterations_average_gradients(self, tiny_image_dataset, model):
        client = BenignClient(
            0, tiny_image_dataset, batch_size=8, local_iterations=3, rng=0
        )
        gradient = client.compute_gradient(model)
        assert np.all(np.isfinite(gradient))

    def test_num_samples(self, tiny_image_dataset):
        assert BenignClient(0, tiny_image_dataset, rng=0).num_samples == 60

    def test_invalid_local_iterations(self, tiny_image_dataset):
        with pytest.raises(ValueError):
            BenignClient(0, tiny_image_dataset, local_iterations=0)


class TestByzantineClient:
    def test_label_poisoning_flips_local_labels(self, tiny_image_dataset):
        client = ByzantineClient(1, tiny_image_dataset, poison_labels=True, rng=0)
        np.testing.assert_array_equal(
            client.dataset.labels, 2 - tiny_image_dataset.labels
        )
        assert client.is_byzantine

    def test_without_poisoning_data_is_untouched(self, tiny_image_dataset):
        client = ByzantineClient(1, tiny_image_dataset, poison_labels=False, rng=0)
        np.testing.assert_array_equal(client.dataset.labels, tiny_image_dataset.labels)

    def test_poisoned_gradient_differs_from_honest(self, tiny_image_dataset, model):
        honest = BenignClient(0, tiny_image_dataset, batch_size=60, rng=0)
        poisoned = ByzantineClient(
            0, tiny_image_dataset, batch_size=60, poison_labels=True, rng=0
        )
        assert not np.allclose(
            honest.compute_gradient(model), poisoned.compute_gradient(model)
        )


class TestFederatedServer:
    def test_aggregate_and_update_changes_model(self, model, rng):
        server = FederatedServer(model, MeanAggregator(), learning_rate=0.1, rng=rng)
        before = get_flat_parameters(model).copy()
        gradients = rng.normal(size=(5, count_parameters(model)))
        result = server.aggregate_and_update(gradients)
        assert not np.allclose(get_flat_parameters(model), before)
        assert result.num_selected == 5
        assert server.round_index == 1

    def test_previous_gradient_tracked_for_history_aware_rules(self, model, rng):
        server = FederatedServer(model, SignGuard(), rng=rng)
        gradients = rng.normal(0.1, 0.3, size=(8, count_parameters(model)))
        server.aggregate_and_update(gradients)
        context = server.make_context()
        assert context.previous_gradient is not None
        assert context.round_index == 1

    def test_byzantine_hint_propagates_to_context(self, model, rng):
        server = FederatedServer(model, MeanAggregator(), num_byzantine_hint=7, rng=rng)
        assert server.make_context().num_byzantine_hint == 7

    def test_learning_rate_property(self, model, rng):
        server = FederatedServer(model, MeanAggregator(), learning_rate=0.5, rng=rng)
        server.learning_rate = 0.25
        assert server.optimizer.lr == 0.25


class TestMetrics:
    def test_evaluate_model_bounds(self, tiny_image_dataset, model):
        accuracy, loss = evaluate_model(model, tiny_image_dataset, batch_size=16)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0
        assert model.training  # switched back to train mode

    def test_attack_impact_clamps_at_zero(self):
        assert attack_impact(0.9, 0.7) == pytest.approx(0.2)
        assert attack_impact(0.7, 0.9) == 0.0

    def test_selection_confusion(self):
        confusion = selection_confusion(
            selected_indices=np.array([0, 1, 2, 5]),
            byzantine_indices=np.array([0, 9]),
            num_clients=10,
        )
        assert confusion == {
            "benign_selected": 3,
            "benign_total": 8,
            "byzantine_selected": 1,
            "byzantine_total": 2,
        }
