"""Tests for experiment configuration dataclasses."""

import pytest

from repro.utils.config import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
    default_paper_config,
)


class TestDataConfig:
    def test_defaults_valid(self):
        DataConfig().validate()

    def test_rejects_unknown_partition(self):
        with pytest.raises(ValueError, match="partition"):
            DataConfig(partition="random").validate()

    def test_rejects_bad_iid_fraction(self):
        with pytest.raises(ValueError):
            DataConfig(iid_fraction=1.5).validate()


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig().validate()

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            TrainingConfig(rounds=0).validate()

    def test_rejects_negative_learning_rate(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-0.1).validate()

    def test_fault_tolerance_defaults_valid(self):
        config = TrainingConfig()
        assert config.connect_timeout == pytest.approx(10.0)
        assert config.round_timeout == pytest.approx(120.0)
        assert config.min_cohort_fraction == 0.0
        assert config.on_quorum_loss == "accept"
        assert config.quorum_retries == 2
        config.validate()

    def test_unbounded_round_timeout_is_valid(self):
        TrainingConfig(round_timeout=None).validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("connect_timeout", 0.0),
            ("connect_timeout", -1.0),
            ("round_timeout", 0.0),
            ("round_timeout", -5.0),
            ("min_cohort_fraction", -0.1),
            ("min_cohort_fraction", 1.5),
            ("on_quorum_loss", "panic"),
            ("quorum_retries", -1),
        ],
    )
    def test_rejects_bad_fault_tolerance_values(self, field, value):
        with pytest.raises(ValueError, match=field):
            TrainingConfig(**{field: value}).validate()

    def test_default_wire_codec_is_raw(self):
        assert TrainingConfig().wire_codec == "raw"

    @pytest.mark.parametrize(
        "wire_codec", ["raw", "sign1bit", "int8", "fp16", "topk"]
    )
    def test_registered_wire_codecs_valid_on_distributed(self, wire_codec):
        TrainingConfig(
            collect_backend="distributed",
            workers=["127.0.0.1:9000"],
            wire_codec=wire_codec,
        ).validate()

    def test_unknown_wire_codec_rejected(self):
        with pytest.raises(ValueError, match="wire_codec must be one of"):
            TrainingConfig(
                collect_backend="distributed",
                workers=["127.0.0.1:9000"],
                wire_codec="gzip",
            ).validate()

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_non_raw_codec_requires_the_distributed_backend(self, backend):
        # The in-process backends have no wire; a compressed codec there
        # is a configuration mistake, not a silent no-op.
        with pytest.raises(ValueError, match="only meaningful"):
            TrainingConfig(
                collect_backend=backend, wire_codec="sign1bit"
            ).validate()

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_raw_codec_valid_everywhere(self, backend):
        TrainingConfig(collect_backend=backend, wire_codec="raw").validate()


class TestAttackConfig:
    def test_rejects_byzantine_majority(self):
        with pytest.raises(ValueError, match="minority"):
            AttackConfig(byzantine_fraction=0.5).validate()


class TestExperimentConfig:
    def test_default_is_valid(self):
        ExperimentConfig().validate()

    def test_byzantine_counts(self):
        config = ExperimentConfig(
            num_clients=50, attack=AttackConfig(byzantine_fraction=0.2)
        )
        assert config.num_byzantine == 10
        assert config.num_benign == 40

    def test_round_trip_serialization(self):
        config = ExperimentConfig(
            num_clients=30,
            seed=7,
            data=DataConfig(dataset="cifar_like", partition="dirichlet"),
            training=TrainingConfig(
                model="resnet_lite",
                rounds=5,
                connect_timeout=2.5,
                round_timeout=None,
                min_cohort_fraction=0.5,
                on_quorum_loss="retry",
                quorum_retries=4,
            ),
            attack=AttackConfig(name="lie", byzantine_fraction=0.3, params={"z": 0.5}),
            defense=DefenseConfig(name="signguard_sim"),
            tag="round-trip",
        )
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored == config

    def test_replace_returns_copy(self):
        config = ExperimentConfig()
        other = config.replace(num_clients=10)
        assert other.num_clients == 10
        assert config.num_clients == 50

    def test_describe_mentions_attack_and_defense(self):
        text = ExperimentConfig(
            attack=AttackConfig(name="lie"), defense=DefenseConfig(name="median")
        ).describe()
        assert "lie" in text and "median" in text


class TestDefaultPaperConfig:
    @pytest.mark.parametrize(
        "dataset,model",
        [
            ("mnist_like", "simple_cnn"),
            ("fashion_like", "simple_cnn"),
            ("cifar_like", "resnet_lite"),
            ("agnews_like", "textrnn"),
        ],
    )
    def test_model_matches_dataset(self, dataset, model):
        config = default_paper_config(dataset)
        assert config.training.model == model
        assert config.num_clients == 50
        assert config.attack.byzantine_fraction == pytest.approx(0.2)

    def test_rejects_unknown_dataset(self):
        with pytest.raises(ValueError):
            default_paper_config("imagenet")
