"""export-consistency fixture: a package ``__init__`` with no ``__all__``."""

VALUE = 3
