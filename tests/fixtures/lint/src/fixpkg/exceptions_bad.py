"""exception-hygiene violations plus a broad-but-handling legal catch."""


def bare(callback):
    try:
        callback()
    except:  # line 7: bare
        return None


def swallowed(callback):
    try:
        callback()
    except Exception:  # line 14: broad + pass
        pass


def legal_broad(callback, log):
    try:
        callback()
    except Exception as exc:  # legal: records and acts
        log.append(exc)
        raise
