"""pairwise-discipline violations and the streaming calls that must NOT fire."""


def dense_scores(batch, f):
    return batch.sq_distances()[f]  # line 5


def dense_features(batch):
    return batch.cosine_similarities()  # line 9


def streaming_ok(batch, k):
    sums = batch.k_smallest_neighbor_sums(k)
    tile = batch.sq_distances_block(range(4))
    return sums, tile, batch.median_distances()
