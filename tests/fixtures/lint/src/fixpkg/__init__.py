"""Fixture package with deliberate violations for the repro-lint tests.

Every module here trips exactly the rules its name announces; the tests
assert the resulting findings as golden ``path:line:rule`` tuples.  This
tree is excluded from the repository's own lint run and from ruff.
"""

from fixpkg.rng_ok import seeded_draw

__all__ = ["seeded_draw"]
