"""dtype-discipline violations and the patterns that must NOT fire."""

import numpy as np


def bad_zeros(n):
    return np.zeros(n)  # line 7


def bad_full(n):
    return np.full(n, 1.0)  # line 11


def good_explicit(n):
    return np.zeros(n, dtype=np.float32)


def good_positional(n):
    return np.empty(n, np.float64)


def good_kwargs(n, **kwargs):
    return np.zeros(n, **kwargs)


def not_numpy(container):
    return container.zeros(3)
