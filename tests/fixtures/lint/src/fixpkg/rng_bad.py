"""rng-hygiene violations: unseeded generators and module-global RNG."""

import numpy as np
from numpy.random import default_rng


def unseeded_call():
    return np.random.default_rng()  # line 8: unseeded default_rng


def unseeded_alias_call():
    return default_rng()  # line 12: unseeded via from-import


def legacy_module_global():
    return np.random.rand(3)  # line 16: legacy module-global RNG


def legacy_random_state():
    return np.random.RandomState(0)  # line 20: legacy RandomState


FACTORY = default_rng  # line 23: bare reference (default_factory trap)
