"""pickle-boundary violations: pickle imported off the allowlist."""

import pickle  # line 3
from pickle import loads  # line 4


def roundtrip(value):
    return loads(pickle.dumps(value))
