"""Allowlisted module: dense pairwise calls here are audited, not findings."""


def audited_dense_path(batch):
    return batch.gram() + batch.sq_distances()
