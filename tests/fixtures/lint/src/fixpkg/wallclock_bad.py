"""wallclock-ban violations plus the legal ``time.sleep``."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp():
    return time.time()  # line 9


def tick():
    return pc()  # line 13


def today():
    return datetime.now()  # line 17


def wait(seconds):
    time.sleep(seconds)  # legal: waiting is behaviour, not measurement
