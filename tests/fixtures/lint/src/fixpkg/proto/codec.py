"""Message vocabulary: MSG_B is missing from MESSAGE_NAMES (line 7)."""

MSG_A = 1
MSG_B = 2  # line 4: never dispatched by the worker, unnamed

MESSAGE_NAMES = {
    MSG_A: "A",
}
