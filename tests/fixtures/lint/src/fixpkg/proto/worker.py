"""Worker side: dispatches MSG_A only — MSG_B is forgotten."""

from fixpkg.proto.codec import MSG_A


def dispatch(msg_type):
    if msg_type == MSG_A:
        return "a"
    raise ValueError(msg_type)
