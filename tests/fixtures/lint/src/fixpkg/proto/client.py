"""Caller side: speaks both message types."""

from fixpkg.proto.codec import MSG_A, MSG_B


def converse(send):
    send(MSG_A)
    send(MSG_B)
