"""Protocol fixture: codec defines MSG_A/MSG_B; the worker forgets MSG_B."""

__all__ = []
