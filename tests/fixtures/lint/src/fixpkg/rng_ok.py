"""Seeded randomness and a justified suppression: no findings expected."""

import numpy as np


def seeded_draw(seed):
    return np.random.default_rng(seed).random()


def suppressed_unseeded():
    # repro-lint: disable=rng-hygiene -- fixture: suppression round-trip
    return np.random.default_rng()
