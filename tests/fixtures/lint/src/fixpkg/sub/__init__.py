"""export-consistency fixture: ``__all__`` exports a name that is gone."""

def present():
    return 1


__all__ = ["present", "vanished"]  # line 7: 'vanished' resolves to nothing
