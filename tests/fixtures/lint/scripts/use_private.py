"""Script fixture: deep-imports private names from the fixture package."""

import fixpkg._hidden  # line 3: private module
from fixpkg.rng_ok import _secret_helper  # line 4: private name
from fixpkg.rng_ok import seeded_draw  # legal: public name


def run():
    return seeded_draw(0), _secret_helper, fixpkg._hidden
