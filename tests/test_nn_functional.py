"""Tests for the stateless numerical building blocks."""

import numpy as np
import pytest

from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    sigmoid,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(4, 7))
        np.testing.assert_allclose(softmax(logits).sum(axis=1), 1.0, atol=1e-12)

    def test_stable_for_large_logits(self):
        logits = np.array([[1000.0, 1000.0, 999.0]])
        out = softmax(logits)
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(out[0, 1])

    def test_log_softmax_consistent_with_softmax(self, rng):
        logits = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            np.exp(log_softmax(logits)), softmax(logits), atol=1e-12
        )


class TestOneHot:
    def test_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestSigmoid:
    def test_matches_definition(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_allclose(sigmoid(x), 1 / (1 + np.exp(-x)), atol=1e-12)

    def test_stable_for_extreme_inputs(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)


class TestIm2Col:
    def test_output_size_formula(self):
        assert conv_output_size(14, 3, 1, 1) == 14
        assert conv_output_size(14, 2, 2, 0) == 7

    def test_im2col_matches_naive_convolution(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        weight = rng.normal(size=(4, 3, 3, 3))
        columns, out_h, out_w = im2col(x, kernel=3, stride=1, padding=1)
        result = (columns @ weight.reshape(4, -1).T).reshape(2, out_h, out_w, 4)
        result = result.transpose(0, 3, 1, 2)

        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((2, 4, 6, 6))
        for b in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        patch = padded[b, :, i : i + 3, j : j + 3]
                        naive[b, o, i, j] = np.sum(patch * weight[o])
        np.testing.assert_allclose(result, naive, atol=1e-10)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the property backprop relies on."""
        x = rng.normal(size=(1, 2, 5, 5))
        columns, out_h, out_w = im2col(x, kernel=3, stride=2, padding=1)
        y = rng.normal(size=columns.shape)
        lhs = np.sum(columns * y)
        rhs = np.sum(x * col2im(y, x.shape, kernel=3, stride=2, padding=1))
        assert lhs == pytest.approx(rhs, rel=1e-10)
