"""Checkpoint/resume: file format, capture/restore, kill-and-resume proofs.

The acceptance contract of the fault-tolerant runtime: a run killed by a
fleet outage and resumed from its last checkpoint is **bit-identical** to
the run that never died — same per-round losses, same accuracies, same
final model bits — on the sequential, process, and distributed backends.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    TrainingConfig,
)
from repro.fl import run_experiment
from repro.fl.checkpoint import (
    CHECKPOINT_MAGIC,
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.fl.collector import SequentialCollector
from repro.fl.faults import FaultSchedule, FaultSpec, FleetOutageError
from repro.fl.transport import DistributedCollector, start_thread_fleet
from repro.utils.serialization import arrays_to_blob
from tests.test_fl_transport import PlannedSchedule, build_simulation, make_plan


def rng_state(seed):
    return np.random.default_rng(seed).bit_generator.state


def make_checkpoint(**overrides):
    fields = dict(
        rounds_completed=3,
        model_state={
            "dense.weight": np.arange(6.0).reshape(2, 3),
            "dense.bias": np.array([0.5, -0.5]),
        },
        velocities=[np.full(6, 0.25), None],
        learning_rate=0.05,
        previous_gradient=np.linspace(-1.0, 1.0, 8),
        server_round_index=3,
        server_rng_state=rng_state(1),
        attack_rng_state=rng_state(2),
        participation_rng_state=rng_state(3),
        client_rng_states={0: rng_state(4), 5: rng_state(5)},
        attack_state={"phase": 2},
        recorder_state={"description": "test", "rounds": []},
        config={"seed": 7},
    )
    fields.update(overrides)
    return Checkpoint(**fields)


class TestCheckpointFile:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        original = make_checkpoint()
        assert save_checkpoint(original, path) == path
        loaded = load_checkpoint(path)
        assert loaded.rounds_completed == 3
        assert loaded.model_state.keys() == original.model_state.keys()
        for name, array in original.model_state.items():
            assert np.array_equal(loaded.model_state[name], array)
        assert np.array_equal(loaded.velocities[0], original.velocities[0])
        assert loaded.velocities[1] is None
        assert loaded.learning_rate == 0.05
        assert np.array_equal(
            loaded.previous_gradient, original.previous_gradient
        )
        assert loaded.server_rng_state == original.server_rng_state
        assert loaded.attack_rng_state == original.attack_rng_state
        assert loaded.participation_rng_state == original.participation_rng_state
        # JSON stringifies the client ids; load re-ints them.
        assert loaded.client_rng_states == original.client_rng_states
        assert all(isinstance(k, int) for k in loaded.client_rng_states)
        assert loaded.attack_state == {"phase": 2}
        assert loaded.recorder_state == original.recorder_state
        assert loaded.config == {"seed": 7}

    def test_optional_fields_roundtrip_as_none(self, tmp_path):
        path = tmp_path / "sparse.ckpt"
        save_checkpoint(
            make_checkpoint(
                previous_gradient=None,
                participation_rng_state=None,
                velocities=[None, None],
                attack_state={},
                config=None,
            ),
            path,
        )
        loaded = load_checkpoint(path)
        assert loaded.previous_gradient is None
        assert loaded.participation_rng_state is None
        assert loaded.velocities == [None, None]
        assert loaded.attack_state == {}
        assert loaded.config is None

    def test_loaded_arrays_are_writable(self, tmp_path):
        # blob_to_arrays returns read-only views; the loader must copy so
        # restored state can be trained on.
        path = tmp_path / "run.ckpt"
        save_checkpoint(make_checkpoint(), path)
        loaded = load_checkpoint(path)
        loaded.model_state["dense.bias"] += 1.0
        loaded.velocities[0][0] = 9.0

    def test_save_is_atomic_and_replaces(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(make_checkpoint(rounds_completed=1), path)
        save_checkpoint(make_checkpoint(rounds_completed=2), path)
        assert load_checkpoint(path).rounds_completed == 2
        assert list(tmp_path.iterdir()) == [path]  # no .tmp left behind

    def test_too_short_rejected(self, tmp_path):
        path = tmp_path / "short.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC[:4])
        with pytest.raises(ValueError, match="too short"):
            load_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "other.ckpt"
        save_checkpoint(make_checkpoint(), path)
        payload = bytearray(path.read_bytes())
        payload[:8] = b"NOTACKPT"
        path.write_bytes(bytes(payload))
        with pytest.raises(ValueError, match="bad magic"):
            load_checkpoint(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt"
        save_checkpoint(make_checkpoint(), path)
        payload = bytearray(path.read_bytes())
        payload[8:12] = struct.pack("!I", 99)
        path.write_bytes(bytes(payload))
        with pytest.raises(ValueError, match="format version 99"):
            load_checkpoint(path)

    def test_truncated_metadata_rejected(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        save_checkpoint(make_checkpoint(), path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(ValueError, match="truncated"):
            load_checkpoint(path)

    def test_unknown_array_rejected(self, tmp_path):
        import json

        path = tmp_path / "alien.ckpt"
        meta = {
            "rounds_completed": 0,
            "learning_rate": 0.1,
            "server_round_index": 0,
            "num_velocities": 0,
            "server_rng_state": rng_state(0),
            "attack_rng_state": rng_state(0),
            "participation_rng_state": None,
            "client_rng_states": {},
            "attack_state": {},
            "recorder_state": {},
            "config": None,
        }
        meta_bytes = json.dumps(meta).encode("utf-8")
        path.write_bytes(
            CHECKPOINT_MAGIC
            + struct.pack("!I", 1)
            + struct.pack("!I", len(meta_bytes))
            + meta_bytes
            + arrays_to_blob({"bogus": np.zeros(2)})
        )
        with pytest.raises(ValueError, match="unknown array"):
            load_checkpoint(path)


class TestCaptureRestore:
    def test_restore_rewinds_the_same_simulation_bit_exactly(self):
        simulation = build_simulation(SequentialCollector())
        try:
            simulation.run(2)
            checkpoint = simulation.capture_checkpoint()
            simulation.run(5, start_round=2)
            reference_losses = [r.train_loss for r in simulation.recorder.rounds]
            reference_state = simulation.model.state_dict()

            assert simulation.restore_checkpoint(checkpoint) == 2
            assert len(simulation.recorder.rounds) == 2
            simulation.run(5, start_round=2)
            replayed_losses = [r.train_loss for r in simulation.recorder.rounds]
            replayed_state = simulation.model.state_dict()
        finally:
            simulation.close()
        assert replayed_losses == reference_losses
        for name in reference_state:
            assert np.array_equal(replayed_state[name], reference_state[name])

    def test_restore_into_a_freshly_built_simulation(self):
        donor = build_simulation(SequentialCollector())
        try:
            donor.run(2)
            checkpoint = donor.capture_checkpoint()
            donor.run(4, start_round=2)
            reference = donor.recorder.to_dict()
            reference_state = donor.model.state_dict()
        finally:
            donor.close()

        fresh = build_simulation(SequentialCollector())
        try:
            assert fresh.restore_checkpoint(checkpoint) == 2
            fresh.run(4, start_round=2)
            resumed = fresh.recorder.to_dict()
            resumed_state = fresh.model.state_dict()
        finally:
            fresh.close()
        assert resumed == reference
        for name in reference_state:
            assert np.array_equal(resumed_state[name], reference_state[name])

    def test_snapshot_is_decoupled_from_the_live_run(self, tmp_path):
        # Training past the capture point must not mutate the snapshot:
        # saving it before and after two more rounds yields the same bytes.
        simulation = build_simulation(SequentialCollector())
        try:
            simulation.run(2)
            checkpoint = simulation.capture_checkpoint()
            save_checkpoint(checkpoint, tmp_path / "before.ckpt")
            simulation.run(4, start_round=2)
            save_checkpoint(checkpoint, tmp_path / "after.ckpt")
        finally:
            simulation.close()
        before = (tmp_path / "before.ckpt").read_bytes()
        assert before == (tmp_path / "after.ckpt").read_bytes()

    def test_restore_refuses_foreign_participation_state(self):
        # Every built-in schedule owns an RNG; a custom one that draws no
        # randomness cannot accept a checkpoint that carries a stream state
        # — that checkpoint came from a differently-configured run.
        donor = build_simulation(SequentialCollector())
        try:
            donor.run(1)
            checkpoint = donor.capture_checkpoint()
        finally:
            donor.close()
        assert checkpoint.participation_rng_state is not None

        planned = build_simulation(
            SequentialCollector(),
            schedule=PlannedSchedule([make_plan(0, 8, active=range(8))]),
        )
        try:
            with pytest.raises(ValueError, match="draws no randomness"):
                planned.restore_checkpoint(checkpoint)
        finally:
            planned.close()

    def test_run_validates_checkpoint_arguments(self):
        simulation = build_simulation(SequentialCollector())
        try:
            with pytest.raises(ValueError, match="given together"):
                simulation.run(2, checkpoint_every=1)
            with pytest.raises(ValueError, match="start_round"):
                simulation.run(2, start_round=3)
            with pytest.raises(ValueError, match="checkpoint_every"):
                simulation.run(
                    2, checkpoint_every=0, checkpoint_path="unused.ckpt"
                )
        finally:
            simulation.close()

    def test_distributed_resume_onto_a_replacement_fleet(self):
        # The cross-host resume story: checkpoint a distributed run (the
        # client RNG streams live in the workers and come back through the
        # trailers), then restore onto a brand-new fleet — losses and model
        # bits must match the uninterrupted run exactly.
        with start_thread_fleet(2) as fleet:
            simulation = build_simulation(
                DistributedCollector(fleet.addresses, connect_timeout=5.0)
            )
            try:
                simulation.run(2)
                checkpoint = simulation.capture_checkpoint()
                simulation.run(4, start_round=2)
                reference = simulation.recorder.to_dict()
                reference_state = simulation.model.state_dict()
            finally:
                simulation.close()
        # The workers reported every client's post-round stream state.
        assert sorted(checkpoint.client_rng_states) == list(range(8))

        with start_thread_fleet(2) as fleet:
            replacement = build_simulation(
                DistributedCollector(fleet.addresses, connect_timeout=5.0)
            )
            try:
                assert replacement.restore_checkpoint(checkpoint) == 2
                replacement.run(4, start_round=2)
                resumed = replacement.recorder.to_dict()
                resumed_state = replacement.model.state_dict()
            finally:
                replacement.close()
        assert resumed == reference
        for name in reference_state:
            assert np.array_equal(resumed_state[name], reference_state[name])


def fast_config(**overrides):
    config = ExperimentConfig(
        num_clients=8,
        seed=3,
        data=DataConfig(dataset="mnist_like", num_train=240, num_test=80),
        training=TrainingConfig(
            model="mlp",
            rounds=6,
            batch_size=16,
            learning_rate=0.1,
            eval_every=1,
        ),
        attack=AttackConfig(name="sign_flip", byzantine_fraction=0.25),
        defense=DefenseConfig(name="signguard"),
    )
    return config.replace(**overrides)


class TestKillAndResume:
    def test_sequential_crash_resume_is_bit_identical(self, tmp_path):
        config = fast_config()
        baseline = run_experiment(config)

        path = tmp_path / "run.ckpt"
        # The fleet dies during round index 4 — after the checkpoint that
        # round 4 (completed=4, every 2) just saved.
        with pytest.raises(FleetOutageError):
            run_experiment(
                config,
                fault_schedule=FaultSchedule.from_args(["crash@5"]),
                checkpoint_every=2,
                checkpoint_path=path,
            )
        resumed = run_experiment(config, resume_from=path)
        assert load_checkpoint(path).rounds_completed == 4
        assert resumed.to_dict() == baseline.to_dict()
        assert resumed.metadata["config"] == baseline.metadata["config"]

    def test_process_backend_crash_resume_is_bit_identical(self, tmp_path):
        # The in-worker client RNG streams must survive the kill: they are
        # captured from the workers' round replies, not the parent's stale
        # client objects.
        config = fast_config(seed=11)
        config.training.rounds = 5
        config.training.n_workers = 2
        config.training.collect_backend = "process"
        baseline = run_experiment(config)

        path = tmp_path / "run.ckpt"
        outage = FaultSchedule(
            [FaultSpec("crash", 3, worker=0), FaultSpec("crash", 3, worker=1)]
        )
        with pytest.raises(FleetOutageError):
            run_experiment(
                config,
                fault_schedule=outage,
                checkpoint_every=1,
                checkpoint_path=path,
            )
        resumed = run_experiment(config, resume_from=path)
        assert load_checkpoint(path).rounds_completed == 2
        assert resumed.to_dict() == baseline.to_dict()

    def test_resume_accepts_a_loaded_checkpoint_object(self, tmp_path):
        config = fast_config()
        config.training.rounds = 2
        path = tmp_path / "run.ckpt"
        finished = run_experiment(
            config, checkpoint_every=2, checkpoint_path=path
        )
        # Resuming a finished run replays no rounds: the restored recorder
        # IS the result.
        resumed = run_experiment(config, resume_from=load_checkpoint(path))
        assert resumed.rounds == finished.rounds  # same history
        assert [r.train_loss for r in resumed.rounds] == [
            r.train_loss for r in finished.rounds
        ]

    def test_resume_under_a_different_config_is_refused(self, tmp_path):
        config = fast_config()
        config.training.rounds = 2
        path = tmp_path / "run.ckpt"
        run_experiment(config, checkpoint_every=2, checkpoint_path=path)
        with pytest.raises(ValueError, match="different experiment config"):
            run_experiment(fast_config(seed=4), resume_from=path)
