"""Tests for activation layers."""

import numpy as np
import pytest

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh


@pytest.mark.parametrize(
    "layer_factory",
    [ReLU, lambda: LeakyReLU(0.1), Sigmoid, Tanh],
    ids=["relu", "leaky_relu", "sigmoid", "tanh"],
)
def test_backward_matches_finite_differences(layer_factory, rng, gradcheck):
    layer = layer_factory()
    x = rng.normal(size=(4, 5))
    out = layer.forward(x)
    upstream = rng.normal(size=out.shape)
    layer.forward(x)
    analytic = layer.backward(upstream)

    def scalar(x_perturbed):
        return float(np.sum(layer.forward(x_perturbed) * upstream))

    numeric = gradcheck(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestReLU:
    def test_clips_negatives(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_gradient_blocked_for_negatives(self):
        layer = ReLU()
        layer(np.array([-1.0, 3.0]))
        grad = layer.backward(np.array([5.0, 5.0]))
        np.testing.assert_array_equal(grad, [0.0, 5.0])


class TestLeakyReLU:
    def test_negative_slope_applied(self):
        out = LeakyReLU(0.2)(np.array([-10.0, 10.0]))
        np.testing.assert_allclose(out, [-2.0, 10.0])

    def test_rejects_negative_slope_parameter(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)


class TestSigmoidTanh:
    def test_sigmoid_range(self, rng):
        out = Sigmoid()(rng.normal(size=100) * 10)
        assert np.all((out >= 0) & (out <= 1))

    def test_tanh_range(self, rng):
        out = Tanh()(rng.normal(size=100) * 10)
        assert np.all((out >= -1) & (out <= 1))
