"""Tests for distance utilities and cluster-quality metrics."""

import numpy as np
import pytest

from repro.clustering import davies_bouldin_score, pairwise_distances, silhouette_score


class TestPairwiseDistances:
    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=(6, 4))
        y = rng.normal(size=(3, 4))
        expected = np.array([[np.linalg.norm(a - b) for b in y] for a in x])
        np.testing.assert_allclose(pairwise_distances(x, y), expected, atol=1e-10)

    def test_self_distance_diagonal_is_zero(self, rng):
        x = rng.normal(size=(5, 3))
        distances = pairwise_distances(x)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-9)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_no_negative_values_from_cancellation(self):
        x = np.array([[1e8, 1e8], [1e8, 1e8 + 1e-4]])
        assert np.all(pairwise_distances(x) >= 0)


class TestSilhouetteScore:
    def test_well_separated_clusters_score_high(self, rng):
        x = np.vstack(
            [rng.normal(0, 0.05, size=(10, 2)), rng.normal(5, 0.05, size=(10, 2))]
        )
        labels = np.array([0] * 10 + [1] * 10)
        assert silhouette_score(x, labels) > 0.9

    def test_random_labels_score_low(self, rng):
        x = rng.normal(size=(20, 2))
        labels = rng.integers(0, 2, size=20)
        assert silhouette_score(x, labels) < 0.5

    def test_single_cluster_returns_zero(self, rng):
        x = rng.normal(size=(10, 2))
        assert silhouette_score(x, np.zeros(10, dtype=int)) == 0.0

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            silhouette_score(rng.normal(size=(5, 2)), np.zeros(4, dtype=int))


class TestDaviesBouldinScore:
    def test_separated_clusters_score_lower_than_overlapping(self, rng):
        labels = np.array([0] * 10 + [1] * 10)
        separated = np.vstack(
            [rng.normal(0, 0.1, size=(10, 2)), rng.normal(10, 0.1, size=(10, 2))]
        )
        overlapping = np.vstack(
            [rng.normal(0, 1.0, size=(10, 2)), rng.normal(0.5, 1.0, size=(10, 2))]
        )
        assert davies_bouldin_score(separated, labels) < davies_bouldin_score(
            overlapping, labels
        )

    def test_single_cluster_returns_zero(self, rng):
        assert (
            davies_bouldin_score(rng.normal(size=(8, 2)), np.zeros(8, dtype=int)) == 0.0
        )
