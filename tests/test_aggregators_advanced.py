"""Tests for DnC, signSGD majority vote, centered clipping, and FLTrust."""

import numpy as np
import pytest

from repro.aggregators import (
    CenteredClippingAggregator,
    DivideAndConquerAggregator,
    FLTrustAggregator,
    SignSGDMajorityAggregator,
)
from repro.aggregators.base import ServerContext
from repro.aggregators.dnc import power_iteration_top_direction


@pytest.fixture
def context(rng):
    return ServerContext.make(rng=rng, num_byzantine_hint=3)


@pytest.fixture
def population_with_outliers(rng):
    honest = rng.normal(1.0, 0.2, size=(17, 40))
    malicious = rng.normal(-5.0, 0.2, size=(3, 40))
    return np.vstack([malicious, honest])


class TestDnC:
    def test_filters_spectral_outliers(self, population_with_outliers, context):
        aggregator = DivideAndConquerAggregator(num_byzantine=3, subsample_dim=40)
        result = aggregator(population_with_outliers, context)
        assert set(result.selected_indices).isdisjoint({0, 1, 2})

    def test_aggregate_close_to_honest_mean(self, population_with_outliers, context):
        aggregator = DivideAndConquerAggregator(num_byzantine=3)
        result = aggregator(population_with_outliers, context)
        honest_mean = population_with_outliers[3:].mean(axis=0)
        assert np.linalg.norm(result.gradient - honest_mean) < 0.5

    def test_subsampling_larger_than_dim_is_capped(self, benign_gradients, context):
        aggregator = DivideAndConquerAggregator(num_byzantine=2, subsample_dim=10_000)
        result = aggregator(benign_gradients, context)
        assert np.all(np.isfinite(result.gradient))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DivideAndConquerAggregator(num_iterations=0)
        with pytest.raises(ValueError):
            DivideAndConquerAggregator(subsample_dim=0)
        with pytest.raises(ValueError):
            DivideAndConquerAggregator(filter_fraction=0.0)

    def test_removal_compounds_across_iterations(self, rng):
        # Every iteration removes ``filter_fraction * f`` of the *surviving*
        # clients, so three iterations with f=2 shrink 12 clients to 6.
        # This pins the seed behaviour (shared with dnc_reference) that a
        # once-dead guard in the loop suggested might have been intended to
        # stop early.
        gradients = rng.normal(size=(12, 30))
        context = ServerContext.make(rng=0)
        aggregator = DivideAndConquerAggregator(
            num_byzantine=2, num_iterations=3, subsample_dim=30
        )
        result = aggregator(gradients, context)
        assert len(result.selected_indices) == 12 - 3 * 2

    def test_removal_floors_at_one_survivor(self, rng):
        gradients = rng.normal(size=(5, 20))
        context = ServerContext.make(rng=0)
        aggregator = DivideAndConquerAggregator(
            num_byzantine=2, num_iterations=10, subsample_dim=20
        )
        result = aggregator(gradients, context)
        assert len(result.selected_indices) == 1

    def test_tied_scores_break_by_client_index(self):
        # Identical gradients give identical (zero) outlier scores; the
        # stable argsort must then remove the highest indices first so the
        # selection is platform-deterministic.
        gradients = np.tile(np.linspace(0.1, 1.0, 20), (10, 1))
        context = ServerContext.make(rng=0)
        aggregator = DivideAndConquerAggregator(
            num_byzantine=2, num_iterations=3, subsample_dim=20
        )
        result = aggregator(gradients, context)
        np.testing.assert_array_equal(result.selected_indices, np.arange(4))

    def test_matches_reference_on_ties(self):
        from repro.perf import reference as ref

        gradients = np.tile(np.linspace(-1.0, 1.0, 25), (9, 1))
        result = DivideAndConquerAggregator(num_byzantine=3, subsample_dim=25)(
            gradients, ServerContext.make(rng=123)
        )
        expected = ref.dnc_reference(gradients, 3, np.random.default_rng(123))
        np.testing.assert_array_equal(
            result.selected_indices, expected["selected_indices"]
        )


class TestDnCPower:
    """The subquadratic ``svd="power"`` backend."""

    @staticmethod
    def spectral_population(n=60, dim=24, rank=4, seed=3):
        # Low-rank honest heterogeneity with geometrically decaying scales
        # keeps a spectral gap through every removal iteration, so the
        # power method's top direction is well defined at each step.
        rng = np.random.default_rng(seed)
        basis, _ = np.linalg.qr(rng.normal(size=(dim, rank)))
        scales = 2.0 ** -np.arange(rank)
        signal = rng.normal(0.05, 1.0, size=dim)
        n_malicious = n // 5
        n_honest = n - n_malicious
        honest = (
            signal
            + (rng.normal(size=(n_honest, rank)) * scales) @ basis.T
            + rng.normal(0, 0.05, size=(n_honest, dim))
        )
        malicious = -signal + rng.normal(0, 0.05, size=(n_malicious, dim))
        return np.vstack([honest, malicious])

    def test_svd_parameter_validation(self):
        with pytest.raises(ValueError, match="svd"):
            DivideAndConquerAggregator(svd="qr")

    def test_power_iteration_matches_full_svd_direction(self):
        x = self.spectral_population()
        centered = x - x.mean(axis=0)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        direction = power_iteration_top_direction(centered)
        assert np.linalg.norm(direction) == pytest.approx(1.0, abs=1e-12)
        assert abs(float(direction @ vt[0])) == pytest.approx(1.0, abs=1e-6)

    def test_power_iteration_zero_matrix_returns_unit_vector(self):
        direction = power_iteration_top_direction(np.zeros((5, 8)))
        assert direction.shape == (8,)
        assert np.linalg.norm(direction) == pytest.approx(1.0)

    def test_power_iteration_preserves_dtype(self):
        x = self.spectral_population().astype(np.float32)
        centered = x - x.mean(axis=0)
        assert power_iteration_top_direction(centered).dtype == np.float32

    def test_power_selection_matches_full_svd(self):
        gradients = self.spectral_population()
        full = DivideAndConquerAggregator(
            num_byzantine=12, subsample_dim=24, svd="full"
        )(gradients, ServerContext.make(rng=0))
        power = DivideAndConquerAggregator(
            num_byzantine=12, subsample_dim=24, svd="power"
        )(gradients, ServerContext.make(rng=0))
        np.testing.assert_array_equal(
            power.selected_indices, full.selected_indices
        )
        assert full.info["svd"] == "full"
        assert power.info["svd"] == "power"

    def test_modes_consume_identical_rng_streams(self):
        # The power path must not draw extra randomness: with coordinate
        # subsampling active (subsample_dim < dim) both modes see the same
        # sampled coordinates, so the selections still agree.
        gradients = self.spectral_population(dim=48)
        full = DivideAndConquerAggregator(
            num_byzantine=12, subsample_dim=24, svd="full"
        )(gradients, ServerContext.make(rng=7))
        power = DivideAndConquerAggregator(
            num_byzantine=12, subsample_dim=24, svd="power"
        )(gradients, ServerContext.make(rng=7))
        np.testing.assert_array_equal(
            power.selected_indices, full.selected_indices
        )


class TestSignSGD:
    def test_majority_sign_direction(self, context):
        gradients = np.array([[1.0, -1.0]] * 7 + [[-1.0, 1.0]] * 3)
        result = SignSGDMajorityAggregator(scale=1.0)(gradients, context)
        np.testing.assert_array_equal(np.sign(result.gradient), [1.0, -1.0])

    def test_default_scale_uses_median_norm(self, benign_gradients, context):
        result = SignSGDMajorityAggregator()(benign_gradients, context)
        assert result.info["magnitude"] > 0

    def test_tie_coordinates_are_zero(self, context):
        gradients = np.array([[1.0], [-1.0]])
        result = SignSGDMajorityAggregator(scale=1.0)(gradients, context)
        assert result.gradient[0] == 0.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            SignSGDMajorityAggregator(scale=0.0)


class TestCenteredClipping:
    def test_robust_to_large_outlier(self, population_with_outliers, context):
        aggregator = CenteredClippingAggregator(clip_threshold=1.0)
        result = aggregator(population_with_outliers, context)
        honest_mean = population_with_outliers[3:].mean(axis=0)
        malicious_mean = population_with_outliers[:3].mean(axis=0)
        assert np.linalg.norm(result.gradient - honest_mean) < np.linalg.norm(
            result.gradient - malicious_mean
        )

    def test_uses_previous_gradient_as_center(self, benign_gradients, rng):
        previous = benign_gradients.mean(axis=0)
        context = ServerContext.make(rng=rng, previous_gradient=previous)
        result = CenteredClippingAggregator(clip_threshold=1e-9)(
            benign_gradients, context
        )
        np.testing.assert_allclose(result.gradient, previous, atol=1e-6)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CenteredClippingAggregator(clip_threshold=0.0)
        with pytest.raises(ValueError):
            CenteredClippingAggregator(num_iterations=0)


class TestFLTrust:
    def test_zero_trust_for_opposite_gradients(self, rng):
        reference = np.ones(20)
        honest = np.tile(reference, (8, 1)) + rng.normal(0, 0.05, size=(8, 20))
        malicious = -np.tile(reference, (2, 1))
        context = ServerContext.make(rng=rng, reference_gradient=reference)
        result = FLTrustAggregator()(np.vstack([malicious, honest]), context)
        assert set(result.selected_indices).isdisjoint({0, 1})
        np.testing.assert_allclose(result.info["trust_scores"][:2], 0.0)

    def test_aggregate_has_reference_scale(self, rng):
        reference = np.ones(20)
        clients = 5.0 * np.tile(reference, (6, 1))
        context = ServerContext.make(rng=rng, reference_gradient=reference)
        result = FLTrustAggregator()(clients, context)
        assert np.linalg.norm(result.gradient) == pytest.approx(
            np.linalg.norm(reference), rel=1e-6
        )

    def test_without_reference_falls_back_to_median_proxy(
        self, benign_gradients, context
    ):
        result = FLTrustAggregator()(benign_gradients, context)
        assert np.all(np.isfinite(result.gradient))

    def test_degenerate_reference_falls_back_to_mean(self, benign_gradients, rng):
        context = ServerContext.make(
            rng=rng, reference_gradient=np.zeros(benign_gradients.shape[1])
        )
        result = FLTrustAggregator()(benign_gradients, context)
        np.testing.assert_allclose(result.gradient, benign_gradients.mean(axis=0))
        assert result.info.get("degenerate_reference") is True
