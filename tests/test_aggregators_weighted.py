"""Weighted mean aggregation: the first consumer of RoundPlan.weights."""

import numpy as np
import pytest

from repro.aggregators.base import ServerContext
from repro.aggregators.factory import build_aggregator
from repro.aggregators.weighted import WeightedMeanAggregator
from repro.fl.participation import UniformParticipation
from repro.fl.server import FederatedServer
from repro.nn.models.mlp import MLP


def make_gradients(n=6, dim=9, seed=0):
    return np.random.default_rng(seed).normal(size=(n, dim))


class TestWeightedMean:
    def test_registered_with_alias(self):
        assert isinstance(build_aggregator("weighted_mean"), WeightedMeanAggregator)
        assert isinstance(build_aggregator("fedavg"), WeightedMeanAggregator)

    def test_no_weights_is_bit_identical_to_mean(self):
        gradients = make_gradients()
        result = WeightedMeanAggregator()(gradients, ServerContext.make(rng=0))
        assert np.array_equal(result.gradient, gradients.mean(axis=0))
        assert "weights_fallback" not in result.info

    def test_uniform_participation_weights_are_bit_identical_to_mean(self):
        gradients = make_gradients()
        context = ServerContext.make(rng=0)
        context.extra["participation_weights"] = np.full(6, 1 / 6)
        result = WeightedMeanAggregator()(gradients, context)
        assert np.array_equal(result.gradient, gradients.mean(axis=0))

    def test_explicit_weights_reweight_clients(self):
        gradients = make_gradients(n=3)
        context = ServerContext.make(rng=0)
        context.extra["participation_weights"] = np.array([2.0, 1.0, 1.0])
        result = WeightedMeanAggregator()(gradients, context)
        expected = np.array([0.5, 0.25, 0.25]) @ gradients
        np.testing.assert_allclose(result.gradient, expected)
        np.testing.assert_allclose(result.info["weights"], [0.5, 0.25, 0.25])

    def test_constructor_weights_take_priority(self):
        gradients = make_gradients(n=2)
        context = ServerContext.make(rng=0)
        context.extra["participation_weights"] = np.array([0.5, 0.5])
        result = WeightedMeanAggregator(weights=[3.0, 1.0])(gradients, context)
        np.testing.assert_allclose(result.info["weights"], [0.75, 0.25])

    def test_selects_every_row(self):
        gradients = make_gradients(n=4)
        result = WeightedMeanAggregator()(gradients, ServerContext.make(rng=0))
        assert np.array_equal(result.selected_indices, np.arange(4))

    def test_float32_path_stays_float32(self):
        gradients = make_gradients(n=3).astype(np.float32)
        context = ServerContext.make(rng=0)
        context.extra["participation_weights"] = np.array([2.0, 1.0, 1.0])
        result = WeightedMeanAggregator()(gradients, context)
        assert result.gradient.dtype == np.float32

    @pytest.mark.parametrize(
        "weights, reason",
        [
            (np.array([1.0, np.nan, 1.0]), "non-finite"),
            (np.array([1.0, np.inf, 1.0]), "non-finite"),
            (np.array([1.0, -0.5, 1.0]), "negative"),
            (np.zeros(3), "sum to zero"),
            (np.ones(5), "shape"),
            (np.ones((3, 1)), "shape"),
        ],
    )
    def test_degenerate_weights_fall_back_to_uniform(self, weights, reason):
        gradients = make_gradients(n=3)
        context = ServerContext.make(rng=0)
        context.extra["participation_weights"] = weights
        result = WeightedMeanAggregator()(gradients, context)
        assert np.array_equal(result.gradient, gradients.mean(axis=0))
        assert reason in result.info["weights_fallback"]

    def test_single_client(self):
        gradients = make_gradients(n=1)
        context = ServerContext.make(rng=0)
        context.extra["participation_weights"] = np.array([1.0])
        result = WeightedMeanAggregator()(gradients, context)
        assert np.array_equal(result.gradient, gradients[0])


class TestRoundPlanWeightsReachTheRule:
    def test_server_threads_participation_weights_into_context(self):
        """aggregate_and_update exposes plan weights to the rule."""
        rng = np.random.default_rng(0)
        model = MLP(4, 3, hidden_dims=(5,), rng=rng)
        captured = {}

        class Capture(WeightedMeanAggregator):
            def aggregate(self, gradients, context=None):
                captured["weights"] = context.extra.get("participation_weights")
                return super().aggregate(gradients, context)

        server = FederatedServer(model, Capture(), rng=rng)
        gradients = rng.normal(size=(4, model.num_parameters()))
        plan_weights = np.array([0.4, 0.3, 0.2, 0.1])
        server.aggregate_and_update(gradients, participation_weights=plan_weights)
        np.testing.assert_allclose(captured["weights"], plan_weights)

    def test_schedule_emits_weights_that_validate(self):
        plan = UniformParticipation(0.5, rng=np.random.default_rng(0)).plan(0, 20)
        assert plan.weights.shape == plan.active.shape
        assert np.isclose(plan.weights.sum(), 1.0)
