"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, ConstantLR, MultiStepLR, StepLR


def make_param(value=1.0, grad=0.5):
    param = Parameter(np.array([value]))
    param.grad[...] = grad
    return param


class TestSGD:
    def test_vanilla_update(self):
        param = make_param(1.0, 0.5)
        SGD([param], lr=0.1).step()
        assert param.data[0] == pytest.approx(0.95)

    def test_weight_decay_added_to_gradient(self):
        param = make_param(1.0, 0.0)
        SGD([param], lr=0.1, weight_decay=0.1).step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.1)

    def test_momentum_accumulates(self):
        param = make_param(0.0, 1.0)
        optimizer = SGD([param], lr=1.0, momentum=0.5)
        optimizer.step()  # velocity = 1 -> x = -1
        param.grad[...] = 1.0
        optimizer.step()  # velocity = 1.5 -> x = -2.5
        assert param.data[0] == pytest.approx(-2.5)

    def test_nesterov_differs_from_heavy_ball(self):
        param_a, param_b = make_param(0.0, 1.0), make_param(0.0, 1.0)
        SGD([param_a], lr=1.0, momentum=0.5).step()
        SGD([param_b], lr=1.0, momentum=0.5, nesterov=True).step()
        assert param_a.data[0] != param_b.data[0]

    def test_apply_gradient_vector(self):
        params = [Parameter(np.zeros((2, 2))), Parameter(np.zeros(3))]
        optimizer = SGD(params, lr=1.0)
        optimizer.apply_gradient_vector(np.arange(7, dtype=float))
        np.testing.assert_allclose(params[0].data, -np.arange(4).reshape(2, 2))
        np.testing.assert_allclose(params[1].data, -np.array([4.0, 5.0, 6.0]))

    def test_apply_gradient_vector_rejects_wrong_size(self):
        optimizer = SGD([Parameter(np.zeros(3))], lr=1.0)
        with pytest.raises(ValueError):
            optimizer.apply_gradient_vector(np.zeros(4))

    def test_zero_grad(self):
        param = make_param(1.0, 2.0)
        SGD([param], lr=0.1).zero_grad()
        assert param.grad[0] == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lr": 0.0},
            {"lr": 0.1, "momentum": 1.0},
            {"lr": 0.1, "weight_decay": -1.0},
            {"lr": 0.1, "nesterov": True},
        ],
    )
    def test_invalid_hyperparameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SGD([make_param()], **kwargs)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestSchedulers:
    def test_constant_lr(self):
        optimizer = SGD([make_param()], lr=0.2)
        assert ConstantLR(optimizer).step() == 0.2

    def test_step_lr_decays_every_period(self):
        optimizer = SGD([make_param()], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_multistep_lr_decays_at_milestones(self):
        optimizer = SGD([make_param()], lr=1.0)
        scheduler = MultiStepLR(optimizer, milestones=[1, 3], gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == [
            pytest.approx(0.5),
            pytest.approx(0.5),
            pytest.approx(0.25),
            pytest.approx(0.25),
        ]

    def test_step_lr_validation(self):
        optimizer = SGD([make_param()], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=1, gamma=0.0)
