"""Equivalence tests for the streaming (blocked) GradientBatch primitives.

Three regimes are pinned down:

* **Dense delegation** — at or below ``max_dense_pairwise`` every blocked
  primitive must be *bit-identical* to the historical dense formulas (it
  delegates to the dense caches; on this platform a row-block matmul is
  not bitwise equal to slicing the full matmul, so delegation is the only
  way to keep small-n results bit-exact).
* **Streamed agreement** — with streaming forced (threshold below n), the
  tiled results must agree with the dense ones to tight tolerances, and
  selection-level decisions (Krum's argmin) must be identical.
* **Refusal** — above the threshold the four dense accessors raise
  :class:`PairwiseMemoryError` instead of allocating ``O(n²)``.
"""

import numpy as np
import pytest

from repro.aggregators.krum import krum_scores, krum_scores_from_sq_distances
from repro.attacks.minmax_minsum import (
    max_pairwise_sq_distance,
    max_sum_sq_distance,
)
from repro.utils.batch import (
    MAX_DENSE_PAIRWISE,
    PAIRWISE_BLOCK_ROWS,
    GradientBatch,
    PairwiseMemoryError,
)


def attack_population(n=96, dim=17, seed=0, dtype=np.float64):
    """Honest cluster + sign-inverted malicious tail, in the given dtype."""
    rng = np.random.default_rng(seed)
    signal = rng.normal(0.1, 1.0, size=dim)
    honest = signal + rng.normal(0, 0.3, size=(n - n // 5, dim))
    malicious = -signal + rng.normal(0, 0.05, size=(n // 5, dim))
    return np.vstack([honest, malicious]).astype(dtype)


def streaming_pair(matrix, *, block_rows=17):
    """(dense batch, forced-streaming batch) over the same matrix."""
    dense = GradientBatch(matrix)
    streamed = GradientBatch(
        matrix, max_dense_pairwise=2, block_rows=block_rows
    )
    return dense, streamed


class TestDefaults:
    def test_module_defaults(self):
        batch = GradientBatch(np.ones((3, 4)))
        assert batch.max_dense_pairwise == MAX_DENSE_PAIRWISE
        assert batch.block_rows == PAIRWISE_BLOCK_ROWS
        assert batch.dense_pairwise_allowed

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_dense_pairwise"):
            GradientBatch(np.ones((2, 3)), max_dense_pairwise=0)
        with pytest.raises(ValueError, match="block_rows"):
            GradientBatch(np.ones((2, 3)), block_rows=0)

    def test_iterator_rejects_bad_block_rows(self):
        batch = GradientBatch(np.ones((4, 3)), max_dense_pairwise=2)
        with pytest.raises(ValueError, match="block_rows"):
            list(batch.iter_sq_distance_blocks(block_rows=0))
        with pytest.raises(ValueError, match="num_neighbors"):
            batch.k_smallest_neighbor_sums(0)


class TestRefusal:
    @pytest.fixture
    def batch(self):
        return GradientBatch(attack_population(24, 8), max_dense_pairwise=8)

    @pytest.mark.parametrize(
        "accessor",
        ["gram", "sq_distances", "distances", "cosine_similarities"],
    )
    def test_dense_accessors_refuse(self, batch, accessor):
        assert not batch.dense_pairwise_allowed
        with pytest.raises(PairwiseMemoryError, match="max_dense_pairwise"):
            getattr(batch, accessor)()

    def test_error_names_the_blocked_primitives(self, batch):
        with pytest.raises(PairwiseMemoryError, match="k_smallest_neighbor"):
            batch.gram()

    def test_blocked_primitives_still_work(self, batch):
        n = batch.n_clients
        assert batch.k_smallest_neighbor_sums(5).shape == (n,)
        assert batch.median_distances().shape == (n,)
        assert batch.median_cosine_similarities().shape == (n,)
        assert batch.max_pairwise_sq_distance() > 0
        assert batch.max_sum_sq_distance() > 0

    def test_nothing_was_cached_densely(self, batch):
        batch.k_smallest_neighbor_sums(5)
        assert batch.compute_count("gram") == 0
        assert batch.compute_count("sq_distances") == 0


class TestDenseDelegation:
    """Below the threshold, blocked primitives == historical dense formulas,
    bit for bit."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sq_distances_block_is_a_dense_slice(self, dtype):
        batch = GradientBatch(attack_population(dtype=dtype))
        rows = np.array([0, 3, 95, 4])
        np.testing.assert_array_equal(
            batch.sq_distances_block(rows), batch.sq_distances()[rows]
        )
        contiguous = np.arange(5, 20)
        np.testing.assert_array_equal(
            batch.sq_distances_block(contiguous),
            batch.sq_distances()[contiguous],
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_neighbor_sums_match_historical_sort(self, dtype):
        matrix = attack_population(dtype=dtype)
        batch = GradientBatch(matrix)
        k = 7
        full_sort = np.sort(batch.sq_distances(), axis=1)
        historical = full_sort[:, 1 : k + 1].sum(axis=1)
        np.testing.assert_array_equal(
            batch.k_smallest_neighbor_sums(k), historical
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_median_distances_match_historical_nanmedian(self, dtype):
        batch = GradientBatch(attack_population(dtype=dtype))
        pairwise = np.array(batch.distances(), dtype=np.float64)
        np.fill_diagonal(pairwise, np.nan)
        np.testing.assert_array_equal(
            batch.median_distances(), np.nanmedian(pairwise, axis=1)
        )

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_median_cosines_match_historical_nanmedian(self, dtype):
        batch = GradientBatch(attack_population(dtype=dtype))
        similarity = batch.cosine_similarities().astype(np.float64)
        np.fill_diagonal(similarity, np.nan)
        np.testing.assert_array_equal(
            batch.median_cosine_similarities(),
            np.nanmedian(similarity, axis=1),
        )

    def test_max_reductions_match_dense(self):
        batch = GradientBatch(attack_population())
        assert batch.max_pairwise_sq_distance() == float(
            batch.sq_distances().max()
        )
        assert batch.max_sum_sq_distance() == float(
            batch.sq_distances().sum(axis=1).max()
        )

    def test_non_contiguous_input(self):
        base = attack_population(192, 17)
        view = base[::2]
        assert not view.flags["C_CONTIGUOUS"]
        batch = GradientBatch(view)
        rows = np.array([1, 0, 90])
        np.testing.assert_array_equal(
            batch.sq_distances_block(rows), batch.sq_distances()[rows]
        )


class TestStreamedAgreement:
    """Forced streaming vs dense over the same matrix."""

    @pytest.mark.parametrize("block_rows", [1, 7, 96, 200])
    def test_tiles_assemble_to_the_dense_matrix(self, block_rows):
        matrix = attack_population()
        dense, streamed = streaming_pair(matrix, block_rows=block_rows)
        seen = []
        assembled = np.empty((96, 96))
        for rows, tile in streamed.iter_sq_distance_blocks():
            seen.extend(rows.tolist())
            assembled[rows] = tile
        assert seen == list(range(96))
        np.testing.assert_allclose(
            assembled, dense.sq_distances(), rtol=1e-9, atol=1e-9
        )
        # Self-distances are exactly zero, like the dense diagonal.
        assert (np.diag(assembled) == 0.0).all()

    def test_neighbor_sums_and_krum_selection_agree(self):
        matrix = attack_population()
        dense, streamed = streaming_pair(matrix)
        k = max(96 - 96 // 5 - 2, 1)
        dense_scores = dense.k_smallest_neighbor_sums(k)
        streamed_scores = streamed.k_smallest_neighbor_sums(k)
        np.testing.assert_allclose(
            streamed_scores, dense_scores, rtol=1e-9, atol=1e-9
        )
        assert int(np.argmin(streamed_scores)) == int(np.argmin(dense_scores))

    def test_krum_scores_entrypoint_streams_above_threshold(self):
        matrix = attack_population()
        f = 96 // 5
        reference = krum_scores_from_sq_distances(
            GradientBatch(matrix).sq_distances(), f
        )
        streamed_batch = GradientBatch(matrix, max_dense_pairwise=2)
        streamed = krum_scores(matrix, f, batch=streamed_batch)
        np.testing.assert_allclose(streamed, reference, rtol=1e-9, atol=1e-9)
        assert streamed_batch.compute_count("sq_distances") == 0

    def test_median_distances_agree(self):
        dense, streamed = streaming_pair(attack_population())
        np.testing.assert_allclose(
            streamed.median_distances(),
            dense.median_distances(),
            rtol=1e-9,
            atol=1e-9,
        )

    @pytest.mark.parametrize(
        "dtype,atol", [(np.float64, 1e-12), (np.float32, 1e-6)]
    )
    def test_median_cosines_agree(self, dtype, atol):
        # float32 tiles keep the dense op order (divide in float32, then
        # widen) but the block matmul itself rounds differently, so the
        # per-row medians can land on a neighbouring ulp.
        dense, streamed = streaming_pair(attack_population(dtype=dtype))
        np.testing.assert_allclose(
            streamed.median_cosine_similarities(),
            dense.median_cosine_similarities(),
            rtol=1e-6,
            atol=atol,
        )

    def test_max_reductions_agree(self):
        dense, streamed = streaming_pair(attack_population())
        assert streamed.max_pairwise_sq_distance() == pytest.approx(
            dense.max_pairwise_sq_distance(), rel=1e-12
        )
        assert streamed.max_sum_sq_distance() == pytest.approx(
            dense.max_sum_sq_distance(), rel=1e-12
        )

    def test_streamed_paths_are_counted(self):
        _, streamed = streaming_pair(attack_population())
        streamed.k_smallest_neighbor_sums(5)
        streamed.median_distances()
        streamed.median_cosine_similarities()
        assert streamed.compute_count("sq_distances_block") > 0
        assert streamed.compute_count("median_distances") == 1
        assert streamed.compute_count("median_cosine_similarities") == 1


class TestMinMaxAttackHelpers:
    def test_helpers_match_dense_formula_at_small_n(self):
        gradients = attack_population(40, 9)
        diffs = gradients[:, None, :] - gradients[None, :, :]
        sq = np.sum(diffs**2, axis=-1)
        assert max_pairwise_sq_distance(gradients) == pytest.approx(
            float(sq.max()), rel=1e-12
        )
        assert max_sum_sq_distance(gradients) == pytest.approx(
            float(sq.sum(axis=1).max()), rel=1e-12
        )

    def test_helpers_route_through_batch_above_threshold(self, monkeypatch):
        import repro.attacks.minmax_minsum as mm

        gradients = attack_population(40, 9)
        dense_pairwise = max_pairwise_sq_distance(gradients)
        dense_sum = max_sum_sq_distance(gradients)
        monkeypatch.setattr(mm, "MAX_DENSE_PAIRWISE", 8)
        assert max_pairwise_sq_distance(gradients) == pytest.approx(
            dense_pairwise, rel=1e-12
        )
        assert max_sum_sq_distance(gradients) == pytest.approx(
            dense_sum, rel=1e-12
        )
